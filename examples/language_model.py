#!/usr/bin/env python
"""Language-model workload: Transformer perplexity under each method.

The paper's fourth workload (Transformer on WikiText-103, test perplexity)
at example scale: TinyTransformer on the synthetic Markov corpus. Lower
perplexity is better; note how SelSync's LSSR is lower here (~0.73 in the
paper) than on image models — language-model gradients keep changing longer.

Run:  python examples/language_model.py
"""

from repro.experiments.reporting import render_table
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import get_workload

N_WORKERS = 4
N_STEPS = 250


def main() -> None:
    workload = get_workload("transformer_wikitext")
    rows = []
    for spec in (
        MethodSpec("bsp", label="BSP"),
        MethodSpec("fedavg", {"c_fraction": 1.0, "e_factor": 0.125},
                   label="FedAvg (1, 0.125)"),
        MethodSpec("ssp", {"staleness": 20}, label="SSP s=20"),
        MethodSpec("selsync", {"delta": 0.1}, label="SelSync (d=0.1)"),
    ):
        scheme = "seldp" if spec.kind == "selsync" else "defdp"
        built = workload.build(
            n_workers=N_WORKERS,
            n_steps=N_STEPS,
            partition_scheme=scheme,
            data_scale=0.5,
            seed=0,
        )
        res = run_method(spec, built, n_steps=N_STEPS, eval_every=50)
        rows.append(
            [
                spec.display,
                round(res.best_metric, 2),
                "-" if res.lssr is None else round(res.lssr, 3),
                round(res.sim_time, 1),
            ]
        )
    print(
        render_table(
            ["method", "best_ppl (lower=better)", "lssr", "sim_time_s"],
            rows,
            title="Transformer LM on the Markov corpus — 4 workers",
        )
    )


if __name__ == "__main__":
    main()
