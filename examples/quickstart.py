#!/usr/bin/env python
"""Quickstart: train one model with SelSync and compare against BSP.

Builds the ResNet/CIFAR10-like workload on a 4-worker simulated cluster,
runs BSP and SelSync (δ=0.3) under identical protocols, and prints the
accuracy / LSSR / simulated-time comparison — the paper's headline claim in
one minute of CPU time.

Run:  python examples/quickstart.py
"""

from repro.experiments.reporting import render_table
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import get_workload

N_WORKERS = 4
N_STEPS = 150


def main() -> None:
    workload = get_workload("resnet_cifar10")
    rows = []
    for spec in (
        MethodSpec("bsp", label="BSP"),
        MethodSpec("selsync", {"delta": 0.1}, label="SelSync (d=0.1)"),
        MethodSpec("selsync", {"delta": 0.3}, label="SelSync (d=0.3)"),
    ):
        built = workload.build(
            n_workers=N_WORKERS, n_steps=N_STEPS, data_scale=0.25, seed=0
        )
        result = run_method(spec, built, n_steps=N_STEPS, eval_every=30)
        rows.append(
            [
                spec.display,
                round(result.best_metric, 3),
                "-" if result.lssr is None else round(result.lssr, 3),
                round(result.sim_time, 1),
                round(result.log.total_comm_time, 1),
            ]
        )
    print(
        render_table(
            ["method", "best_acc", "lssr", "sim_time_s", "comm_time_s"],
            rows,
            title=f"SelSync vs BSP — ResNet/CIFAR10-like, {N_WORKERS} workers",
        )
    )
    print(
        "\nSelSync reaches BSP-level accuracy while skipping most "
        "synchronization rounds (LSSR) and cutting simulated wall-clock."
    )


if __name__ == "__main__":
    main()
