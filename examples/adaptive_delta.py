#!/usr/bin/env python
"""Extension demo: choosing δ online, and watching replica divergence.

The paper sets δ before launch and notes its useful range [0, M] depends on
the workload. This example shows the two adaptive policies shipped as
extensions — δ as a fraction of the observed Δ(g) extremum, and a feedback
controller targeting a communication budget (LSSR) — plus the
replica-divergence tracker that makes §III-C's PA-bounds-divergence argument
visible.

Run:  python examples/adaptive_delta.py
"""

import numpy as np

from repro.core import (
    DivergenceTracker,
    FractionOfMaxDelta,
    SelSyncTrainer,
    TargetLSSRDelta,
    TrainConfig,
)
from repro.experiments.reporting import render_table
from repro.experiments.workloads import get_workload

N_WORKERS = 4
N_STEPS = 150


def run_policy(label, **selsync_kwargs):
    built = get_workload("resnet_cifar10").build(
        n_workers=N_WORKERS, n_steps=N_STEPS, data_scale=0.25, seed=0
    )
    trainer = SelSyncTrainer(
        built.workers, built.cluster, schedule=built.schedule, **selsync_kwargs
    )
    divergence = DivergenceTracker()
    # Drive the step loop by hand so we can snapshot replica spread.
    for i in range(N_STEPS):
        trainer.step(i)
        divergence.snapshot(i, built.workers)
    acc = built.eval_fn(trainer_deploy(trainer, built))
    lssr = 1.0 - trainer.group.n_syncs / N_STEPS
    return [label, round(acc, 3), round(lssr, 3),
            round(divergence.max_spread, 3), round(divergence.final_spread, 3)]


def trainer_deploy(trainer, built):
    model, saved = trainer.deploy_model()
    model.eval()
    return model


def main() -> None:
    rows = [
        run_policy("fixed d=0.3", delta=0.3),
        run_policy("fraction_of_max 0.5",
                   delta_policy=FractionOfMaxDelta(0.5, warmup=15)),
        run_policy("target_lssr 0.85",
                   delta_policy=TargetLSSRDelta(0.85, initial_delta=0.05, gain=0.2)),
    ]
    print(
        render_table(
            ["policy", "acc", "lssr", "max_spread", "final_spread"],
            rows,
            title="Adaptive delta policies + replica divergence (ResNet-like, N=4)",
        )
    )
    print(
        "\nmax_spread shows how far replicas drifted between syncs; PA pulls "
        "final_spread back toward 0 whenever a sync fires."
    )


if __name__ == "__main__":
    main()
