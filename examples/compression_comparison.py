#!/usr/bin/env python
"""Gradient compression (§II-D) vs selective synchronization.

Compression shrinks every message; SelSync skips most messages entirely.
This example runs BSP with each compressor family (Top-k, DGC, signSGD,
TernGrad, PowerSGD) next to SelSync on the communication-heavy VGG-like
workload and prints the accuracy / wire-bytes / time trade-off.

Run:  python examples/compression_comparison.py
"""

from repro.core import BSPTrainer, SelSyncTrainer, TrainConfig
from repro.core.compression import build_compressor
from repro.experiments.reporting import render_table
from repro.experiments.workloads import get_workload

N_WORKERS = 4
N_STEPS = 150

METHODS = [
    ("bsp (dense fp64)", None),
    ("bsp + topk 1%", ("topk", {"ratio": 0.01})),
    ("bsp + dgc 1%", ("dgc", {"ratio": 0.01})),
    ("bsp + signsgd", ("signsgd", {})),
    ("bsp + terngrad", ("terngrad", {})),
    ("bsp + powersgd r=2", ("powersgd", {"rank": 2})),
    ("bsp + accordion", ("accordion", {"low_ratio": 0.01, "high_ratio": 0.1, "delta": 0.05})),
]


def main() -> None:
    rows = []
    for label, comp_spec in METHODS:
        built = get_workload("vgg_cifar100").build(
            n_workers=N_WORKERS, n_steps=N_STEPS, data_scale=0.25, seed=0
        )
        comp = (
            None
            if comp_spec is None
            else build_compressor(comp_spec[0], **comp_spec[1])
        )
        trainer = BSPTrainer(
            built.workers, built.cluster, schedule=built.schedule, compressor=comp
        )
        cfg = TrainConfig(n_steps=N_STEPS, eval_every=50, eval_fn=built.eval_fn)
        res = trainer.run(cfg)
        rows.append(
            [label, round(res.best_metric, 3), round(res.log.total_comm_time, 1),
             round(res.sim_time, 1)]
        )

    built = get_workload("vgg_cifar100").build(
        n_workers=N_WORKERS, n_steps=N_STEPS, data_scale=0.25, seed=0
    )
    trainer = SelSyncTrainer(
        built.workers, built.cluster, schedule=built.schedule, delta=0.3
    )
    cfg = TrainConfig(n_steps=N_STEPS, eval_every=50, eval_fn=built.eval_fn)
    res = trainer.run(cfg)
    rows.append(
        ["selsync d=0.3", round(res.best_metric, 3),
         round(res.log.total_comm_time, 1), round(res.sim_time, 1)]
    )

    print(
        render_table(
            ["method", "best_acc", "comm_time_s", "sim_time_s"],
            rows,
            title="Compressing messages vs skipping them — VGG/CIFAR100-like",
        )
    )


if __name__ == "__main__":
    main()
