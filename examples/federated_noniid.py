#!/usr/bin/env python
"""Non-IID federated training with randomized data injection (§III-E).

Partitions the CIFAR10-like dataset with one label per worker (the paper's
harshest skew), then compares:

* FedAvg (C=1, E=0.1) — the standard federated baseline,
* SelSync with three (α, β, δ) data-injection configurations, with the
  local batch shrunk to b' = b / (1 + αβN) per Eqn. (3).

Run:  python examples/federated_noniid.py
"""

from repro.data.injection import DataInjector, injected_batch_size
from repro.experiments.reporting import render_table
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import get_workload

N_WORKERS = 5
N_STEPS = 200
BASE_BATCH = 32
# Paper's (α, β, δ) with δ mapped to this substrate's Δ(g) scale
# (see EXPERIMENTS.md: thresholds are matched by realized LSSR).
CONFIGS = ((0.5, 0.5, 0.02), (0.5, 0.5, 0.1), (0.75, 0.75, 0.1))


def build(batch_size=BASE_BATCH):
    return get_workload("resnet_cifar10").build(
        n_workers=N_WORKERS,
        n_steps=N_STEPS,
        partition_scheme="noniid",
        labels_per_worker=1,
        data_scale=0.3,
        batch_size=batch_size,
        seed=0,
    )


def main() -> None:
    rows = []

    built = build()
    fed = run_method(
        MethodSpec("fedavg", {"c_fraction": 1.0, "e_factor": 0.1}),
        built,
        n_steps=N_STEPS,
        eval_every=50,
    )
    rows.append(["FedAvg (1, 0.1)", BASE_BATCH, round(fed.best_metric, 3)])

    for alpha, beta, delta in CONFIGS:
        b_prime = injected_batch_size(BASE_BATCH, alpha, beta, N_WORKERS)
        built = build(batch_size=b_prime)
        injector = DataInjector(
            alpha, beta, N_WORKERS,
            sample_nbytes=built.train.sample_nbytes, rng=13,
        )
        res = run_method(
            MethodSpec("selsync", {"delta": delta, "injector": injector}),
            built,
            n_steps=N_STEPS,
            eval_every=50,
        )
        rows.append(
            [f"SelSync ({alpha}, {beta}, {delta})", b_prime, round(res.best_metric, 3)]
        )

    print(
        render_table(
            ["method", "local_batch", "best_acc"],
            rows,
            title="Non-IID (1 label/worker): FedAvg vs SelSync + data injection",
        )
    )
    print(
        "\nStronger injection improves the effective data distribution each "
        "worker sees, and SelSync's significance-driven syncs do the rest."
    )


if __name__ == "__main__":
    main()
