#!/usr/bin/env python
"""Deep dive: the δ dial, PA-vs-GA and SelDP-vs-DefDP on one workload.

Reproduces the paper's three design studies (§III-B, §III-C, §III-D) at
example scale on the VGG/CIFAR100-like workload:

1. Sweep δ and watch LSSR dial training from BSP to pure local-SGD.
2. Compare parameter vs gradient aggregation at a fixed δ.
3. Compare SelDP vs DefDP partitioning under gradient aggregation.

Run:  python examples/selective_sync_cifar.py
"""

from repro.experiments.reporting import render_table
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import get_workload

WORKLOAD = "vgg_cifar100"
N_WORKERS = 4
N_STEPS = 180


def build(scheme="seldp"):
    return get_workload(WORKLOAD).build(
        n_workers=N_WORKERS,
        n_steps=N_STEPS,
        partition_scheme=scheme,
        data_scale=0.25,
        seed=0,
        # 30 classes keeps the many-label task learnable at example scale
        # (the full 100-class variant needs the full dataset and budget).
        dataset_overrides={"n_classes": 30},
    )


def sweep_delta() -> None:
    rows = []
    for delta in (0.0, 0.1, 0.3, 1.0, 1e9):
        res = run_method(
            MethodSpec("selsync", {"delta": delta}),
            build(),
            n_steps=N_STEPS,
            eval_every=60,
        )
        label = "inf (local-SGD)" if delta >= 1e9 else delta
        rows.append(
            [label, round(res.lssr, 3), round(res.best_metric, 3),
             round(res.sim_time, 1)]
        )
    print(
        render_table(
            ["delta", "lssr", "best_acc", "sim_time_s"],
            rows,
            title="1) The delta dial (Fig. 6): 0 = BSP ... large = local-SGD",
        )
    )


def pa_vs_ga() -> None:
    rows = []
    for agg in ("params", "grads"):
        res = run_method(
            MethodSpec("selsync", {"delta": 0.25, "aggregation": agg}),
            build(),
            n_steps=N_STEPS,
            eval_every=60,
        )
        rows.append([agg, round(res.best_metric, 3)])
    print(
        render_table(
            ["aggregation", "best_acc"],
            rows,
            title="2) Parameter vs gradient aggregation (Fig. 10)",
        )
    )


def seldp_vs_defdp() -> None:
    rows = []
    for scheme in ("seldp", "defdp"):
        res = run_method(
            MethodSpec("selsync", {"delta": 0.25, "aggregation": "grads"}),
            build(scheme),
            n_steps=N_STEPS,
            eval_every=60,
        )
        rows.append([scheme, round(res.best_metric, 3)])
    print(
        render_table(
            ["partitioning", "best_acc"],
            rows,
            title="3) SelDP vs DefDP under mostly-local training (Fig. 9)",
        )
    )


if __name__ == "__main__":
    sweep_delta()
    print()
    pa_vs_ga()
    print()
    seldp_vs_defdp()
