"""Fig. 5: Δ(g_i) moves with the convergence curve, spiking at LR decay."""

import numpy as np
from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table
from repro.utils.asciiplot import line_plot


def test_fig5_gradchange_vs_convergence(benchmark):
    n_steps = scaled_steps(300)
    out = once(
        benchmark,
        lambda: figures.fig5_gradchange_vs_convergence(
            workload="resnet_cifar10",
            n_workers=2,
            n_steps=n_steps,
            data_scale=0.3,
            eval_every=25,
        ),
    )
    gc = out["grad_change"]
    rows = [
        [int(s), f"{m:.3f}", f"{np.nanmean(gc[max(0, s-25):s+1]):.4f}"]
        for s, m in zip(out["eval_steps"], out["metric"])
    ]
    text = render_table(
        ["step", "test_acc", "mean_delta_g_last25"],
        rows,
        title="Fig 5: relative gradient change alongside the accuracy curve",
    )
    finite_trace = np.where(np.isfinite(gc), gc, np.nan)
    text += "\n\n" + line_plot(
        finite_trace[1:], width=64, height=8, label="delta(g_i) over steps"
    )
    text += "\n\n" + line_plot(
        out["metric"], width=64, height=8, label="test accuracy over eval points"
    )
    save_result("fig5_gradchange_vs_convergence", text)
    finite = gc[np.isfinite(gc)]
    # Δ(g) is well-defined and positive after the forced first sync...
    assert (finite >= 0).all()
    # ...and bounded: EWMA smoothing keeps it from diverging even as the
    # raw per-batch norms get noisy late in training.
    assert finite.max() < 100 * max(1e-12, np.median(finite))
    # The LR-decay milestone leaves a visible spike in Δ(g) right after —
    # the paper's ResNet101 signature (accuracy also jumps there).
    for ms in out["lr_milestones"]:
        if ms + 40 < len(gc):
            before = np.nanmedian(gc[max(1, ms - 40) : ms])
            after = np.nanmax(gc[ms : ms + 40])
            assert after > 1.5 * before
