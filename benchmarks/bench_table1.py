"""Table I: the full method grid — BSP / FedAvg×4 / SSP×2 / SelSync×2 across
the four workloads, reporting iterations, LSSR, metric, convergence
difference and speedup vs BSP."""

from _common import once, save_result, scaled_steps

from repro.experiments.reporting import render_table1
from repro.experiments.table1 import DEFAULT_METHODS, run_table1


def test_table1_full_grid(benchmark):
    rows = once(
        benchmark,
        lambda: run_table1(
            workloads=(
                "resnet_cifar10",
                "vgg_cifar100",
                "alexnet_imagenet",
                "transformer_wikitext",
            ),
            methods=tuple(DEFAULT_METHODS),
            n_workers=4,
            # The paper's protocol: a generous cap with early stopping —
            # semi-synchronous methods legitimately need more iterations
            # than BSP (Table I: SelSync ran ~2x BSP's steps on ResNet101).
            n_steps=scaled_steps(250),
            eval_every=25,
            patience=4,
            data_scale=0.25,
            conv_tolerance=0.02,
        ),
    )
    save_result("table1", render_table1(rows))

    by = {(r.workload, r.method): r for r in rows}

    def sel_rows(workload):
        return [r for r in rows if r.workload == workload and "SelSync" in r.method]

    for workload in ("resnet_cifar10", "vgg_cifar100", "alexnet_imagenet",
                     "transformer_wikitext"):
        bsp = by[(workload, "BSP")]
        assert bsp.lssr == 0.0 and bsp.speedup == 1.0
        for r in sel_rows(workload):
            # SelSync's core claims: substantial LSSR, BSP-level quality,
            # and real time savings whenever quality is matched.
            assert r.lssr > 0.3
            if r.speedup is not None:
                assert r.speedup > 1.0

    # At least one SelSync config matches-or-beats BSP on most workloads
    # (the paper reports all four; at bench scale we require ≥3 of 4).
    matched = sum(
        any(r.outperforms_bsp for r in sel_rows(w))
        for w in ("resnet_cifar10", "vgg_cifar100", "alexnet_imagenet",
                  "transformer_wikitext")
    )
    assert matched >= 3

    # FedAvg's LSSR always exceeds SelSync's (fixed rare schedule vs
    # significance-driven sync) — the paper's Table I pattern.
    for workload in ("resnet_cifar10", "vgg_cifar100"):
        fed = by[(workload, "FedAvg (1, 0.25)")]
        assert fed.lssr > 0.5
