"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure, prints the rows/series,
and writes them under ``benchmarks/results/`` so a ``--benchmark-only`` run
leaves a full record on disk. ``REPRO_BENCH_SCALE`` (float, default 1.0)
scales step budgets for quicker or more faithful runs.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_steps(n: int, minimum: int = 20) -> int:
    return max(minimum, int(round(n * bench_scale())))


def save_result(name: str, text: str) -> None:
    """Print the result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
