"""Related-work comparison (§II-D): gradient-compression baselines vs SelSync.

Runs BSP with each compressor plus SelSync on the same workload and reports
bytes-on-the-wire, simulated time and final accuracy — the trade-off space
the paper positions SelSync against.
"""

from _common import once, save_result, scaled_steps

from repro.core import BSPTrainer, SelSyncTrainer, TrainConfig
from repro.core.compression import build_compressor
from repro.experiments.reporting import render_table
from repro.experiments.workloads import build_workload

COMPRESSORS = [
    ("none", None),
    ("topk_1pct", ("topk", {"ratio": 0.01})),
    ("dgc_1pct", ("dgc", {"ratio": 0.01})),
    ("signsgd", ("signsgd", {})),
    ("terngrad", ("terngrad", {})),
    ("powersgd_r2", ("powersgd", {"rank": 2})),
    ("accordion", ("accordion", {"low_ratio": 0.01, "high_ratio": 0.1, "delta": 0.05})),
]


def run_grid(n_steps):
    results = []
    for label, comp_spec in COMPRESSORS:
        built = build_workload(
            "vgg_cifar100", n_workers=4, n_steps=n_steps, data_scale=0.25,
            dataset_overrides={"n_classes": 30},
        )
        comp = (
            None if comp_spec is None else build_compressor(comp_spec[0], **comp_spec[1])
        )
        trainer = BSPTrainer(
            built.workers, built.cluster, schedule=built.schedule, compressor=comp
        )
        cfg = TrainConfig(
            n_steps=n_steps, eval_every=max(20, n_steps // 5), eval_fn=built.eval_fn
        )
        res = trainer.run(cfg)
        results.append((f"bsp+{label}", res))
    built = build_workload(
        "vgg_cifar100", n_workers=4, n_steps=n_steps, data_scale=0.25,
        dataset_overrides={"n_classes": 30},
    )
    trainer = SelSyncTrainer(
        built.workers, built.cluster, schedule=built.schedule, delta=0.05
    )
    cfg = TrainConfig(
        n_steps=n_steps, eval_every=max(20, n_steps // 5), eval_fn=built.eval_fn
    )
    results.append(("selsync d=0.05", trainer.run(cfg)))
    return results


def test_compression_comparison(benchmark):
    n_steps = scaled_steps(150)
    results = once(benchmark, lambda: run_grid(n_steps))
    rows = [
        [
            label,
            round(r.best_metric, 3),
            round(r.sim_time, 1),
            round(r.log.total_comm_time, 1),
        ]
        for label, r in results
    ]
    save_result(
        "compression_comparison",
        render_table(
            ["method", "best_acc", "sim_time_s", "comm_time_s"],
            rows,
            title="SS II-D comparators vs SelSync on VGG/CIFAR100-like (N=4)",
        ),
    )
    by = dict(results)
    dense = by["bsp+none"]
    # Every compressor must cut communication time vs dense BSP.
    for label, r in results:
        if label.startswith("bsp+") and label != "bsp+none":
            assert r.log.total_comm_time < dense.log.total_comm_time
    # SelSync is competitive in accuracy while cutting total time.
    sel = by["selsync d=0.05"]
    assert sel.best_metric >= dense.best_metric - 0.05
    assert sel.sim_time < dense.sim_time
