"""Ablation (extension): online δ selection vs the paper's pre-launch δ.

The paper notes the useful δ range [0, M] is workload-dependent and sets δ
by hand. This bench compares the hand-set threshold against the two adaptive
policies (fraction-of-max and target-LSSR feedback control).
"""

from _common import once, save_result, scaled_steps

from repro.core import (
    FractionOfMaxDelta,
    SelSyncTrainer,
    TargetLSSRDelta,
    TrainConfig,
)
from repro.experiments.reporting import render_table
from repro.experiments.workloads import build_workload

TARGET_LSSR = 0.85


def run_policies(n_steps):
    cases = {
        "fixed d=0.3": {"delta": 0.3},
        "fraction_of_max 0.5": {"delta_policy": FractionOfMaxDelta(0.5, warmup=15)},
        f"target_lssr {TARGET_LSSR}": {
            "delta_policy": TargetLSSRDelta(
                target_lssr=TARGET_LSSR, initial_delta=0.05, gain=0.2
            )
        },
    }
    out = {}
    for label, kwargs in cases.items():
        built = build_workload(
            "resnet_cifar10", n_workers=4, n_steps=n_steps, data_scale=0.25
        )
        trainer = SelSyncTrainer(
            built.workers, built.cluster, schedule=built.schedule, **kwargs
        )
        cfg = TrainConfig(
            n_steps=n_steps, eval_every=max(20, n_steps // 5), eval_fn=built.eval_fn
        )
        out[label] = trainer.run(cfg)
    return out


def test_ablation_adaptive_delta(benchmark):
    out = once(benchmark, lambda: run_policies(scaled_steps(180)))
    rows = [
        [label, round(r.lssr, 3), round(r.best_metric, 3), round(r.sim_time, 1)]
        for label, r in out.items()
    ]
    save_result(
        "ablation_adaptive_delta",
        render_table(
            ["policy", "lssr", "best_acc", "sim_time_s"],
            rows,
            title="Ablation: fixed delta vs online delta policies",
        ),
    )
    # The feedback controller lands near its communication budget...
    ctl = out[f"target_lssr {TARGET_LSSR}"]
    assert abs(ctl.lssr - TARGET_LSSR) < 0.25
    # ...and no adaptive policy collapses training.
    fixed = out["fixed d=0.3"]
    for r in out.values():
        assert r.best_metric > 0.5 * fixed.best_metric
