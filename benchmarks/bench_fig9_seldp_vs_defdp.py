"""Fig. 9: SelSync (gradient aggregation) with SelDP vs DefDP partitioning."""

from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table


def run_both(n_steps):
    """Paper δ=0.25 maps to different points of each workload's Δ(g) range;
    use the per-workload mapped value (see EXPERIMENTS.md δ-scale note)."""
    out = figures.fig9_seldp_vs_defdp(
        workloads=("resnet_cifar10",), delta=0.1,
        n_workers=4, n_steps=n_steps, data_scale=0.3,
    )
    out.update(
        figures.fig9_seldp_vs_defdp(
            workloads=("vgg_cifar100",), delta=0.2,
            n_workers=4, n_steps=n_steps, data_scale=0.3,
        )
    )
    return out


def test_fig9_seldp_vs_defdp(benchmark):
    out = once(benchmark, lambda: run_both(scaled_steps(220)))
    rows = [
        [w, round(v["seldp"], 3), round(v["defdp"], 3)] for w, v in out.items()
    ]
    save_result(
        "fig9_seldp_vs_defdp",
        render_table(
            ["workload", "seldp_acc", "defdp_acc"],
            rows,
            title="Fig 9: SelSync (GA, per-workload mapped delta) accuracy per partitioning",
        ),
    )
    # SelDP must beat DefDP where per-shard sample scarcity bites (the
    # ResNet case is the statistically solid one at bench scale). On the
    # synthetic datasets the paper's *feature deprivation* mechanism is
    # attenuated — see EXPERIMENTS.md Fig. 9 caveat — so the VGG case only
    # gets a tolerance check against losing badly.
    assert out["resnet_cifar10"]["seldp"] > out["resnet_cifar10"]["defdp"]
    assert out["vgg_cifar100"]["seldp"] >= out["vgg_cifar100"]["defdp"] - 0.08
