"""Ablation: EWMA window sensitivity (the paper fixes w=25 after Fig. 8a)."""

from _common import once, save_result, scaled_steps

from repro.core import SelSyncTrainer, TrainConfig
from repro.experiments.reporting import render_table
from repro.experiments.workloads import build_workload

WINDOWS = (1, 5, 25, 100)


def run_windows(n_steps):
    out = {}
    for w in WINDOWS:
        built = build_workload(
            "resnet_cifar10", n_workers=4, n_steps=n_steps, data_scale=0.25
        )
        trainer = SelSyncTrainer(
            built.workers, built.cluster, schedule=built.schedule,
            delta=0.3, ewma_window=w,
        )
        cfg = TrainConfig(
            n_steps=n_steps, eval_every=max(20, n_steps // 5), eval_fn=built.eval_fn
        )
        out[w] = trainer.run(cfg)
    return out


def test_ablation_ewma_window(benchmark):
    out = once(benchmark, lambda: run_windows(scaled_steps(150)))
    rows = [
        [w, round(r.lssr, 3), round(r.best_metric, 3)] for w, r in out.items()
    ]
    save_result(
        "ablation_ewma_window",
        render_table(
            ["ewma_window", "lssr", "best_acc"],
            rows,
            title="Ablation: smoothing window vs sync behaviour (delta=0.3)",
        ),
    )
    # All windows must deliver usable accuracy; the default w=25 should not
    # be worse than the noisy w=1 tracker.
    assert out[25].best_metric >= out[1].best_metric - 0.05


def test_ablation_alpha_is_cluster_scaled():
    """The paper sets alpha = N/100; verify the trainer's default follows."""
    built = build_workload("resnet_cifar10", n_workers=4, n_steps=10, data_scale=0.1)
    trainer = SelSyncTrainer(built.workers, built.cluster, delta=0.3)
    assert trainer.trackers[0].alpha == 0.04
