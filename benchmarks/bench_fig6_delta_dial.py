"""Fig. 6: the δ threshold dials training between BSP and pure local-SGD."""

from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table

DELTAS = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 1e9)


def test_fig6_delta_dial(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig6_delta_dial(
            deltas=DELTAS,
            workload="resnet_cifar10",
            n_workers=2,
            n_steps=scaled_steps(120),
            data_scale=0.25,
        ),
    )
    rows = [
        [d, round(v["lssr"], 3), round(v["metric"], 3), round(v["sim_time"], 1)]
        for d, v in out.items()
    ]
    save_result(
        "fig6_delta_dial",
        render_table(
            ["delta", "lssr", "final_metric", "sim_time_s"],
            rows,
            title="Fig 6: LSSR vs delta (0 => BSP, large => local-SGD)",
        ),
    )
    assert out[0.0]["lssr"] == 0.0
    assert out[1e9]["lssr"] > 0.9
    lssrs = [out[d]["lssr"] for d in DELTAS]
    assert lssrs == sorted(lssrs)  # monotone dial
    # Communication savings translate into simulated time savings.
    assert out[1e9]["sim_time"] < out[0.0]["sim_time"]
