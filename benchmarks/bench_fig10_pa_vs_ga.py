"""Fig. 10/11: parameter vs gradient aggregation — accuracy and weight drift."""

from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table


def test_fig10_pa_vs_ga_accuracy(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig10_pa_vs_ga(
            workloads=("resnet_cifar10", "vgg_cifar100"),
            delta=0.1,  # paper's δ=0.25 mapped to this Δ(g) scale
            n_workers=4,
            n_steps=scaled_steps(220),
            data_scale=0.3,
        ),
    )
    rows = [[w, round(v["pa"], 3), round(v["ga"], 3)] for w, v in out.items()]
    save_result(
        "fig10_pa_vs_ga",
        render_table(
            ["workload", "param_agg_acc", "grad_agg_acc"],
            rows,
            title="Fig 10: SelSync (delta=0.1, SelDP) — PA vs GA final accuracy",
        ),
    )
    # PA achieves the same or better convergence than GA (paper §III-C).
    for v in out.values():
        assert v["pa"] >= v["ga"] - 0.02


def test_fig11_weight_distribution_alignment(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig11_weight_distributions(
            workload="resnet_cifar10",
            delta=0.1,
            n_workers=4,
            n_steps=scaled_steps(180),
            data_scale=0.3,
        ),
    )
    rows = [
        [m, f"{v['std']:.5f}", f"{v['wasserstein_to_bsp']:.6f}"]
        for m, v in out.items()
    ]
    save_result(
        "fig11_weight_distributions",
        render_table(
            ["method", "probe_layer_std", "wasserstein_to_bsp"],
            rows,
            title="Fig 11: probe-layer weight distribution vs BSP's",
        ),
    )
    # PA's weight distribution sits closer to BSP's than GA's does.
    assert out["pa"]["wasserstein_to_bsp"] <= out["ga"]["wasserstein_to_bsp"]
