"""Ablation: Alg. 1's any-worker sync vote vs a majority quorum.

DESIGN.md calls out the OR-rule as a design choice; this ablation quantifies
what a weaker quorum would trade: fewer syncs (higher LSSR, less time) vs
replica-divergence risk (accuracy).
"""

from _common import once, save_result, scaled_steps

from repro.core import SelSyncTrainer, TrainConfig
from repro.experiments.reporting import render_table
from repro.experiments.workloads import build_workload


def run_votes(n_steps):
    out = {}
    for vote in ("any", "majority"):
        built = build_workload(
            "resnet_cifar10", n_workers=4, n_steps=n_steps, data_scale=0.25
        )
        trainer = SelSyncTrainer(
            built.workers, built.cluster, schedule=built.schedule,
            delta=0.3, sync_vote=vote,
        )
        cfg = TrainConfig(
            n_steps=n_steps, eval_every=max(20, n_steps // 5), eval_fn=built.eval_fn
        )
        out[vote] = trainer.run(cfg)
    return out


def test_ablation_any_vs_majority(benchmark):
    out = once(benchmark, lambda: run_votes(scaled_steps(180)))
    rows = [
        [v, round(r.lssr, 3), round(r.best_metric, 3), round(r.sim_time, 1)]
        for v, r in out.items()
    ]
    save_result(
        "ablation_any_vs_majority",
        render_table(
            ["sync_vote", "lssr", "best_acc", "sim_time_s"],
            rows,
            title="Ablation: any-worker OR-rule vs majority quorum (delta=0.3)",
        ),
    )
    # A majority quorum can only reduce synchronization frequency.
    assert out["majority"].lssr >= out["any"].lssr - 1e-9
