"""Fig. 1a/1b: PS throughput scaling and FedAvg IID-vs-non-IID gap."""

from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table

CLUSTERS = (1, 2, 4, 8, 16)


def test_fig1a_relative_throughput(benchmark):
    out = once(benchmark, lambda: figures.fig1a_relative_throughput(CLUSTERS))
    rows = [[m, *[round(v, 2) for v in series]] for m, series in out.items()]
    save_result(
        "fig1a_relative_throughput",
        render_table(
            ["model", *[f"N={n}" for n in CLUSTERS]],
            rows,
            title="Fig 1a: relative throughput vs cluster size (PS, 5 Gbps)",
        ),
    )
    # Shape claims: sublinear everywhere; VGG11 < 1 at N=2; ResNet ≈ 3x at 16.
    assert all(series[-1] < 16 for series in out.values())
    assert out["vgg11"][1] < 1.0
    assert 1.5 < out["resnet101"][-1] < 6.0


def test_fig1b_fedavg_iid_vs_noniid(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig1b_fedavg_iid_vs_noniid(
            n_workers=6, n_steps=scaled_steps(200), data_scale=0.3
        ),
    )
    rows = [
        [w, round(v["iid"], 3), round(v["noniid"], 3)] for w, v in out.items()
    ]
    save_result(
        "fig1b_fedavg_iid_vs_noniid",
        render_table(
            ["workload", "iid_acc", "noniid_acc"],
            rows,
            title="Fig 1b: FedAvg (C=1, E=0.1) on balanced vs label-skewed data",
        ),
    )
    # Non-IID must hurt on every workload.
    for v in out.values():
        assert v["noniid"] <= v["iid"] + 0.02
