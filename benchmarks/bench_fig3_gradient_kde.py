"""Fig. 3: gradient densities concentrate near zero as training progresses."""

from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table
from repro.utils.asciiplot import line_plot


def test_fig3_gradient_kde(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig3_gradient_kde(
            workload="resnet_cifar10",
            n_workers=2,
            early_steps=10,
            late_steps=scaled_steps(400),
            data_scale=0.4,
        ),
    )
    peak = {k: float(v["density"].max()) for k, v in out.items()}
    rows = [
        [phase, f"{out[phase]['std']:.6f}", f"{peak[phase]:.1f}"]
        for phase in ("early", "late")
    ]
    text = render_table(
        ["phase", "grad_std", "kde_peak"],
        rows,
        title="Fig 3: probe-layer gradient distribution, early vs late epoch",
    )
    for phase in ("early", "late"):
        text += "\n\n" + line_plot(
            out[phase]["density"], width=64, height=8,
            label=f"KDE ({phase}) over gradient value grid",
        )
    save_result("fig3_gradient_kde", text)
    # The late density must be narrower (smaller std) and taller at 0.
    assert out["late"]["std"] < out["early"]["std"]
    assert peak["late"] > peak["early"]
