"""Fig. 8: SelSync's bookkeeping overheads (Δ tracker, SelDP partitioner)."""

from _common import once, save_result

from repro.experiments import figures
from repro.experiments.reporting import render_table

WINDOWS = (25, 50, 100, 200)


def test_fig8a_tracker_overhead(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig8a_tracker_overhead(
            windows=WINDOWS, grad_size=200_000, n_updates=300
        ),
    )
    rows = [[w, f"{ms:.4f}"] for w, ms in out.items()]
    save_result(
        "fig8a_tracker_overhead",
        render_table(
            ["window", "ms_per_iteration"],
            rows,
            title="Fig 8a: delta(g) + EWMA overhead vs smoothing window",
        ),
    )
    # Overhead grows with the window (O(w) smoothing pass) yet stays tiny
    # relative to typical compute/communication times (<< 1 ms here).
    assert out[200] > out[25]
    assert out[200] < 50.0


def test_fig8b_partition_overhead(benchmark):
    out = once(benchmark, lambda: figures.fig8b_partition_overhead(repeats=3))
    rows = [
        [name, f"{v['defdp_s']:.4f}", f"{v['seldp_s']:.4f}"]
        for name, v in out.items()
    ]
    save_result(
        "fig8b_partition_overhead",
        render_table(
            ["dataset", "defdp_s", "seldp_s"],
            rows,
            title="Fig 8b: one-time partitioning cost at paper dataset scales",
        ),
    )
    # SelDP costs more but the margin is a one-time cost of seconds at most.
    for v in out.values():
        assert v["seldp_s"] >= v["defdp_s"] * 0.5
        assert v["seldp_s"] < 30.0
