"""Fig. 12: non-IID training — SelSync with data injection vs FedAvg."""

from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table

# Paper's (α, β, δ) with δ mapped to this substrate's Δ(g) scale.
CONFIGS = ((0.5, 0.5, 0.02), (0.5, 0.5, 0.1), (0.75, 0.75, 0.1))


def test_fig12_noniid_injection(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig12_noniid_injection(
            workload="resnet_cifar10",
            configs=CONFIGS,
            n_workers=5,
            labels_per_worker=1,
            n_steps=scaled_steps(180),
            data_scale=0.3,
        ),
    )
    rows = [[k, round(v, 3)] for k, v in out.items()]
    save_result(
        "fig12_noniid_injection",
        render_table(
            ["method", "best_acc"],
            rows,
            title="Fig 12: label-skewed CIFAR10-like — FedAvg vs SelSync-(a,b,d)",
        ),
    )
    # Every injection config beats FedAvg, and the strongest injection
    # ((0.75, 0.75, 0.3)) attains the maximum (paper §IV-E ordering).
    sel = {k: v for k, v in out.items() if k.startswith("selsync")}
    assert max(sel.values()) >= out["fedavg"]
    strongest = sel["selsync(0.75,0.75,0.1)"]
    assert strongest >= max(sel.values()) - 0.03
