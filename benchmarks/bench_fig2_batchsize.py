"""Fig. 2: compute time and memory vs batch size (the SSP Nb argument)."""

from _common import once, save_result

from repro.experiments import figures
from repro.experiments.reporting import render_table

BATCHES = (16, 32, 64, 128, 256, 512)


def test_fig2_batchsize_scaling(benchmark):
    out = once(benchmark, lambda: figures.fig2_batchsize_scaling(BATCHES))

    time_rows = [
        [m, *[f"{t*1e3:.1f}" for t in d["compute_time_s"]]] for m, d in out.items()
    ]
    mem_rows = [
        [m, *[f"{b/1e6:.1f}" for b in d["memory_bytes"]]] for m, d in out.items()
    ]
    headers = ["model", *[f"b={b}" for b in BATCHES]]
    save_result(
        "fig2a_compute_time_ms",
        render_table(headers, time_rows, title="Fig 2a: K80 compute time (ms) vs batch"),
    )
    save_result(
        "fig2b_memory_mb",
        render_table(headers, mem_rows, title="Fig 2b: worker memory (MB) vs batch"),
    )
    for d in out.values():
        t = d["compute_time_s"]
        m = d["memory_bytes"]
        assert t == sorted(t)  # compute rises with batch
        assert m == sorted(m)  # memory rises with batch (the OOM mechanism)
