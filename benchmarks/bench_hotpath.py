"""Hot-path A/B benchmark: seed path vs arena fast path, serial vs threaded.

Measures lock-step training throughput (steps/sec) on the SmallVGG/CIFAR100
workload with 8 workers for BSP and SelSync under three configurations:

* ``seed``          — fast path disabled: the original flatten-by-concatenate
                      storage, im2col convolutions, ``np.stack`` aggregation.
* ``arena-serial``  — zero-copy arenas + fast kernels, serial executor.
* ``arena-threaded``— same, per-worker gradient phase on a thread pool.

Methodology: the host's clock frequency drifts in slow waves, so absolute
timings from different moments are not comparable. Instead seed and arena
trials are *interleaved* (off, on, off, on, ...) and the reported speedup is
the **median of pairwise ratios** of adjacent trials — adjacent pairs see
the same host speed, so the drift cancels. Run as a script (optionally with
``--quick``) to write ``BENCH_hotpath.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]

The same invocation also runs the **executor-scaling sweep** and writes
``BENCH_executor.json``: serial vs threaded vs process backends (all on the
arena fast path) with the same interleaved pairwise methodology, the host
core count, and a serial-vs-process RunLog byte-identity check. Process
speedups only mean anything on a multi-core host — ``cpu_count`` is recorded
so downstream assertions can gate on it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.runner import MethodSpec, build_trainer
from repro.experiments.workloads import get_workload
from repro.utils import fastpath
from repro.utils.flatten import flatten_arrays, mean_into

ROOT = Path(__file__).resolve().parent.parent


def make_trainer(
    method: str,
    executor: str = "serial",
    n_workers: int = 8,
    cluster_extra: dict | None = None,
):
    wl = get_workload("vgg_cifar100")
    kw = {"executor": executor}
    if cluster_extra:
        kw.update(cluster_extra)
    built = wl.build(
        n_workers=n_workers,
        n_steps=1000,
        data_scale=0.25,
        seed=0,
        cluster_kwargs=kw,
    )
    return build_trainer(MethodSpec(method, {}), built)


def time_steps(trainer, start: int, n: int) -> float:
    """Steps/sec over n consecutive trainer steps (wall clock)."""
    t0 = time.perf_counter()
    for i in range(start, start + n):
        trainer.step(i)
    return n / (time.perf_counter() - t0)


def ab_trial(method: str, executor: str, trials: int, steps_off: int, steps_on: int):
    """Interleaved off/on trials; returns per-mode rates and pairwise ratios.

    One trainer runs with the fast path disabled (the seed-cost emulation),
    a second with it enabled; trials alternate so adjacent pairs share the
    host's momentary speed.
    """
    with fastpath.fastpath(False):
        tr_off = make_trainer(method, "serial")
    tr_on = make_trainer(method, executor)
    gc.disable()
    try:
        # Warmup builds workspaces/arenas and touches every code path once.
        with fastpath.fastpath(False):
            for i in range(3):
                tr_off.step(i)
        for i in range(3):
            tr_on.step(i)
        off_rates, on_rates = [], []
        off_i, on_i = 3, 3
        for _ in range(trials):
            with fastpath.fastpath(False):
                off_rates.append(time_steps(tr_off, off_i, steps_off))
            off_i += steps_off
            on_rates.append(time_steps(tr_on, on_i, steps_on))
            on_i += steps_on
    finally:
        gc.enable()
        tr_on.executor.shutdown()
        tr_off.executor.shutdown()
    ratios = [on / off for off, on in zip(off_rates, on_rates)]
    return {
        "seed_steps_per_sec": round(statistics.median(off_rates), 3),
        "fast_steps_per_sec": round(statistics.median(on_rates), 3),
        "pairwise_ratios": [round(r, 3) for r in ratios],
        "speedup_median_pairwise": round(statistics.median(ratios), 3),
    }


def executor_trial(method: str, kind: str, trials: int, steps: int):
    """Interleaved serial-vs-``kind`` trials, both on the arena fast path.

    Same drift-cancelling methodology as :func:`ab_trial`, but comparing
    executor backends instead of storage layouts.
    """
    tr_ser = make_trainer(method, "serial")
    tr_other = make_trainer(method, kind)
    gc.disable()
    try:
        for i in range(3):  # warmup: forks the pool, builds workspaces
            tr_ser.step(i)
            tr_other.step(i)
        ser_rates, other_rates = [], []
        ser_i = other_i = 3
        for _ in range(trials):
            ser_rates.append(time_steps(tr_ser, ser_i, steps))
            ser_i += steps
            other_rates.append(time_steps(tr_other, other_i, steps))
            other_i += steps
    finally:
        gc.enable()
        tr_other.executor.shutdown()
        tr_ser.executor.shutdown()
    ratios = [o / s for s, o in zip(ser_rates, other_rates)]
    return {
        "serial_steps_per_sec": round(statistics.median(ser_rates), 3),
        f"{kind}_steps_per_sec": round(statistics.median(other_rates), 3),
        "pairwise_ratios": [round(r, 3) for r in ratios],
        "speedup_median_pairwise": round(statistics.median(ratios), 3),
    }


def aggregator_trial(agg: str, trials: int, steps: int, method: str = "bsp"):
    """Interleaved mean-vs-robust-aggregator trials on SmallVGG/8w.

    BSP aggregates every step, so it is the worst case for per-sync
    aggregator overhead. ``overhead_median_pairwise`` is the median of
    pairwise (adjacent) mean-rate / robust-rate ratios: 1.0 means free,
    1.15 means the robust reduction costs 15% of end-to-end step time.
    """
    tr_mean = make_trainer(method, "serial")
    tr_robust = make_trainer(
        method, "serial", cluster_extra={"aggregator": agg, "trim_f": 2}
    )
    gc.disable()
    try:
        for i in range(3):
            tr_mean.step(i)
            tr_robust.step(i)
        mean_rates, robust_rates = [], []
        mean_i = robust_i = 3
        for _ in range(trials):
            mean_rates.append(time_steps(tr_mean, mean_i, steps))
            mean_i += steps
            robust_rates.append(time_steps(tr_robust, robust_i, steps))
            robust_i += steps
    finally:
        gc.enable()
        tr_robust.executor.shutdown()
        tr_mean.executor.shutdown()
    ratios = [m / r for m, r in zip(mean_rates, robust_rates)]
    return {
        "mean_steps_per_sec": round(statistics.median(mean_rates), 3),
        f"{agg}_steps_per_sec": round(statistics.median(robust_rates), 3),
        "pairwise_ratios": [round(r, 3) for r in ratios],
        "overhead_median_pairwise": round(statistics.median(ratios), 3),
    }


def aggregator_sweep(trials: int, steps: int):
    out = {}
    for agg in ("median", "trimmed_mean", "norm_clip", "multi_krum"):
        out[agg] = aggregator_trial(agg, trials, steps)
        print(f"aggregator/{agg}: {out[agg]}")
    return out


def runlog_byte_identity(method: str = "bsp", n_steps: int = 6) -> bool:
    """Serial and process backends must write byte-identical RunLogs."""
    from repro.core import TrainConfig
    from repro.utils.serialization import save_runlog

    blobs = {}
    for kind in ("serial", "process"):
        trainer = make_trainer(method, kind)
        try:
            res = trainer.run(TrainConfig(n_steps=n_steps, eval_every=n_steps))
        finally:
            trainer.executor.shutdown()
        with tempfile.NamedTemporaryFile(suffix=".jsonl") as f:
            save_runlog(res.log, f.name)
            blobs[kind] = Path(f.name).read_bytes()
    return blobs["serial"] == blobs["process"]


def executor_sweep(trials: int, steps: int, quick: bool):
    results = {
        "workload": "vgg_cifar100 (SmallVGG), 8 workers, data_scale=0.25",
        "methodology": (
            "interleaved serial/backend trials on the arena fast path; "
            "speedup = median of pairwise (adjacent) steps-per-sec ratios"
        ),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "runlog_byte_identical": runlog_byte_identity(),
        "methods": {},
    }
    for method in ("bsp", "selsync"):
        results["methods"][method] = {}
        for kind in ("threaded", "process"):
            results["methods"][method][kind] = executor_trial(
                method, kind, trials, steps
            )
            print(f"{method}/{kind}: {results['methods'][method][kind]}")
    return results


def shard_sweep(n_steps: int, shard_counts=(1, 2, 4, 8), method: str = "bsp"):
    """Modelled sync-time sweep over parameter-server shard counts.

    Sharding is a *timing-model* statement — shards are served by parallel
    PS ingress links, so the sync round costs the slowest shard, not the
    sum — while the arithmetic is bitwise shard-count-invariant. Both
    halves are checked here: modelled comm time must shrink (S=4 at least
    1.5x faster than unsharded on SmallVGG, whose largest tensor holds
    ~60% of the bytes) and the final global params must be identical to
    the unsharded run. Modelled time is deterministic, so the assertion
    cannot flake with host speed.
    """
    from repro.core import TrainConfig

    out = {
        "workload": "vgg_cifar100 (SmallVGG), 8 workers, data_scale=0.25",
        "method": method,
        "n_steps": n_steps,
        "metric": "modelled (simulated) communication seconds, whole run",
        "per_shard": {},
    }
    ref_params = ref_comm = None
    identical = True
    for s in shard_counts:
        trainer = make_trainer(method, "serial", cluster_extra={"ps_shards": s})
        try:
            res = trainer.run(TrainConfig(n_steps=n_steps, eval_every=n_steps))
        finally:
            trainer.executor.shutdown()
        comm = sum(r.comm_time for r in res.log.iterations)
        params = trainer.server.pull().tobytes()
        if ref_params is None:
            ref_params, ref_comm = params, comm
        identical = identical and params == ref_params
        out["per_shard"][str(s)] = {
            "comm_time_s": round(comm, 6),
            "sim_time_s": round(res.log.total_sim_time, 6),
            "speedup_vs_unsharded": round(ref_comm / comm, 3),
        }
    out["params_bitwise_identical"] = identical
    assert identical, "sharding changed the arithmetic (params differ)"
    s4 = out["per_shard"]["4"]["speedup_vs_unsharded"]
    assert s4 >= 1.5, f"S=4 sync speedup {s4} < 1.5x on SmallVGG/8w {method}"
    return out


def elastic_sweep(n_steps: int, method: str = "selsync"):
    """Modelled goodput: fixed 8 workers vs the comm-fraction autoscaler.

    Both runs share the workload and step budget; the elastic run starts
    at 8 workers with ``scale:4..12`` bounds and lets the ``comm`` policy
    walk the world size. Goodput (samples per simulated second) and
    worker-seconds (the cost side) are deterministic quantities of the
    timing model, so the comparison cannot flake with host speed. The
    report includes provisioning charges (boot + model pull per join), so
    a policy that churns membership pays for it in the goodput column.
    """
    from repro.core import TrainConfig

    out = {
        "workload": "vgg_cifar100 (SmallVGG), data_scale=0.25",
        "method": method,
        "n_steps": n_steps,
        "metric": "modelled (simulated) goodput and worker-seconds",
        "runs": {},
    }
    for label, extra in (
        ("fixed8", {}),
        ("elastic", {"elastic_spec": "scale:4..12", "scale_policy": "comm"}),
    ):
        trainer = make_trainer(method, "serial", n_workers=8, cluster_extra=extra)
        try:
            res = trainer.run(TrainConfig(n_steps=n_steps, eval_every=n_steps))
        finally:
            trainer.executor.shutdown()
        batch = trainer.workers[0].loader.batch_size
        sim = res.log.total_sim_time
        if trainer.elastic is not None:
            sig = trainer.elastic.signals()
            samples = sig["elastic.samples"]
            worker_s = sig["elastic.worker_seconds"]
        else:
            samples = float(n_steps * 8 * batch)
            worker_s = 8.0 * sim
        out["runs"][label] = {
            "final_world_size": len(trainer.workers),
            "sim_time_s": round(sim, 6),
            "samples": samples,
            "goodput_samples_per_sim_s": round(samples / sim, 3),
            "worker_seconds": round(worker_s, 6),
            "cost_efficiency_samples_per_worker_s": round(samples / worker_s, 3),
        }
    fixed = out["runs"]["fixed8"]
    el = out["runs"]["elastic"]
    assert el["goodput_samples_per_sim_s"] > 0.0
    out["goodput_ratio_elastic_vs_fixed"] = round(
        el["goodput_samples_per_sim_s"] / fixed["goodput_samples_per_sim_s"], 3
    )
    out["cost_efficiency_ratio_elastic_vs_fixed"] = round(
        el["cost_efficiency_samples_per_worker_s"]
        / fixed["cost_efficiency_samples_per_worker_s"],
        3,
    )
    return out


def micro_flat_ops(n_params: int = 200_000, n_workers: int = 8, reps: int = 50):
    """Microbenchmark: flatten + aggregate, seed idiom vs arena idiom."""
    rng = np.random.default_rng(0)
    chunks = [rng.normal(size=s) for s in (64, 256, 1024, 4096, n_params)]
    vectors = [rng.normal(size=n_params) for _ in range(n_workers)]
    out = np.empty(n_params)

    t0 = time.perf_counter()
    for _ in range(reps):
        flatten_arrays(chunks)
    t_concat = (time.perf_counter() - t0) / reps

    flat = np.concatenate([c.ravel() for c in chunks])
    t0 = time.perf_counter()
    for _ in range(reps):
        flat.view()  # O(1) arena view
    t_view = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        np.mean(np.stack(vectors), axis=0)
    t_stack = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        mean_into(vectors, out=out)
    t_inplace = (time.perf_counter() - t0) / reps

    return {
        "n_params": n_params,
        "n_workers": n_workers,
        "flatten_concat_us": round(t_concat * 1e6, 2),
        "flatten_view_us": round(t_view * 1e6, 2),
        "aggregate_stack_us": round(t_stack * 1e6, 2),
        "aggregate_inplace_us": round(t_inplace * 1e6, 2),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer/shorter trials")
    ap.add_argument("--out", default=str(ROOT / "BENCH_hotpath.json"))
    ap.add_argument("--executor-out", default=str(ROOT / "BENCH_executor.json"))
    ap.add_argument(
        "--skip-hotpath",
        action="store_true",
        help="run only the executor sweep (skips the seed-vs-arena A/B)",
    )
    args = ap.parse_args(argv)

    trials = 3 if args.quick else 10
    steps_off = 4 if args.quick else 8
    steps_on = 8 if args.quick else 16

    if not args.skip_hotpath:
        results = {
            "workload": "vgg_cifar100 (SmallVGG), 8 workers, data_scale=0.25",
            "methodology": (
                "interleaved seed/arena trials; speedup = median of pairwise "
                "(adjacent) on/off steps-per-sec ratios, which cancels host "
                "clock drift"
            ),
            "quick": args.quick,
            "methods": {},
            "micro": micro_flat_ops(),
            "aggregator_overhead": aggregator_sweep(trials, steps_on),
            "shard_speedup": shard_sweep(4 if args.quick else 10),
            "elastic_goodput": elastic_sweep(24 if args.quick else 40),
        }
        print(f"shard_speedup: {results['shard_speedup']['per_shard']}")
        print(f"elastic_goodput: {results['elastic_goodput']['runs']}")
        for method in ("bsp", "selsync"):
            results["methods"][method] = {
                "arena-serial": ab_trial(method, "serial", trials, steps_off, steps_on),
            }
            print(f"{method}/arena-serial: "
                  f"{results['methods'][method]['arena-serial']}")
            results["methods"][method]["arena-threaded"] = ab_trial(
                method, "threaded", trials, steps_off, steps_on
            )
            print(f"{method}/arena-threaded: "
                  f"{results['methods'][method]['arena-threaded']}")

        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")

    ex_results = executor_sweep(trials, steps_on, args.quick)
    Path(args.executor_out).write_text(json.dumps(ex_results, indent=2) + "\n")
    print(f"wrote {args.executor_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
