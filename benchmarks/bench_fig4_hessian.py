"""Fig. 4: the Hessian's top eigenvalue tracks first-order gradient variance."""

import numpy as np
from _common import once, save_result, scaled_steps

from repro.experiments import figures
from repro.experiments.reporting import render_table


def test_fig4_hessian_vs_gradient_variance(benchmark):
    out = once(
        benchmark,
        lambda: figures.fig4_hessian_vs_gradient(n_steps=scaled_steps(80), seed=0),
    )
    rows = [
        [int(s), f"{e:.3f}", f"{v:.3f}"]
        for s, e, v in zip(
            out["steps"][:12], out["hessian_eig"][:12], out["grad_variance"][:12]
        )
    ]
    rows.append(["...", "", ""])
    rows.append(["corr", f"{out['correlation']:.3f}", ""])
    save_result(
        "fig4_hessian_vs_gradvar",
        render_table(
            ["step", "lambda_max(H)", "Var(g)"],
            rows,
            title="Fig 4: per-iteration Hessian eigenvalue vs gradient variance",
        ),
    )
    # The paper's claim: the two trajectories correlate (magnitudes differ).
    assert out["correlation"] > 0.3
