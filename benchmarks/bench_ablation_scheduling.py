"""Ablation: layer-wise communication scheduling (§II-D alternatives).

GradientFlow/ByteScheduler reduce the *cost of each sync*; SelSync reduces
the *number of syncs*. This bench models per-layer and bucketed schedules
over each analog model's real layer sizes and reports how much of the fused
sync cost overlap can hide — context for why skipping rounds still wins when
communication dominates.
"""

from _common import once, save_result

from repro.comm import NetworkModel
from repro.comm.scheduling import (
    bucketed_schedule,
    fused_schedule,
    layer_sizes_bytes,
    per_layer_schedule,
)
from repro.experiments.figures import PAPER_PROFILES
from repro.experiments.reporting import render_table
from repro.nn.models import build_model

#: analog model providing the *layer-size distribution*, paper profile
#: providing the total bytes it is scaled to.
MODELS = {
    "resnet101": "smallresnet",
    "vgg11": "smallvgg",
    "alexnet": "smallalexnet",
    "transformer": "tinytransformer",
}
BACKWARD_TIME = 0.1  # seconds; paper-scale backward on a V100


def run_schedules():
    net = NetworkModel(latency_s=1e-3)
    out = {}
    for paper_name, analog in MODELS.items():
        model = build_model(analog, rng=0)
        sizes = layer_sizes_bytes(model)
        # Scale the analog's layer-size *distribution* up to the paper
        # model's total bytes, so comm/compute ratios are testbed-realistic.
        paper_bytes = PAPER_PROFILES[paper_name][0]
        factor = paper_bytes / sum(sizes)
        sizes = [s * factor for s in sizes]
        out[paper_name] = {
            "fused": fused_schedule(sizes, BACKWARD_TIME, net),
            "per_layer": per_layer_schedule(sizes, BACKWARD_TIME, net),
            "bucketed": bucketed_schedule(
                sizes, BACKWARD_TIME, net, bucket_bytes=25e6
            ),
        }
    return out


def test_ablation_layer_scheduling(benchmark):
    out = once(benchmark, run_schedules)
    rows = []
    for name, res in out.items():
        rows.append(
            [
                name,
                f"{res['fused'].total_time*1e3:.2f}",
                f"{res['per_layer'].total_time*1e3:.2f}",
                f"{res['bucketed'].total_time*1e3:.2f}",
                res["bucketed"].n_messages,
            ]
        )
    save_result(
        "ablation_layer_scheduling",
        render_table(
            ["model", "fused_ms", "per_layer_ms", "bucketed_ms", "buckets"],
            rows,
            title="Ablation: fused vs per-layer vs bucketed sync (one round)",
        ),
    )
    for res in out.values():
        # Overlap never hurts; bucketing recovers per-layer's latency waste.
        assert res["per_layer"].total_time <= res["fused"].total_time + 1e-12
        assert res["bucketed"].total_time <= res["fused"].total_time + 1e-12
