"""Ablation: systems heterogeneity (§II-A/§II-C motivation).

With a quarter of the workers running at half speed, BSP pays the straggler
on every barrier; SSP's asynchrony sidesteps it; SelSync pays it only on the
steps it chooses to synchronize. This quantifies the paper's premise that
the barrier — not just the bytes — is what hurts.
"""

from _common import once, save_result, scaled_steps

from repro.core import BSPTrainer, SSPTrainer, SelSyncTrainer, TrainConfig
from repro.experiments.reporting import render_table
from repro.experiments.workloads import build_workload

SPEEDS = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5]  # 25% slow workers


def run_methods(n_steps):
    out = {}
    for label, make in (
        ("bsp", lambda b: BSPTrainer(b.workers, b.cluster, schedule=b.schedule)),
        ("ssp s=50", lambda b: SSPTrainer(
            b.workers, b.cluster, schedule=b.schedule, staleness=50)),
        ("selsync d=0.3", lambda b: SelSyncTrainer(
            b.workers, b.cluster, schedule=b.schedule, delta=0.3)),
    ):
        built = build_workload(
            "vgg_cifar100",
            n_workers=len(SPEEDS),
            n_steps=n_steps,
            data_scale=0.25,
            cluster_kwargs={"speeds": SPEEDS, "jitter_sigma": 0.05},
            dataset_overrides={"n_classes": 30},
        )
        cfg = TrainConfig(
            n_steps=n_steps, eval_every=max(20, n_steps // 4), eval_fn=built.eval_fn
        )
        out[label] = make(built).run(cfg)
    return out


def test_ablation_stragglers(benchmark):
    out = once(benchmark, lambda: run_methods(scaled_steps(100)))
    rows = [
        [label, round(r.best_metric, 3), round(r.sim_time, 1),
         round(r.log.total_comm_time, 1)]
        for label, r in out.items()
    ]
    save_result(
        "ablation_stragglers",
        render_table(
            ["method", "best_acc", "sim_time_s", "comm_time_s"],
            rows,
            title="Ablation: 25% of workers at half speed (VGG, N=8)",
        ),
    )
    # SelSync's local steps dodge most barriers: faster than BSP here.
    assert out["selsync d=0.3"].sim_time < out["bsp"].sim_time
    # SSP never waits for the barrier at all.
    assert out["ssp s=50"].sim_time < out["bsp"].sim_time
