"""Ablation: swapping the PS for allreduce topologies (paper §III closing
remark: pushToPS/pullFromPS can be replaced by collectives for further
speedup)."""

from _common import once, save_result, scaled_steps

from repro.core import SelSyncTrainer, TrainConfig
from repro.experiments.reporting import render_table
from repro.experiments.workloads import build_workload

TOPOLOGIES = ("ps", "ring", "tree")


def run_topologies(n_steps):
    out = {}
    for topo in TOPOLOGIES:
        built = build_workload(
            "vgg_cifar100",
            n_workers=8,
            n_steps=n_steps,
            data_scale=0.25,
            cluster_kwargs={"topology": topo},
            dataset_overrides={"n_classes": 30},
        )
        trainer = SelSyncTrainer(
            built.workers, built.cluster, schedule=built.schedule, delta=0.3
        )
        cfg = TrainConfig(
            n_steps=n_steps, eval_every=max(20, n_steps // 5), eval_fn=built.eval_fn
        )
        out[topo] = trainer.run(cfg)
    return out


def test_ablation_topology(benchmark):
    out = once(benchmark, lambda: run_topologies(scaled_steps(100)))
    rows = [
        [t, round(r.best_metric, 3), round(r.sim_time, 1),
         round(r.log.total_comm_time, 1)]
        for t, r in out.items()
    ]
    save_result(
        "ablation_topology",
        render_table(
            ["topology", "best_acc", "sim_time_s", "comm_time_s"],
            rows,
            title="Ablation: SelSync over PS vs ring vs tree (VGG, N=8)",
        ),
    )
    # Identical learning dynamics, different clock: ring beats PS on the
    # bandwidth-heavy VGG model, and accuracy is topology-independent.
    assert out["ring"].log.total_comm_time < out["ps"].log.total_comm_time
    accs = [r.best_metric for r in out.values()]
    assert max(accs) - min(accs) < 0.05
