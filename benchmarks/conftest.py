"""Benchmark-suite conftest: make `_common` importable from any cwd."""

import sys
from pathlib import Path

BENCH_DIR = str(Path(__file__).parent)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)
