"""Table I: the full method grid across the four workloads.

For each workload, run BSP, four FedAvg configurations, two SSP staleness
settings and two SelSync thresholds under the paper's protocol (train until
the eval metric stops improving), then derive LSSR, convergence difference
vs BSP, the outperform flag, and overall speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.metrics import convergence_difference, speedup_vs_bsp
from repro.core.trainer import TrainResult
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import get_workload

#: The paper's method grid (Table I rows per workload). The SelSync rows use
#: δ = 0.1 / 0.2 — the paper's δ = 0.3 / 0.5 mapped onto this substrate's
#: Δ(g) scale by matching realized LSSR (see EXPERIMENTS.md).
DEFAULT_METHODS: List[MethodSpec] = [
    MethodSpec("bsp", label="BSP"),
    MethodSpec("fedavg", {"c_fraction": 1.0, "e_factor": 0.25}, label="FedAvg (1, 0.25)"),
    MethodSpec("fedavg", {"c_fraction": 1.0, "e_factor": 0.125}, label="FedAvg (1, 0.125)"),
    MethodSpec("fedavg", {"c_fraction": 0.5, "e_factor": 0.25}, label="FedAvg (0.5, 0.25)"),
    MethodSpec("fedavg", {"c_fraction": 0.5, "e_factor": 0.125}, label="FedAvg (0.5, 0.125)"),
    MethodSpec("ssp", {"staleness": 100}, label="SSP s=100"),
    MethodSpec("ssp", {"staleness": 200}, label="SSP s=200"),
    MethodSpec("selsync", {"delta": 0.1}, label="SelSync d=0.1"),
    MethodSpec("selsync", {"delta": 0.2}, label="SelSync d=0.2"),
]

DEFAULT_WORKLOADS = (
    "resnet_cifar10",
    "vgg_cifar100",
    "alexnet_imagenet",
    "transformer_wikitext",
)


@dataclass
class Table1Row:
    """One (workload, method) cell group of Table I."""

    workload: str
    method: str
    iterations: int
    lssr: Optional[float]
    metric: Optional[float]
    conv_diff: Optional[float]
    outperforms_bsp: Optional[bool]
    speedup: Optional[float]
    sim_time: float


def run_table1(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    methods: Sequence[MethodSpec] = tuple(DEFAULT_METHODS),
    n_workers: int = 8,
    n_steps: int = 400,
    eval_every: int = 50,
    patience: Optional[int] = 4,
    data_scale: float = 0.4,
    seed: int = 0,
    conv_tolerance: float = 0.005,
) -> List[Table1Row]:
    """Run the grid and return one row per (workload, method).

    ``conv_tolerance`` is the slack used for the speedup column's
    "reached BSP quality" test (metrics are stochastic at this scale). It is
    interpreted *relative* to the BSP metric's magnitude so it works on both
    the accuracy scale (≈1) and the perplexity scale (≈tens).
    """
    rows: List[Table1Row] = []
    for wname in workloads:
        w = get_workload(wname)
        results: Dict[str, TrainResult] = {}
        bsp_result: Optional[TrainResult] = None
        from repro.experiments.figures import BENCH_DATASET_OVERRIDES

        for spec in methods:
            # SSP and the paper's FedAvg/SelSync runs use the partitioning
            # native to each method: SelDP for SelSync, DefDP otherwise.
            scheme = "seldp" if spec.kind == "selsync" else "defdp"
            built = w.build(
                n_workers=n_workers,
                n_steps=n_steps,
                partition_scheme=scheme,
                data_scale=data_scale,
                seed=seed,
                dataset_overrides=BENCH_DATASET_OVERRIDES.get(wname),
            )
            res = run_method(
                spec,
                built,
                n_steps=n_steps,
                eval_every=eval_every,
                patience=patience,
            )
            results[spec.display] = res
            if spec.kind == "bsp":
                bsp_result = res

        scale = 1.0
        if bsp_result is not None and bsp_result.best_metric is not None:
            scale = max(1.0, abs(bsp_result.best_metric))
        tol = conv_tolerance * scale
        for spec in methods:
            res = results[spec.display]
            if spec.kind == "bsp":
                conv, outp, speed = 0.0, None, 1.0
            else:
                conv = convergence_difference(
                    bsp_result, res, higher_is_better=w.higher_is_better
                )
                outp = conv is not None and conv >= -tol
                speed = speedup_vs_bsp(
                    bsp_result,
                    res,
                    higher_is_better=w.higher_is_better,
                    tolerance=tol,
                )
            rows.append(
                Table1Row(
                    workload=wname,
                    method=spec.display,
                    iterations=res.steps,
                    lssr=res.lssr,
                    metric=res.best_metric,
                    conv_diff=conv,
                    outperforms_bsp=outp,
                    speedup=speed,
                    sim_time=res.sim_time,
                )
            )
    return rows
