"""Experiment harness: canonical workloads and per-figure/table generators."""

from repro.experiments.workloads import WORKLOADS, Workload, build_workload
from repro.experiments.runner import build_trainer, run_method
from repro.experiments import figures, table1, reporting

__all__ = [
    "WORKLOADS",
    "Workload",
    "build_workload",
    "build_trainer",
    "run_method",
    "figures",
    "table1",
    "reporting",
]
