"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def fmt(value, precision: int = 3) -> str:
    """Human formatting: None → '-', floats rounded, bools as True/False."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Monospace table with column auto-sizing."""
    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(rows) -> str:
    """Render :func:`repro.experiments.table1.run_table1` output."""
    headers = [
        "Workload", "Method", "Iterations", "LSSR", "Metric",
        "ConvDiff", "BeatsBSP", "Speedup",
    ]
    body = [
        [
            r.workload,
            r.method,
            r.iterations,
            r.lssr,
            r.metric,
            r.conv_diff,
            r.outperforms_bsp,
            r.speedup,
        ]
        for r in rows
    ]
    return render_table(headers, body, title="Table I reproduction")


# -- trace dashboard ---------------------------------------------------------

#: Shade ramp for the straggler heatmap (light → dark = fast → slow).
_SHADES = " .:-=+*#%@"


def sparkline(values, width: int = 40) -> str:
    """Downsample ``values`` into a ``width``-column unicode-free sparkline."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # Bucket-mean downsample to the target width.
        step = len(vals) / width
        vals = [
            sum(vals[int(i * step): max(int(i * step) + 1, int((i + 1) * step))])
            / max(1, len(vals[int(i * step): max(int(i * step) + 1, int((i + 1) * step))]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SHADES[len(_SHADES) // 2] * len(vals)
    return "".join(
        _SHADES[min(len(_SHADES) - 1, int((v - lo) / span * (len(_SHADES) - 1)))]
        for v in vals
    )


def render_run_dashboard(tracer) -> str:
    """Ascii per-run dashboard over a closed (or in-memory) trace.

    Sections: headline ratios (sync ratio, bytes/step), per-collective
    traffic, a step-time sparkline, a straggler heatmap (workers × time
    buckets, darker = relatively slower that bucket), and — when the run
    saw link faults — per-step retry/reroute sparklines plus a link-health
    matrix (ranks × ranks, darker = more faulted steps on that link).
    """
    from repro.obs import views

    events = tracer.events
    lines = [f"== run dashboard: {tracer.name} =="]
    steps = views.events_of_type(events, "step_end")
    if not steps:
        return "\n".join(lines + ["(no step events in trace)"])
    ratio = views.sync_ratio(events)
    bps = views.bytes_per_step(events)
    lines.append(
        f"steps: {len(steps)}   sync ratio: {fmt(ratio)}   "
        f"bytes/step: {fmt(bps)}"
    )
    totals = views.collective_totals(events)
    if totals:
        lines.append("")
        lines.append(
            render_table(
                ["collective", "count", "bytes", "sim_seconds"],
                [
                    [op, t["count"], t["bytes"], t["seconds"]]
                    for op, t in sorted(totals.items())
                ],
            )
        )
    shards = views.shard_totals(events)
    if shards:
        lines.append("")
        lines.append(
            render_table(
                ["shard", "rounds", "bytes", "sim_seconds", "degraded"],
                [
                    [f"s{s}", t["rounds"], t["bytes"], t["seconds"], t["degraded"]]
                    for s, t in sorted(shards.items())
                ],
            )
        )
    sim_times = [e.data.get("sim_time", 0.0) for e in steps]
    lines.append("")
    lines.append(f"step sim_time: [{sparkline(sim_times)}]")
    matrix = views.straggler_matrix(events)
    if matrix is not None and len(matrix):
        finite = [v for row in matrix for v in row if v == v]
        lo = min(finite) if finite else 0.0
        hi = max(finite) if finite else 1.0
        span = (hi - lo) or 1.0
        absent = views.absence_matrix(events, buckets=matrix.shape[1])
        lines.append("")
        lines.append(
            "straggler heatmap (rows=workers, cols=time, dark=slow; "
            "x=departed, q=quarantined):"
        )
        for wid, row in enumerate(matrix):
            cells = []
            for b, v in enumerate(row):
                code = 0 if absent is None else int(absent[wid, b])
                if code == 1:
                    cells.append("x")
                elif code == 2:
                    cells.append("q")
                elif v != v:
                    cells.append("?")
                else:
                    cells.append(
                        _SHADES[
                            min(
                                len(_SHADES) - 1,
                                int((v - lo) / span * (len(_SHADES) - 1)),
                            )
                        ]
                    )
            lines.append(f"  w{wid:<3d} |{''.join(cells)}|")
    timeline = views.membership_timeline(events)
    if timeline:
        lines.append("")
        lines.append(
            render_table(
                ["step", "event", "worker", "uid", "world", "coverage"],
                [
                    [
                        t["step"],
                        t["action"],
                        "-" if t["worker"] is None or t["worker"] < 0
                        else f"w{t['worker']}",
                        "-" if t.get("uid") is None else t["uid"],
                        t.get("size_after"),
                        t.get("coverage"),
                    ]
                    for t in timeline
                ],
                title="membership timeline:",
            )
        )
    retries = views.retry_series(events)
    reroutes = views.reroute_series(events)
    if (retries is not None and retries.any()) or (
        reroutes is not None and reroutes.any()
    ):
        lines.append("")
        lines.append(
            f"network retries/step  [{sparkline(retries)}] "
            f"(total {int(retries.sum())})"
        )
        lines.append(
            f"reroutes/step         [{sparkline(reroutes)}] "
            f"(total {int(reroutes.sum())})"
        )
    health = views.link_health_matrix(events)
    if health is not None and health.any():
        hi = health.max() or 1.0
        n = len(health)
        lines.append("")
        lines.append(
            "link health (ranks x ranks, dark = faulted steps; "
            f"rank {n - 1} may be the PS):"
        )
        header = "        " + "".join(f"{r % 10}" for r in range(n))
        lines.append(header)
        for a, row in enumerate(health):
            cells = "".join(
                _SHADES[
                    min(len(_SHADES) - 1, int(v / hi * (len(_SHADES) - 1)))
                ]
                for v in row
            )
            lines.append(f"  r{a:<4d} |{cells}|")
    return "\n".join(lines)
