"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def fmt(value, precision: int = 3) -> str:
    """Human formatting: None → '-', floats rounded, bools as True/False."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Monospace table with column auto-sizing."""
    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(rows) -> str:
    """Render :func:`repro.experiments.table1.run_table1` output."""
    headers = [
        "Workload", "Method", "Iterations", "LSSR", "Metric",
        "ConvDiff", "BeatsBSP", "Speedup",
    ]
    body = [
        [
            r.workload,
            r.method,
            r.iterations,
            r.lssr,
            r.metric,
            r.conv_diff,
            r.outperforms_bsp,
            r.speedup,
        ]
        for r in rows
    ]
    return render_table(headers, body, title="Table I reproduction")
