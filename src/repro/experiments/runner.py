"""Method dispatch: build and run any trainer on a built workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core import (
    BSPTrainer,
    EASGDTrainer,
    FedAvgTrainer,
    LocalSGDTrainer,
    SSPTrainer,
    SelSyncTrainer,
    TrainConfig,
)
from repro.core.trainer import DistributedTrainer, TrainResult
from repro.experiments.workloads import BuiltWorkload

_TRAINERS = {
    "bsp": BSPTrainer,
    "localsgd": LocalSGDTrainer,
    "fedavg": FedAvgTrainer,
    "ssp": SSPTrainer,
    "selsync": SelSyncTrainer,
    "easgd": EASGDTrainer,
}


@dataclass
class MethodSpec:
    """One row of a comparison grid: a trainer plus its hyperparameters.

    Examples: ``MethodSpec("fedavg", {"c_fraction": 0.5, "e_factor": 0.25})``,
    ``MethodSpec("selsync", {"delta": 0.3})``.
    """

    kind: str
    params: Dict = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _TRAINERS:
            raise ValueError(
                f"unknown trainer {self.kind!r}; known: {sorted(_TRAINERS)}"
            )

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        if not self.params:
            return self.kind
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.kind}({inner})"


def build_trainer(spec: MethodSpec, built: BuiltWorkload) -> DistributedTrainer:
    cls = _TRAINERS[spec.kind]
    trainer = cls(
        built.workers, built.cluster, schedule=built.schedule, **spec.params
    )
    if trainer.elastic is not None and built.elastic_context is not None:
        trainer.bind_elastic(built.elastic_context)
    return trainer


def run_method(
    spec: MethodSpec,
    built: BuiltWorkload,
    n_steps: int,
    eval_every: int = 50,
    patience: Optional[int] = None,
    higher_is_better: Optional[bool] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    stop_after: Optional[int] = None,
    tracer=None,
    supervisor=None,
) -> TrainResult:
    """Run one method on an already-built workload (workers are consumed:
    rebuild the workload for the next method so everyone starts fresh).

    ``tracer`` (a :class:`repro.obs.Tracer`) is installed for the run and
    receives the reproducibility manifest as its metadata; the caller owns
    its lifecycle (``close()`` flushes the JSONL sink).

    ``supervisor`` (a :class:`repro.core.recovery.RecoverySupervisor`)
    wraps the run with rollback-and-retry on quorum loss / divergence;
    ``None`` runs the trainer directly.
    """
    trainer = build_trainer(spec, built)
    manifest = _manifest(spec, built, n_steps)
    if tracer is not None and not tracer.meta:
        tracer.meta = manifest
    cfg = TrainConfig(
        n_steps=n_steps,
        eval_every=eval_every,
        eval_fn=built.eval_fn,
        higher_is_better=(
            built.higher_is_better if higher_is_better is None else higher_is_better
        ),
        patience=patience,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
        stop_after=stop_after,
        tracer=tracer,
    )
    try:
        if supervisor is not None:
            result = supervisor.run(trainer, cfg)
        else:
            result = trainer.run(cfg)
    finally:
        # The trainer is dropped on return; release backend resources
        # (thread pools, forked worker processes + shared segments) now
        # rather than at garbage collection.
        trainer.executor.shutdown()
    result.log.meta = manifest
    return result


def _manifest(spec: MethodSpec, built: BuiltWorkload, n_steps: int) -> Dict:
    """Reproducibility manifest stored in the run log header."""
    import json

    import repro

    def jsonable(v):
        try:
            json.dumps(v)
            return v
        except TypeError:
            return repr(v)

    return {
        "method": spec.display,
        "kind": spec.kind,
        "params": {k: jsonable(v) for k, v in spec.params.items()},
        "n_workers": built.cluster.n_workers,
        "n_steps": n_steps,
        "batch_size": built.batch_size,
        "partition": built.partition.scheme,
        "seed": built.cluster.seed,
        "repro_version": repro.__version__,
    }
