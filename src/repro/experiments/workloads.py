"""Canonical workloads: the paper's four model/dataset pairs, downscaled.

Each :class:`Workload` bundles a model family, dataset generator, optimizer,
LR schedule and evaluation metric, together with the *paper-scale* model
size and per-sample FLOPs that drive the simulated clock — so communication
/compute ratios (and therefore all speedup shapes) match the 16×V100 testbed
even though the in-memory analog is tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.elastic import ElasticContext
from repro.cluster.worker import SimWorker, build_worker_group
from repro.core.config import ClusterConfig
from repro.core.evaluation import accuracy_eval, perplexity_eval
from repro.data import (
    BatchLoader,
    build_dataset,
    default_partition,
    label_skew_partition,
    selsync_partition,
)
from repro.data.dataset import Dataset
from repro.data.partition import Partition
from repro.nn.models import build_model
from repro.optim import SGD, Adam, ConstantLR, IntervalDecay, LRSchedule, MultiStepDecay
from repro.utils.registry import Registry

WORKLOADS: Registry = Registry("workload")


@dataclass
class BuiltWorkload:
    """A workload instantiated on a concrete simulated cluster."""

    workers: List[SimWorker]
    cluster: ClusterConfig
    schedule: LRSchedule
    eval_fn: Callable
    higher_is_better: bool
    train: Dataset
    test: Dataset
    partition: Partition
    batch_size: int
    steps_per_epoch: int
    #: Factories for elastic membership changes (joiner replicas and
    #: repartitioned loaders built exactly like the initial ones); the
    #: runner binds this to the trainer whenever elasticity is enabled.
    elastic_context: Optional[ElasticContext] = None


@dataclass
class Workload:
    """Declarative spec of one paper workload (see module docstring).

    ``paper_comm_bytes`` / ``paper_flops_per_sample`` are the testbed-scale
    values; ``lr_milestone_fracs`` express the paper's LR-decay epochs as
    fractions of the training budget so runs of any length decay at the same
    relative point.
    """

    name: str
    model_name: str
    model_kwargs: Dict = field(default_factory=dict)
    dataset_name: str = "cifar10_like"
    dataset_kwargs: Dict = field(default_factory=dict)
    batch_size: int = 32
    optimizer: str = "sgd"  # "sgd" | "adam"
    optimizer_kwargs: Dict = field(default_factory=dict)
    base_lr: float = 0.1
    lr_milestone_fracs: Tuple[float, ...] = ()
    lr_gamma: float = 0.1
    lr_interval_frac: Optional[float] = None  # IntervalDecay (Transformer)
    metric: str = "top1"  # "top1" | "top5" | "ppl"
    paper_comm_bytes: float = 170e6
    paper_flops_per_sample: float = 2.5e9
    paper_deltas: Tuple[float, ...] = (0.3, 0.5)

    @property
    def higher_is_better(self) -> bool:
        return self.metric != "ppl"

    def make_schedule(self, n_steps: int) -> LRSchedule:
        if self.lr_interval_frac is not None:
            interval = max(1, int(round(self.lr_interval_frac * n_steps)))
            return IntervalDecay(self.base_lr, interval=interval, gamma=self.lr_gamma)
        if self.lr_milestone_fracs:
            milestones = [int(round(f * n_steps)) for f in self.lr_milestone_fracs]
            return MultiStepDecay(self.base_lr, milestones, gamma=self.lr_gamma)
        return ConstantLR(self.base_lr)

    def make_eval(self, test: Dataset) -> Callable:
        if self.metric == "top1":
            return accuracy_eval(test, top_k=1)
        if self.metric == "top5":
            return accuracy_eval(test, top_k=5)
        if self.metric == "ppl":
            return perplexity_eval(test)
        raise ValueError(f"unknown metric {self.metric!r}")

    def build(
        self,
        n_workers: int = 4,
        n_steps: int = 400,
        partition_scheme: str = "seldp",
        labels_per_worker: int = 1,
        data_scale: float = 1.0,
        batch_size: Optional[int] = None,
        seed: int = 0,
        cluster_kwargs: Optional[Dict] = None,
        dataset_overrides: Optional[Dict] = None,
    ) -> BuiltWorkload:
        """Instantiate the workload on an N-worker simulated cluster.

        ``partition_scheme`` ∈ {"seldp", "defdp", "noniid"}; ``data_scale``
        shrinks/grows the generated dataset (tests use < 1 for speed);
        ``dataset_overrides`` merges into the generator kwargs (experiments
        use it to adjust class count or noise for a specific figure).
        """
        ds_kwargs = dict(self.dataset_kwargs)
        if dataset_overrides:
            ds_kwargs.update(dataset_overrides)
        for key in ("n_train", "n_test", "n_train_tokens", "n_test_tokens"):
            if key in ds_kwargs and data_scale != 1.0:
                ds_kwargs[key] = max(64, int(ds_kwargs[key] * data_scale))
        train, test = build_dataset(self.dataset_name, rng=seed, **ds_kwargs)

        b = self.batch_size if batch_size is None else batch_size
        # One (n_samples, n_workers, rng) -> Partition closure serves both
        # the initial split and any elastic repartition over a new world
        # size (SelDP re-rotates, DefDP re-splits, noniid re-skews).
        if partition_scheme == "seldp":
            partition_fn = selsync_partition
        elif partition_scheme == "defdp":
            partition_fn = default_partition
        elif partition_scheme == "noniid":
            def partition_fn(n_samples, n, rng=None):
                return label_skew_partition(
                    train.labels, n, labels_per_worker, rng=rng
                )
        else:
            raise ValueError(f"unknown partition scheme {partition_scheme!r}")
        part = partition_fn(len(train), n_workers, rng=seed + 1)

        loaders = BatchLoader.for_workers(train, part, batch_size=b, seed=seed + 2)

        def model_factory():
            return build_model(self.model_name, rng=seed + 3, **self.model_kwargs)

        if self.optimizer == "sgd":
            opt_factory = lambda m: SGD(m, lr=self.base_lr, **self.optimizer_kwargs)
        elif self.optimizer == "adam":
            opt_factory = lambda m: Adam(m, lr=self.base_lr, **self.optimizer_kwargs)
        else:
            raise ValueError(f"unknown optimizer {self.optimizer!r}")

        workers = build_worker_group(
            n_workers, model_factory, opt_factory, loaders
        )
        cluster = ClusterConfig(
            n_workers=n_workers,
            comm_bytes=self.paper_comm_bytes,
            flops_per_sample=self.paper_flops_per_sample,
            seed=seed,
            **(cluster_kwargs or {}),
        )
        return BuiltWorkload(
            workers=workers,
            cluster=cluster,
            schedule=self.make_schedule(n_steps),
            eval_fn=self.make_eval(test),
            higher_is_better=self.higher_is_better,
            train=train,
            test=test,
            partition=part,
            batch_size=b,
            steps_per_epoch=loaders[0].steps_per_epoch,
            elastic_context=ElasticContext(
                model_factory=model_factory,
                optimizer_factory=opt_factory,
                dataset=train,
                batch_size=b,
                partition_fn=partition_fn,
            ),
        )


def _register(w: Workload) -> Workload:
    WORKLOADS.register(w.name)(lambda: w)
    return w


#: ResNet101 on CIFAR10 (paper: b=32, SGD lr 0.1, mom 0.9, wd 4e-4,
#: decay 10× after epochs 110/150 of ~160; top-1 accuracy).
RESNET_CIFAR10 = _register(
    Workload(
        name="resnet_cifar10",
        model_name="smallresnet",
        model_kwargs={"n_classes": 10},
        dataset_name="cifar10_like",
        dataset_kwargs={"n_train": 2000, "n_test": 500},
        batch_size=32,
        optimizer="sgd",
        optimizer_kwargs={"momentum": 0.9, "weight_decay": 4e-4},
        base_lr=0.1,
        lr_milestone_fracs=(0.69, 0.94),  # 110/160, 150/160
        metric="top1",
        paper_comm_bytes=170e6,   # ResNet101 fp32
        paper_flops_per_sample=2.5e9,
    )
)

#: VGG11 on CIFAR100 (paper: b=32, SGD lr 0.01, mom 0.9, wd 5e-4,
#: decay after epochs 50/75; top-1 accuracy). The 507 MB model is the
#: communication-heaviest workload — SelSync's biggest win (13.75×).
VGG_CIFAR100 = _register(
    Workload(
        name="vgg_cifar100",
        model_name="smallvgg",
        model_kwargs={"n_classes": 100},
        dataset_name="cifar100_like",
        dataset_kwargs={"n_train": 3000, "n_test": 600, "n_classes": 100},
        batch_size=32,
        optimizer="sgd",
        optimizer_kwargs={"momentum": 0.9, "weight_decay": 5e-4},
        base_lr=0.05,
        lr_milestone_fracs=(0.56, 0.83),  # 50/90, 75/90
        metric="top1",
        paper_comm_bytes=507e6,   # VGG11 fp32
        paper_flops_per_sample=0.9e9,
    )
)

#: AlexNet on ImageNet-1K (paper: b=128, Adam, fixed lr 1e-4; top-5
#: accuracy). Large dataset volume makes FedAvg's per-epoch schedule
#: degenerate (LSSR ≈ 0.99, Table I).
ALEXNET_IMAGENET = _register(
    Workload(
        name="alexnet_imagenet",
        model_name="smallalexnet",
        model_kwargs={"n_classes": 20},
        dataset_name="imagenet_like",
        dataset_kwargs={"n_train": 4000, "n_test": 800, "n_classes": 20},
        batch_size=64,
        optimizer="adam",
        base_lr=1e-3,
        metric="top5",
        paper_comm_bytes=233e6,   # AlexNet fp32
        paper_flops_per_sample=2.2e9,  # 224px inputs
    )
)

#: Transformer on WikiText-103 (paper: b=20, SGD lr 2.0 decayed 0.8× every
#: 2000 iters, 35 bptt; test perplexity). The 267k-token vocabulary puts
#: most bytes in the embedding/softmax — comm-heavy relative to compute.
TRANSFORMER_WIKITEXT = _register(
    Workload(
        name="transformer_wikitext",
        model_name="tinytransformer",
        model_kwargs={"vocab_size": 64, "max_len": 16},
        dataset_name="wikitext_like",
        dataset_kwargs={"n_train_tokens": 40_000, "n_test_tokens": 8_000, "bptt": 16},
        batch_size=20,
        optimizer="sgd",
        base_lr=0.5,
        lr_interval_frac=0.2,
        lr_gamma=0.8,
        metric="ppl",
        paper_comm_bytes=214e6,   # 53M-param embedding-dominated model
        paper_flops_per_sample=4.0e9,  # softmax over 267k vocab dominates
    )
)


def build_workload(name: str, **kwargs) -> BuiltWorkload:
    """Build a registered workload by name with :meth:`Workload.build` args."""
    return WORKLOADS.create(name).build(**kwargs)


def get_workload(name: str) -> Workload:
    return WORKLOADS.create(name)
