"""Per-figure experiment generators.

Each ``figN_*`` function regenerates the data behind one figure of the
paper's evaluation and returns plain dictionaries/lists; the benchmark
modules print them as the rows/series the paper plots. Scale knobs
(`n_workers`, `n_steps`, `data_scale`) default to fast settings; the paper's
shape claims hold at any scale because the cost model carries the
testbed-size constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats

from repro.cluster.compute import K80_EFFECTIVE_FLOPS, ComputeModel
from repro.cluster.memory import MemoryModel
from repro.comm.network import NetworkModel
from repro.core import ClusterConfig, TrainConfig
from repro.core.grad_tracker import RelativeGradChange
from repro.core.hessian import hessian_top_eigenvalue
from repro.core.metrics import relative_throughput
from repro.data import build_dataset, default_partition, selsync_partition
from repro.data.injection import DataInjector, injected_batch_size
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import get_workload
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import build_model
from repro.optim import SGD
from repro.utils.timer import WallTimer

#: Paper-scale (comm_bytes, flops_per_sample, batch) per model family.
PAPER_PROFILES = {
    "resnet101": (170e6, 2.5e9, 32),
    "vgg11": (507e6, 0.9e9, 32),
    "alexnet": (233e6, 2.2e9, 128),
    "transformer": (214e6, 4.0e9, 20),
}

#: The paper's cluster shapes: N → GPUs per node (§II-A, Fig. 1a).
WORKERS_PER_NODE = {1: 1, 2: 1, 4: 1, 8: 2, 16: 4}

#: Dataset tweaks that keep each workload learnable at bench scale: the
#: 100-class CIFAR100 analog needs either far more data/steps or fewer
#: classes; 30 classes preserves the many-label character (10 labels/worker
#: in the non-IID split still covers only a third of them).
BENCH_DATASET_OVERRIDES = {"vgg_cifar100": {"n_classes": 30}}


# ---------------------------------------------------------------------------
# Fig. 1a — relative throughput vs cluster size
# ---------------------------------------------------------------------------

def fig1a_relative_throughput(
    cluster_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    models: Optional[Sequence[str]] = None,
) -> Dict[str, List[float]]:
    """Relative training throughput (vs 1 worker) per model and N."""
    models = list(PAPER_PROFILES) if models is None else list(models)
    out: Dict[str, List[float]] = {}
    for name in models:
        comm_bytes, flops, batch = PAPER_PROFILES[name]
        series = []
        for n in cluster_sizes:
            net = NetworkModel(workers_per_node=WORKERS_PER_NODE.get(n, 4))
            series.append(
                relative_throughput(flops, batch, n, comm_bytes, net=net)
            )
        out[name] = series
    return out


# ---------------------------------------------------------------------------
# Fig. 1b — FedAvg: IID vs non-IID accuracy
# ---------------------------------------------------------------------------

def fig1b_fedavg_iid_vs_noniid(
    n_workers: int = 10,
    n_steps: int = 300,
    data_scale: float = 0.5,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """FedAvg (C=1, E=0.1) final accuracy on IID vs label-skewed data.

    Paper setup: CIFAR10 split 1 label/worker, CIFAR100 split 10 labels/worker
    over 10 V100s.
    """
    out: Dict[str, Dict[str, float]] = {}
    # (workload, labels/worker, dataset overrides). The CIFAR100-like case
    # is scaled to 30 classes so FedAvg can learn the IID variant within the
    # bench budget; the 10-labels-per-worker skew ratio matches the paper.
    cases = [
        ("resnet_cifar10", 1, None),
        ("vgg_cifar100", 10, {"n_classes": 30}),
    ]
    for wname, labels_per_worker, overrides in cases:
        w = get_workload(wname)
        row = {}
        for scheme, lpw in (("seldp", 1), ("noniid", labels_per_worker)):
            built = w.build(
                n_workers=n_workers,
                n_steps=n_steps,
                partition_scheme=scheme,
                labels_per_worker=lpw,
                data_scale=data_scale,
                seed=seed,
                dataset_overrides=overrides,
            )
            res = run_method(
                MethodSpec("fedavg", {"c_fraction": 1.0, "e_factor": 0.1}),
                built,
                n_steps=n_steps,
                eval_every=max(20, n_steps // 6),
            )
            row["iid" if scheme == "seldp" else "noniid"] = res.best_metric
        out[wname] = row
    return out


# ---------------------------------------------------------------------------
# Fig. 2 — compute time and memory vs batch size (the SSP Nb argument)
# ---------------------------------------------------------------------------

def fig2_batchsize_scaling(
    batch_sizes: Sequence[int] = (16, 32, 64, 128, 256, 512),
) -> Dict[str, Dict[str, List[float]]]:
    """Per-model compute time (K80 profile, paper FLOPs) and measured memory
    footprint of the analog models across batch sizes."""
    out: Dict[str, Dict[str, List[float]]] = {}
    analog = {
        "resnet101": ("smallresnet", {"n_classes": 10}),
        "vgg11": ("smallvgg", {"n_classes": 100}),
        "alexnet": ("smallalexnet", {"n_classes": 20}),
        "transformer": ("tinytransformer", {"vocab_size": 64, "max_len": 16}),
    }
    mem_model = MemoryModel(optimizer_slots=1)
    rng = np.random.default_rng(0)
    for name, (_, flops, _) in PAPER_PROFILES.items():
        cm = ComputeModel(1, device_flops=K80_EFFECTIVE_FLOPS, jitter_sigma=0.0)
        times = [cm.mean_time(flops, b) for b in batch_sizes]
        model_name, kwargs = analog[name]
        model = build_model(model_name, rng=0, **kwargs)
        mems = []
        for b in batch_sizes:
            if model_name == "tinytransformer":
                x = rng.integers(0, 64, size=(b, 16))
            else:
                x = rng.normal(size=(b, 3, 16, 16))
            mems.append(float(mem_model.measure(model, x)))
        out[name] = {"compute_time_s": times, "memory_bytes": mems}
    return out


# ---------------------------------------------------------------------------
# Fig. 3 — gradient KDE narrows over training
# ---------------------------------------------------------------------------

def fig3_gradient_kde(
    workload: str = "resnet_cifar10",
    n_workers: int = 4,
    early_steps: int = 10,
    late_steps: int = 200,
    data_scale: float = 0.3,
    seed: int = 0,
    grid_points: int = 101,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Kernel density estimates of one layer's gradients, early vs late.

    Returns, per phase, the KDE evaluated on a shared grid plus the raw
    standard deviation — the paper's claim is that the late-phase density
    concentrates near zero.
    """
    w = get_workload(workload)
    built = w.build(
        n_workers=n_workers, n_steps=late_steps, data_scale=data_scale, seed=seed
    )
    from repro.core import BSPTrainer

    trainer = BSPTrainer(built.workers, built.cluster, schedule=built.schedule)
    params = built.workers[0].model.parameters()
    # Pick the largest conv/linear weight as the probed layer.
    probe = int(np.argmax([p.size for p in params]))

    snapshots: Dict[str, np.ndarray] = {}
    for i in range(late_steps):
        trainer.step(i)
        if i + 1 == early_steps:
            snapshots["early"] = params[probe].grad.ravel().copy()
    snapshots["late"] = params[probe].grad.ravel().copy()

    span = max(np.abs(snapshots["early"]).max(), np.abs(snapshots["late"]).max())
    grid = np.linspace(-span, span, grid_points)
    out = {}
    for phase, g in snapshots.items():
        kde = stats.gaussian_kde(g)
        out[phase] = {
            "grid": grid,
            "density": kde(grid),
            "std": float(g.std()),
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 4 — Hessian top eigenvalue vs first-order gradient variance
# ---------------------------------------------------------------------------

def fig4_hessian_vs_gradient(
    n_steps: int = 60,
    n_features: int = 16,
    n_classes: int = 4,
    hessian_every: int = 2,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Per-iteration λ_max(H) and gradient variance on a small model.

    Returns both series and their Pearson correlation on normalized values —
    the paper's point is that the two *trajectories* agree though magnitudes
    differ.
    """
    rng = np.random.default_rng(seed)
    train, _ = build_dataset(
        "blobs", n_train=256, n_test=64, n_features=n_features,
        n_classes=n_classes, rng=seed,
    )
    model = build_model("mlp", in_features=n_features, n_classes=n_classes,
                        hidden=(16,), rng=seed)
    opt = SGD(model, lr=0.1, momentum=0.9)
    steps, eigs, variances = [], [], []
    for i in range(n_steps):
        idx = rng.integers(0, len(train), 32)
        x, y = train.get_batch(idx)
        model.zero_grad()
        loss = CrossEntropyLoss()
        loss.forward(model.forward(x), y)
        model.backward(loss.backward())
        # Copy: the Hessian power iteration below reruns backward passes,
        # which would overwrite a live arena view before ``g @ g`` is read.
        g = model.get_flat_grads(copy=True)
        if i % hessian_every == 0:
            lam, _ = hessian_top_eigenvalue(model, x, y, n_iters=8, rng=seed + i)
            steps.append(i)
            eigs.append(lam)
            variances.append(float(g @ g))
        opt.step()
    eigs_a = np.array(eigs)
    var_a = np.array(variances)

    def norm(a):
        s = a.std()
        return (a - a.mean()) / s if s > 0 else a * 0.0

    corr = float(np.corrcoef(norm(eigs_a), norm(var_a))[0, 1])
    return {
        "steps": np.array(steps),
        "hessian_eig": eigs_a,
        "grad_variance": var_a,
        "correlation": corr,
    }


# ---------------------------------------------------------------------------
# Fig. 5 — Δ(g_i) tracks the convergence curve (via δ=0 SelSync ≡ BSP)
# ---------------------------------------------------------------------------

def fig5_gradchange_vs_convergence(
    workload: str = "resnet_cifar10",
    n_workers: int = 4,
    n_steps: int = 300,
    data_scale: float = 0.3,
    eval_every: int = 25,
    seed: int = 0,
    noise: float = 1.2,
) -> Dict[str, np.ndarray]:
    """BSP training (SelSync with δ=0 syncs every step) while recording
    Δ(g_i) and the test metric; the two series move together (Fig. 5),
    including the spike at the LR-decay milestone.

    ``noise`` raises the dataset's irreducible error so the loss has a
    positive floor — on a memorizable set the loss decays exponentially
    forever and Δ(g) never settles, which real datasets (and the paper's)
    do not exhibit.
    """
    w = get_workload(workload)
    built = w.build(
        n_workers=n_workers,
        n_steps=n_steps,
        data_scale=data_scale,
        seed=seed,
        dataset_overrides={"noise": noise},
    )
    res = run_method(
        MethodSpec("selsync", {"delta": 0.0}),
        built,
        n_steps=n_steps,
        eval_every=eval_every,
    )
    eval_steps, metrics = res.log.eval_curve()
    return {
        "grad_change": res.log.grad_changes(),
        "eval_steps": eval_steps,
        "metric": metrics,
        "lr_milestones": np.array(
            [int(round(f * n_steps)) for f in w.lr_milestone_fracs]
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 6 — the δ dial between BSP and pure local-SGD
# ---------------------------------------------------------------------------

def fig6_delta_dial(
    deltas: Sequence[float] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 1e9),
    workload: str = "resnet_cifar10",
    n_workers: int = 4,
    n_steps: int = 150,
    data_scale: float = 0.25,
    seed: int = 0,
) -> Dict[float, Dict[str, float]]:
    """LSSR per δ: 0 ⇒ pure BSP (LSSR 0), δ > M ⇒ pure local-SGD (LSSR → 1)."""
    w = get_workload(workload)
    out: Dict[float, Dict[str, float]] = {}
    for d in deltas:
        built = w.build(
            n_workers=n_workers, n_steps=n_steps, data_scale=data_scale, seed=seed
        )
        res = run_method(
            MethodSpec("selsync", {"delta": d}),
            built,
            n_steps=n_steps,
            eval_every=n_steps,
        )
        out[d] = {
            "lssr": res.lssr,
            "metric": res.final_metric,
            "sim_time": res.sim_time,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 8a — Δ(g_i)+EWMA overhead vs window size (real wall time)
# ---------------------------------------------------------------------------

def fig8a_tracker_overhead(
    windows: Sequence[int] = (25, 50, 100, 200),
    grad_size: int = 200_000,
    n_updates: int = 300,
    seed: int = 0,
) -> Dict[int, float]:
    """Measured milliseconds per tracked iteration (‖g‖² + EWMA + Δ) as the
    smoothing window grows; the windowed EWMA recompute is O(w), matching
    the growth the paper reports."""
    rng = np.random.default_rng(seed)
    g = rng.normal(size=grad_size)
    out: Dict[int, float] = {}
    for w in windows:
        tracker = RelativeGradChange(alpha=0.16, window=w)
        # Warm the window so every timed update pays the full O(w) pass.
        for _ in range(w):
            tracker.update(float(g @ g))
        with WallTimer() as t:
            for _ in range(n_updates):
                sq = float(g @ g)
                tracker.update(sq)
        out[w] = t.elapsed_ms / n_updates
    return out


# ---------------------------------------------------------------------------
# Fig. 8b — SelDP vs DefDP partitioning overhead (real wall time)
# ---------------------------------------------------------------------------

def fig8b_partition_overhead(
    dataset_sizes: Optional[Dict[str, int]] = None,
    n_workers: int = 16,
    repeats: int = 3,
) -> Dict[str, Dict[str, float]]:
    """One-time partitioning cost at the paper's true dataset scales.

    Partitioning is pure index arithmetic, so the real sample counts
    (50K CIFAR, 1.28M ImageNet, 2.8M WikiText windows) are measured directly.
    """
    if dataset_sizes is None:
        dataset_sizes = {
            "cifar10": 50_000,
            "cifar100": 50_000,
            "imagenet": 1_281_167,
            "wikitext103": 2_857_142,  # 100M tokens / 35 bptt
        }
    out: Dict[str, Dict[str, float]] = {}
    for name, n in dataset_sizes.items():
        best_def, best_sel = float("inf"), float("inf")
        for r in range(repeats):
            with WallTimer() as t1:
                default_partition(n, n_workers, rng=r)
            with WallTimer() as t2:
                selsync_partition(n, n_workers, rng=r)
            best_def = min(best_def, t1.elapsed)
            best_sel = min(best_sel, t2.elapsed)
        out[name] = {"defdp_s": best_def, "seldp_s": best_sel}
    return out


# ---------------------------------------------------------------------------
# Fig. 9 — SelSync (GA) with SelDP vs DefDP
# ---------------------------------------------------------------------------

def fig9_seldp_vs_defdp(
    workloads: Sequence[str] = ("resnet_cifar10", "vgg_cifar100"),
    delta: float = 0.1,
    n_workers: int = 4,
    n_steps: int = 300,
    data_scale: float = 0.3,
    eval_every: int = 50,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Final metric of SelSync with gradient aggregation under each
    partitioning scheme; SelDP should dominate (Fig. 9).

    ``delta=0.1`` is the paper's δ=0.25 mapped onto this substrate's Δ(g)
    scale (see EXPERIMENTS.md: matched by LSSR, not by raw threshold).
    """
    out: Dict[str, Dict[str, float]] = {}
    for wname in workloads:
        w = get_workload(wname)
        row = {}
        for scheme in ("seldp", "defdp"):
            built = w.build(
                n_workers=n_workers,
                n_steps=n_steps,
                partition_scheme=scheme,
                data_scale=data_scale,
                seed=seed,
                dataset_overrides=BENCH_DATASET_OVERRIDES.get(wname),
            )
            res = run_method(
                MethodSpec("selsync", {"delta": delta, "aggregation": "grads"}),
                built,
                n_steps=n_steps,
                eval_every=eval_every,
            )
            row[scheme] = res.best_metric
        out[wname] = row
    return out


# ---------------------------------------------------------------------------
# Fig. 10 — SelSync: parameter vs gradient aggregation
# ---------------------------------------------------------------------------

def fig10_pa_vs_ga(
    workloads: Sequence[str] = ("resnet_cifar10", "vgg_cifar100"),
    delta: float = 0.1,
    n_workers: int = 4,
    n_steps: int = 300,
    data_scale: float = 0.3,
    eval_every: int = 50,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Final metric of SelSync-PA vs SelSync-GA on SelDP partitions."""
    out: Dict[str, Dict[str, float]] = {}
    for wname in workloads:
        w = get_workload(wname)
        row = {}
        for agg in ("params", "grads"):
            built = w.build(
                n_workers=n_workers,
                n_steps=n_steps,
                data_scale=data_scale,
                seed=seed,
                dataset_overrides=BENCH_DATASET_OVERRIDES.get(wname),
            )
            res = run_method(
                MethodSpec("selsync", {"delta": delta, "aggregation": agg}),
                built,
                n_steps=n_steps,
                eval_every=eval_every,
            )
            row["pa" if agg == "params" else "ga"] = res.best_metric
        out[wname] = row
    return out


# ---------------------------------------------------------------------------
# Fig. 11 — weight-distribution alignment: BSP vs SelSync-PA vs SelSync-GA
# ---------------------------------------------------------------------------

def fig11_weight_distributions(
    workload: str = "resnet_cifar10",
    delta: float = 0.1,
    n_workers: int = 4,
    n_steps: int = 200,
    data_scale: float = 0.3,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Probe-layer weight statistics after training under each method.

    The paper's claim (Fig. 11): PA's weight density stays aligned with
    BSP's while GA's drifts (narrower/shifted). We report the probe layer's
    std plus the Wasserstein-1 distance of each method's weights to BSP's.
    """
    from repro.core import BSPTrainer, SelSyncTrainer

    w = get_workload(workload)
    weights: Dict[str, np.ndarray] = {}
    for label in ("bsp", "pa", "ga"):
        built = w.build(
            n_workers=n_workers, n_steps=n_steps, data_scale=data_scale, seed=seed
        )
        if label == "bsp":
            trainer = BSPTrainer(built.workers, built.cluster, schedule=built.schedule)
        else:
            trainer = SelSyncTrainer(
                built.workers,
                built.cluster,
                schedule=built.schedule,
                delta=delta,
                aggregation="params" if label == "pa" else "grads",
            )
        cfg = TrainConfig(n_steps=n_steps, eval_every=n_steps, eval_fn=None)
        trainer.run(cfg)
        params = built.workers[0].model.parameters()
        probe = int(np.argmax([p.size for p in params]))
        # For GA the replicas have drifted: use the deployable average, the
        # same model the accuracy numbers describe.
        flat_mean = trainer.mean_params()
        built.workers[0].set_params(flat_mean)
        weights[label] = params[probe].data.ravel().copy()

    out: Dict[str, Dict[str, float]] = {}
    for label, vec in weights.items():
        out[label] = {
            "std": float(vec.std()),
            "wasserstein_to_bsp": float(
                stats.wasserstein_distance(vec, weights["bsp"])
            ),
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 12 — non-IID: SelSync + data injection vs FedAvg
# ---------------------------------------------------------------------------

def fig12_noniid_injection(
    workload: str = "resnet_cifar10",
    # The paper's (α, β, δ) triples with δ mapped onto this substrate's Δ(g)
    # scale (0.05→0.02, 0.3→0.1); α/β are the paper's values verbatim.
    configs: Sequence[tuple] = ((0.5, 0.5, 0.02), (0.5, 0.5, 0.1), (0.75, 0.75, 0.1)),
    n_workers: int = 5,
    labels_per_worker: int = 1,
    n_steps: int = 300,
    data_scale: float = 0.3,
    eval_every: int = 50,
    seed: int = 0,
) -> Dict[str, float]:
    """Best accuracy of FedAvg vs SelSync-(α, β, δ) on label-skewed data.

    The paper's ordering: accuracy rises with the injection strength, and
    every SelSync config beats FedAvg.
    """
    w = get_workload(workload)
    out: Dict[str, float] = {}

    built = w.build(
        n_workers=n_workers,
        n_steps=n_steps,
        partition_scheme="noniid",
        labels_per_worker=labels_per_worker,
        data_scale=data_scale,
        seed=seed,
    )
    res = run_method(
        MethodSpec("fedavg", {"c_fraction": 1.0, "e_factor": 0.1}),
        built,
        n_steps=n_steps,
        eval_every=eval_every,
    )
    out["fedavg"] = res.best_metric

    for alpha, beta, delta in configs:
        b_prime = injected_batch_size(w.batch_size, alpha, beta, n_workers)
        built = w.build(
            n_workers=n_workers,
            n_steps=n_steps,
            partition_scheme="noniid",
            labels_per_worker=labels_per_worker,
            data_scale=data_scale,
            batch_size=b_prime,
            seed=seed,
        )
        injector = DataInjector(
            alpha, beta, n_workers,
            sample_nbytes=built.train.sample_nbytes, rng=seed + 13,
        )
        res = run_method(
            MethodSpec("selsync", {"delta": delta, "injector": injector}),
            built,
            n_steps=n_steps,
            eval_every=eval_every,
        )
        out[f"selsync({alpha},{beta},{delta})"] = res.best_metric
    return out
