"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimizer over a module's parameters.

    Subclasses implement :meth:`_update` for a single parameter given its
    slot state. The learning rate is mutable (``set_lr``) because the
    trainers drive it from an external :class:`~repro.optim.schedules.LRSchedule`,
    and SelSync needs the *same* schedule applied on local and synchronous
    steps alike.
    """

    def __init__(self, module: Module, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.module = module
        self.lr = float(lr)
        self._state: List[Dict[str, np.ndarray]] = [
            {} for _ in module.parameters()
        ]

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def step(self) -> None:
        """Apply one update from the currently accumulated gradients."""
        for p, state in zip(self.module.parameters(), self._state):
            if p.requires_grad:
                self._update(p, state)

    def _update(self, p: Parameter, state: Dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def reset_state(self) -> None:
        """Drop momentum/Adam slots (used when a worker re-syncs parameters)."""
        self._state = [{} for _ in self.module.parameters()]

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict:
        """Checkpointable snapshot: learning rate plus per-parameter slot
        arrays (momentum/Adam moments). Subclasses with extra state
        (e.g. SGD's whole-model flat velocity) extend this."""
        return {
            "lr": self.lr,
            "state": [
                {k: np.array(v, copy=True) for k, v in slot.items()}
                for slot in self._state
            ],
        }

    def load_state_dict(self, state: Dict) -> None:
        slots = state["state"]
        if len(slots) != len(self._state):
            raise ValueError(
                f"optimizer state mismatch: checkpoint has {len(slots)} "
                f"parameter slots, module has {len(self._state)}"
            )
        self.lr = float(state["lr"])
        self._state = [
            {k: np.array(v, copy=True) for k, v in slot.items()} for slot in slots
        ]
