"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """SGD implementing Eqn. (1)'s update with the standard extensions.

    ``velocity = momentum * velocity + grad + weight_decay * param`` and the
    parameter moves against ``velocity`` (or the Nesterov look-ahead form).
    This matches the hyperparameters the paper reports for ResNet101/VGG11
    (momentum 0.9 with weight decay) and the Transformer (plain SGD).
    """

    def __init__(
        self,
        module: Module,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(module, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def _update(self, p: Parameter, state: Dict[str, np.ndarray]) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            if "velocity" not in state:
                state["velocity"] = np.zeros_like(p.data)
            v = state["velocity"]
            v *= self.momentum
            v += g
            g = g + self.momentum * v if self.nesterov else v
        p.data -= self.lr * g
