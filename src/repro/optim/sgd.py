"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """SGD implementing Eqn. (1)'s update with the standard extensions.

    ``velocity = momentum * velocity + grad + weight_decay * param`` and the
    parameter moves against ``velocity`` (or the Nesterov look-ahead form).
    This matches the hyperparameters the paper reports for ResNet101/VGG11
    (momentum 0.9 with weight decay) and the Transformer (plain SGD).
    """

    def __init__(
        self,
        module: Module,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(module, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        # Whole-model velocity used by the flat (arena) update path.
        self._flat_velocity: Optional[np.ndarray] = None

    def step(self) -> None:
        """One update, vectorized over the whole parameter arena when the
        module is arena-backed: a handful of ufunc calls on the contiguous
        param/grad buffers instead of a Python loop over parameters. The
        arithmetic is elementwise-identical to the per-parameter path."""
        arena = self.module._ensure_arena()
        if (
            arena is None
            or any(s for s in self._state)  # per-parameter slots in use
            or not all(p.requires_grad for p in arena.params)
        ):
            self._spill_flat_state()
            super().step()
            return
        p = arena.param_buf
        g = arena.grad_buf
        if self.weight_decay:
            g = g + self.weight_decay * p
        if self.momentum:
            v = self._flat_velocity
            if v is None:
                v = self._flat_velocity = np.zeros_like(p)
            v *= self.momentum
            v += g
            g = g + self.momentum * v if self.nesterov else v
        p -= self.lr * g

    def _spill_flat_state(self) -> None:
        """Move flat velocity into per-parameter slots so momentum survives
        a switch to the per-parameter path (e.g. fastpath turned off)."""
        v = self._flat_velocity
        if v is None:
            return
        self._flat_velocity = None
        offset = 0
        for p, state in zip(self.module.parameters(), self._state):
            n = p.data.size
            state["velocity"] = v[offset : offset + n].reshape(p.data.shape).copy()
            offset += n

    def reset_state(self) -> None:
        self._flat_velocity = None
        super().reset_state()

    def state_dict(self) -> Dict:
        state = super().state_dict()
        if self._flat_velocity is not None:
            state["flat_velocity"] = self._flat_velocity.copy()
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        v = state.get("flat_velocity")
        self._flat_velocity = None if v is None else np.array(v, copy=True)

    def _update(self, p: Parameter, state: Dict[str, np.ndarray]) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            if "velocity" not in state:
                state["velocity"] = np.zeros_like(p.data)
            v = state["velocity"]
            v *= self.momentum
            v += g
            g = g + self.momentum * v if self.nesterov else v
        p.data -= self.lr * g
