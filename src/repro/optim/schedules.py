"""Learning-rate schedules.

Schedules are pure functions of the global step, decoupled from optimizers,
so every trainer (BSP, FedAvg, SSP, SelSync) applies exactly the same decay
trajectory — the paper's Fig. 5 leans on LR-decay boundaries producing
visible spikes in Δ(g_i), which requires the schedule to be shared.
"""

from __future__ import annotations

from typing import Sequence


class LRSchedule:
    """Base class: ``lr(step)`` maps a global step index to a learning rate."""

    def lr(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.lr(step)


class ConstantLR(LRSchedule):
    """Fixed learning rate (the paper's AlexNet/Adam configuration)."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = base_lr

    def lr(self, step: int) -> float:
        return self.base_lr


class MultiStepDecay(LRSchedule):
    """Multiply by ``gamma`` at each milestone step.

    The paper decays ResNet101's LR 10× after epochs 110/150 and VGG11's
    after 50/75; the workload layer converts those epochs to steps.
    """

    def __init__(self, base_lr: float, milestones: Sequence[int], gamma: float = 0.1):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if sorted(milestones) != list(milestones):
            raise ValueError(f"milestones must be ascending, got {milestones}")
        self.base_lr = base_lr
        self.milestones = list(milestones)
        self.gamma = gamma

    def lr(self, step: int) -> float:
        k = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma**k


class IntervalDecay(LRSchedule):
    """Multiply by ``gamma`` every ``interval`` steps.

    The paper's Transformer decays LR by 0.8 every 2000 iterations.
    """

    def __init__(self, base_lr: float, interval: int, gamma: float = 0.8):
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.base_lr = base_lr
        self.interval = interval
        self.gamma = gamma

    def lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.interval)
