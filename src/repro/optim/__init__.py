"""Optimizers and learning-rate schedules."""

from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedules import (
    ConstantLR,
    MultiStepDecay,
    IntervalDecay,
    LRSchedule,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "ConstantLR",
    "MultiStepDecay",
    "IntervalDecay",
    "LRSchedule",
]
