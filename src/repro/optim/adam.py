"""Adam optimizer (Kingma & Ba, 2014) — used for the AlexNet workload."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Adam with bias correction.

    The per-parameter step counter lives in the slot state so that resetting
    slots after a parameter synchronization also restarts bias correction —
    stale second moments from a divergent replica would otherwise poison the
    first post-sync steps.
    """

    def __init__(
        self,
        module: Module,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(module, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, p: Parameter, state: Dict[str, np.ndarray]) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if "m" not in state:
            state["m"] = np.zeros_like(p.data)
            state["v"] = np.zeros_like(p.data)
            state["t"] = np.zeros(1)
        m, v = state["m"], state["v"]
        state["t"] += 1
        t = float(state["t"][0])
        m *= self.b1
        m += (1 - self.b1) * g
        v *= self.b2
        v += (1 - self.b2) * g * g
        mhat = m / (1 - self.b1**t)
        vhat = v / (1 - self.b2**t)
        p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)
