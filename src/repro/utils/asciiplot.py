"""Terminal plotting: sparklines, line plots and histograms in plain text.

The benchmark harness regenerates the paper's *figures*; these helpers let
the result files show the curve shapes themselves (not just summary tables)
without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline; NaNs render as spaces.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        idx = min(len(_SPARK_LEVELS) - 1, int(frac * len(_SPARK_LEVELS)))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def line_plot(
    ys: Sequence[float],
    width: int = 72,
    height: int = 12,
    label: Optional[str] = None,
) -> str:
    """Multi-row ASCII line plot of one series, resampled to ``width``.

    Rows run top (max) to bottom (min); the y-range is annotated.
    """
    if width < 2 or height < 2:
        raise ValueError(f"plot must be at least 2x2, got {width}x{height}")
    arr = np.asarray(list(ys), dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return "(no finite data)"
    # Resample to the target width by bucket means.
    edges = np.linspace(0, arr.size, width + 1).astype(int)
    cols = np.array([
        arr[a:b].mean() if b > a else np.nan for a, b in zip(edges[:-1], edges[1:])
    ])
    finite = cols[np.isfinite(cols)]
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(cols):
        if not np.isfinite(v):
            continue
        row = height - 1 - int((v - lo) / span * (height - 1))
        grid[row][x] = "*"
    lines: List[str] = []
    if label:
        lines.append(label)
    for i, row in enumerate(grid):
        edge = f"{hi:.3g}" if i == 0 else (f"{lo:.3g}" if i == height - 1 else "")
        lines.append(f"{edge:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 20,
    width: int = 50,
    label: Optional[str] = None,
) -> str:
    """Horizontal-bar histogram."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return "(no finite data)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines: List[str] = []
    if label:
        lines.append(label)
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"{lo:>10.3g} .. {hi:<10.3g} |{bar} {c}")
    return "\n".join(lines)
