"""Global switch between the zero-copy hot path and the seed (copying) path.

The arena-backed flat views (:mod:`repro.nn.arena`), the in-place parameter
server aggregation and the in-place allreduce all consult this flag. It
exists for exactly one reason: ``benchmarks/bench_hotpath.py`` measures the
*seed* hot path (flatten-by-concatenate, ``np.stack`` aggregation) against
the arena path on the same machine in the same process, so the speedup
numbers in ``BENCH_hotpath.json`` are apples-to-apples.

Production code never turns this off; both paths are numerically equivalent
(the in-place mean accumulates sequentially while ``np.mean`` uses pairwise
summation, so results may differ in the last ulp — never more).
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def is_enabled() -> bool:
    """True when the zero-copy fast paths are active (the default)."""
    return _ENABLED


def set_enabled(enabled: bool) -> None:
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def fastpath(enabled: bool):
    """Temporarily force the fast path on or off (benchmark/test helper)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = prev
