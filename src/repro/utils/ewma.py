"""Exponentially weighted moving average (EWMA) smoothing.

SelSync smooths the per-iteration squared gradient norm with an EWMA before
computing the relative gradient change Δ(g_i) (paper §III-A, citing Hunter
1986), because single-minibatch gradients are noisy. The paper uses a
window-size ``w`` (25 iterations by default) and a smoothing factor derived
from the cluster size (``N/100``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

import numpy as np


class Ewma:
    """Streaming EWMA over a sliding window.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``. Larger values weigh recent samples
        more. The paper sets ``alpha = N / 100`` for an ``N``-worker cluster
        (0.16 at N=16).
    window:
        Number of most-recent samples retained. The EWMA is recomputed over
        this window, matching the paper's windowed formulation whose cost
        grows with ``w`` (Fig. 8a).
    """

    def __init__(self, alpha: float = 0.16, window: int = 25):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.alpha = float(alpha)
        self.window = int(window)
        self._buf: deque = deque(maxlen=window)
        self._value: Optional[float] = None

    def update(self, x: float) -> float:
        """Ingest one sample and return the smoothed value.

        The smoothed value is the *normalized* windowed EWMA

            v_i = Σ_{j<w} (1-α)^j · x_{i-j}  /  Σ_{j<w} (1-α)^j

        — a proper weighted average of the window. (Seeding a recursive
        EWMA from the window's oldest sample instead would make the result
        track that raw sample for small α, destroying the smoothing that
        Δ(g_i) depends on.) The O(w) pass per update reproduces the
        window-size-dependent overhead the paper measures in Fig. 8a.
        """
        if not np.isfinite(x):
            raise ValueError(f"EWMA received non-finite sample: {x}")
        self._buf.append(float(x))
        n = len(self._buf)
        # weights[j] applies to the sample j steps in the past.
        decay = 1.0 - self.alpha
        num = 0.0
        den = 0.0
        weight = 1.0
        for sample in reversed(self._buf):
            num += weight * sample
            den += weight
            weight *= decay
            if weight == 0.0:  # alpha == 1.0: only the newest sample counts
                break
        self._value = num / den
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current smoothed value, or ``None`` before any update."""
        return self._value

    @property
    def n_samples(self) -> int:
        return len(self._buf)

    def reset(self) -> None:
        self._buf.clear()
        self._value = None

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict:
        """Checkpointable snapshot: hyperparameters (for validation on
        load) plus the window buffer and current smoothed value."""
        return {
            "alpha": self.alpha,
            "window": self.window,
            "buf": list(self._buf),
            "value": self._value,
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a snapshot from :meth:`state_dict`.

        The stored hyperparameters must match this instance's — restoring
        a w=25 buffer into a w=5 tracker would silently change Δ(g).
        """
        if float(state["alpha"]) != self.alpha or int(state["window"]) != self.window:
            raise ValueError(
                f"EWMA state mismatch: checkpoint has alpha={state['alpha']}, "
                f"window={state['window']}; this instance has "
                f"alpha={self.alpha}, window={self.window}"
            )
        self._buf = deque((float(x) for x in state["buf"]), maxlen=self.window)
        self._value = None if state["value"] is None else float(state["value"])


def ewma_series(
    xs: Iterable[float], alpha: float = 0.16, window: int = 25
) -> List[float]:
    """Smooth a full series, returning one smoothed value per input sample."""
    sm = Ewma(alpha=alpha, window=window)
    return [sm.update(x) for x in xs]
