"""Flatten/unflatten lists of numpy arrays into a single vector.

The communication layer and the Hessian tooling operate on flat parameter /
gradient vectors; models expose parameters as lists of arrays. These helpers
convert between the two without copying more than once.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate arrays into one contiguous 1-D float64 vector."""
    if len(arrays) == 0:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])


def unflatten_like(
    vec: np.ndarray, templates: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Split a flat vector back into arrays shaped like ``templates``.

    Raises ``ValueError`` when sizes do not line up — a mismatch here almost
    always means two workers disagree about the model architecture.
    """
    vec = np.asarray(vec).ravel()
    total = sum(int(t.size) for t in templates)
    if vec.size != total:
        raise ValueError(
            f"flat vector has {vec.size} elements but templates require {total}"
        )
    out: List[np.ndarray] = []
    offset = 0
    for t in templates:
        n = int(t.size)
        out.append(vec[offset : offset + n].reshape(t.shape).astype(t.dtype, copy=False))
        offset += n
    return out


def mean_into(
    vectors: Sequence[np.ndarray], out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Mean of equally-shaped vectors without materializing ``np.stack``.

    Accumulates sequentially into ``out`` (allocated when ``None``), so the
    peak footprint is one vector instead of N+1. ``out`` must not alias any
    input after the first — the aggregation paths pass either a preallocated
    server buffer or a fresh array, never a worker view.

    Bitwise-identical to ``np.mean(np.stack(vectors), axis=0)``: an axis-0
    reduce also accumulates row-by-row sequentially, and the final true
    division matches ``np.mean``'s (a reciprocal-multiply would not).
    """
    if len(vectors) == 0:
        raise ValueError("nothing to average")
    first = np.asarray(vectors[0])
    if out is None:
        out = np.empty_like(first, dtype=np.float64)
    np.copyto(out, first)
    for v in vectors[1:]:
        np.add(out, v, out=out)
    if len(vectors) > 1:
        np.divide(out, len(vectors), out=out)
    return out


def tree_map(
    fn: Callable[[np.ndarray], np.ndarray], arrays: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Apply ``fn`` to every array in a list (a minimal pytree map)."""
    return [fn(a) for a in arrays]
