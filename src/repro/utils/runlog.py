"""Structured per-iteration run logging.

Every trainer emits one :class:`IterationRecord` per training step into a
:class:`RunLog`. The experiment harness consumes these logs to regenerate the
paper's tables and figures (simulated time, LSSR, accuracy trajectories,
gradient-change traces) without the trainers knowing anything about plotting
or reporting.

When tracing is enabled (:mod:`repro.obs`), the event trace is the ground
truth and the run log is a *derived view* over it:
:func:`repro.obs.views.runlog_from_trace` rebuilds an equivalent ``RunLog``
from the ``step_end``/``eval``/``fault`` events alone, which the test suite
asserts record-for-record against the trainer-maintained one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class IterationRecord:
    """One training iteration as seen by the simulated cluster.

    Attributes
    ----------
    step:
        Global iteration index (0-based).
    synced:
        Whether this step performed a cluster-wide synchronization.
    sim_time:
        Simulated wall-clock duration of this step (seconds).
    comm_time:
        Portion of ``sim_time`` spent in communication.
    loss:
        Mean training loss across workers for this step.
    grad_change:
        Max over workers of the relative gradient change Δ(g_i); ``None``
        for trainers that do not track it (BSP/FedAvg/SSP).
    extra:
        Trainer-specific scalars (e.g. staleness for SSP).
    """

    step: int
    synced: bool
    sim_time: float
    comm_time: float = 0.0
    loss: float = float("nan")
    grad_change: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class EvalRecord:
    """A periodic evaluation snapshot (test accuracy or perplexity)."""

    step: int
    epoch: float
    sim_time: float
    metric: float
    metric_name: str = "accuracy"


#: Known fault-record kinds (see :mod:`repro.cluster.faults` for the
#: injected ones; ``quarantine``/``reinstate`` come from the health
#: tracker and ``recovery`` from the rollback supervisor).
FAULT_KINDS = (
    "crash",
    "rejoin",
    "straggle",
    "drop",
    "corrupt",
    "quorum_lost",
    "quarantine",
    "reinstate",
    "recovery",
    # Link-level network faults (repro.cluster.faults net-fault grammar).
    "partition",
    "link_drop",
)


@dataclass
class FaultRecord:
    """One injected (or observed) fault event.

    Attributes
    ----------
    step:
        Step index at which the event fired.
    worker:
        Affected worker id, or -1 for cluster-wide events (quorum loss).
    kind:
        One of :data:`FAULT_KINDS`.
    detail:
        Event-specific scalars, e.g. ``{"factor": 4.0}`` for a straggle
        window, ``{"retries": 2, "lost": 0}`` for a dropped upload, or
        ``{"until": 120}`` for a crash with a known rejoin step.
    """

    step: int
    worker: int
    kind: str
    detail: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


class RunLog:
    """Accumulates iteration and evaluation records for one training run.

    ``meta`` holds the reproducibility manifest (method, workload, seeds,
    library version) attached by the experiment runner; it round-trips
    through :func:`repro.utils.serialization.save_runlog`.
    """

    def __init__(self, name: str = "run", meta: Optional[Dict] = None):
        self.name = name
        self.meta: Dict = dict(meta) if meta else {}
        self.iterations: List[IterationRecord] = []
        self.evals: List[EvalRecord] = []
        self.faults: List[FaultRecord] = []

    # -- recording -------------------------------------------------------
    def record_iteration(self, rec: IterationRecord) -> None:
        self.iterations.append(rec)

    def record_eval(self, rec: EvalRecord) -> None:
        self.evals.append(rec)

    def record_fault(self, rec: FaultRecord) -> None:
        self.faults.append(rec)

    # -- aggregate views -------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.iterations)

    @property
    def total_sim_time(self) -> float:
        """Total simulated wall-clock across all recorded steps."""
        return float(sum(r.sim_time for r in self.iterations))

    @property
    def total_comm_time(self) -> float:
        return float(sum(r.comm_time for r in self.iterations))

    @property
    def n_synced(self) -> int:
        return sum(1 for r in self.iterations if r.synced)

    @property
    def n_local(self) -> int:
        return self.n_steps - self.n_synced

    @property
    def sync_ratio(self) -> float:
        """Fraction of recorded steps that synchronized (0.0 on an empty
        log). The complement of :meth:`lssr`, convenient for dashboards."""
        if self.n_steps == 0:
            return 0.0
        return self.n_synced / self.n_steps

    def lssr(self) -> float:
        """Local-to-synchronous step ratio, Eqn. (4) of the paper.

        ``LSSR = steps_local / (steps_local + steps_bsp)``. 0.0 for pure BSP,
        1.0 for pure local-SGD. Raises if no steps were recorded.
        """
        if self.n_steps == 0:
            raise ValueError("LSSR undefined on an empty run log")
        return self.n_local / self.n_steps

    def communication_reduction(self) -> float:
        """Communication reduction w.r.t. BSP: ``1 / (1 - LSSR)``."""
        lssr = self.lssr()
        if lssr >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - lssr)

    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.iterations], dtype=np.float64)

    def grad_changes(self) -> np.ndarray:
        """Per-step Δ(g); NaN where not tracked."""
        return np.array(
            [
                np.nan if r.grad_change is None else r.grad_change
                for r in self.iterations
            ],
            dtype=np.float64,
        )

    def sim_times(self) -> np.ndarray:
        return np.array([r.sim_time for r in self.iterations], dtype=np.float64)

    def eval_curve(self):
        """Return ``(steps, metrics)`` arrays of the evaluation snapshots."""
        steps = np.array([e.step for e in self.evals], dtype=np.int64)
        metrics = np.array([e.metric for e in self.evals], dtype=np.float64)
        return steps, metrics

    def best_metric(self, higher_is_better: bool = True) -> float:
        """Best evaluation metric observed over the run."""
        if not self.evals:
            raise ValueError("no evaluation records in run log")
        vals = [e.metric for e in self.evals]
        return max(vals) if higher_is_better else min(vals)

    def final_metric(self) -> float:
        if not self.evals:
            raise ValueError("no evaluation records in run log")
        return self.evals[-1].metric

    # -- fault views ------------------------------------------------------
    @property
    def n_faults(self) -> int:
        return len(self.faults)

    def faults_of_kind(self, kind: str) -> List[FaultRecord]:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        return [f for f in self.faults if f.kind == kind]

    def fault_windows(self) -> List[Dict]:
        """Per-worker outage windows ``[{"worker", "start", "end"}]`` for
        figure overlays; ``end`` is ``None`` for workers still down at the
        end of the log (crash without a recorded rejoin)."""
        open_since: Dict[int, int] = {}
        windows: List[Dict] = []
        for f in self.faults:
            if f.kind == "crash" and f.worker not in open_since:
                open_since[f.worker] = f.step
            elif f.kind == "rejoin" and f.worker in open_since:
                windows.append(
                    {"worker": f.worker, "start": open_since.pop(f.worker), "end": f.step}
                )
        for worker, start in sorted(open_since.items()):
            windows.append({"worker": worker, "start": start, "end": None})
        windows.sort(key=lambda w: (w["start"], w["worker"]))
        return windows

    def summary(self) -> Dict[str, float]:
        """Dictionary of headline statistics for reporting."""
        out = {
            "steps": float(self.n_steps),
            "synced_steps": float(self.n_synced),
            "sim_time": self.total_sim_time,
            "comm_time": self.total_comm_time,
        }
        if self.n_steps:
            out["lssr"] = self.lssr()
        if self.evals:
            out["final_metric"] = self.final_metric()
        if self.faults:
            out["n_faults"] = float(self.n_faults)
        return out
