"""Deterministic random-number management.

Everything stochastic in the library (weight init, batch sampling, straggler
noise, worker selection for data injection) flows through
:class:`numpy.random.Generator` objects derived from a single seed, so
experiments are exactly reproducible and simulated workers get independent
streams.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, None, np.random.Generator]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses :meth:`numpy.random.SeedSequence.spawn` so the streams do not
    overlap — the recommended pattern for parallel workers.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        children = seq.spawn(n)
    else:
        children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


class RngPool:
    """A named pool of independent RNG streams derived from one master seed.

    Simulated components ask the pool for a stream by name (for example
    ``pool.get("worker-3")``); the same name always yields the same stream
    for a given master seed, so adding a new consumer never perturbs the
    randomness seen by existing ones.
    """

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._streams: dict = {}

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            # Hash the name into the entropy so streams are independent and
            # stable across runs regardless of request order.
            entropy = [0 if self._seed is None else self._seed]
            entropy.extend(name.encode("utf-8"))
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy)
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngPool":
        """Return a child pool whose streams are independent of this pool's."""
        entropy = 0 if self._seed is None else self._seed
        child_seed = int(
            np.random.SeedSequence(
                [entropy, *name.encode("utf-8"), 0x5E15]
            ).generate_state(1)[0]
        )
        return RngPool(child_seed)
