"""Wall-clock timing helper for the overhead micro-benchmarks (Fig. 8)."""

from __future__ import annotations

import time
from typing import Optional


class WallTimer:
    """Context-manager stopwatch measuring elapsed seconds.

    >>> with WallTimer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3
