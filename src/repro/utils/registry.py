"""A tiny name → factory registry.

Used to register model architectures, datasets and trainers so experiment
configs can reference them by string (e.g. ``"smallresnet"``) the way the
benchmark harness and CLI examples do.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Case-insensitive registry mapping names to factories."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Callable[..., T]] = {}

    def register(self, name: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Decorator: ``@registry.register("name")``."""
        key = name.lower()

        def deco(fn: Callable[..., T]) -> Callable[..., T]:
            if key in self._entries:
                raise KeyError(f"{self.kind} {name!r} already registered")
            self._entries[key] = fn
            return fn

        return deco

    def get(self, name: str) -> Callable[..., T]:
        key = name.lower()
        if key not in self._entries:
            known = ", ".join(sorted(self._entries))
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")
        return self._entries[key]

    def create(self, name: str, *args, **kwargs) -> T:
        return self.get(name)(*args, **kwargs)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def names(self):
        return sorted(self._entries)
