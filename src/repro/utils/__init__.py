"""Shared utilities: seeded RNG, EWMA smoothing, flattening, registries."""

from repro.utils.rng import RngPool, spawn_rngs, as_rng
from repro.utils.ewma import Ewma, ewma_series
from repro.utils.flatten import flatten_arrays, unflatten_like, tree_map
from repro.utils.registry import Registry
from repro.utils.runlog import RunLog, IterationRecord
from repro.utils.timer import WallTimer
from repro.utils.serialization import (
    load_model,
    load_runlog,
    save_model,
    save_runlog,
)
from repro.utils.asciiplot import histogram, line_plot, sparkline

__all__ = [
    "RngPool",
    "spawn_rngs",
    "as_rng",
    "Ewma",
    "ewma_series",
    "flatten_arrays",
    "unflatten_like",
    "tree_map",
    "Registry",
    "RunLog",
    "IterationRecord",
    "WallTimer",
    "save_runlog",
    "load_runlog",
    "save_model",
    "load_model",
    "sparkline",
    "line_plot",
    "histogram",
]
