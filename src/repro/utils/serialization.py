"""Run-artifact serialization.

Training runs are expensive; these helpers persist a
:class:`~repro.utils.runlog.RunLog` (JSONL: one iteration, eval or fault
record per line), model state dicts (``.npz``), and full training
checkpoints (global params, per-worker optimizer/loader/RNG state, tracker
state, step counter) so experiments can be killed, resumed, re-plotted or
diffed without re-running.

Non-finite floats
-----------------
Strict JSON has no ``nan``/``inf``. Diverged runs produce them routinely —
losses, metrics, Δ(g) traces, tracker state — and a checkpoint that cannot
hold them is useless exactly when you need it. :func:`encode_jsonable` /
:func:`decode_jsonable` walk arbitrarily *nested* structures (dicts, lists,
tuples) and replace non-finite floats with the tagged dict
``{"__nonfinite__": "nan" | "inf" | "-inf"}``, which survives strict JSON
and cannot collide with a legitimate string value.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.nn.module import Module
from repro.utils.runlog import EvalRecord, FaultRecord, IterationRecord, RunLog

PathLike = Union[str, Path]

#: Current checkpoint layout version (bump on incompatible change).
CHECKPOINT_VERSION = 1

_NONFINITE_TAG = "__nonfinite__"
_NDARRAY_TAG = "__ndarray__"


# -- non-finite-safe JSON trees ----------------------------------------------


def encode_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into a strict-JSON-safe tree.

    Handles nested dicts/lists/tuples, numpy scalars, and non-finite floats
    at any depth (the top-level-only encoding this replaces silently wrote
    invalid JSON for diverged eval records and metrics dicts).
    """
    if obj is None or isinstance(obj, (bool, str, int)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        f = float(obj)
        if np.isnan(f):
            return {_NONFINITE_TAG: "nan"}
        if np.isinf(f):
            return {_NONFINITE_TAG: "inf" if f > 0 else "-inf"}
        return f
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                k = str(k)
            out[k] = encode_jsonable(v)
        return out
    if isinstance(obj, (list, tuple)):
        return [encode_jsonable(v) for v in obj]
    raise TypeError(f"cannot JSON-encode object of type {type(obj).__name__}")


def decode_jsonable(obj: Any) -> Any:
    """Inverse of :func:`encode_jsonable` (tuples come back as lists)."""
    if isinstance(obj, dict):
        if set(obj) == {_NONFINITE_TAG}:
            return float(obj[_NONFINITE_TAG])
        return {k: decode_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_jsonable(v) for v in obj]
    return obj


# -- run logs ----------------------------------------------------------------


def _iter_to_jsonable(r: IterationRecord) -> Dict:
    return {
        "kind": "iter",
        "step": r.step,
        "synced": r.synced,
        "sim_time": r.sim_time,
        "comm_time": r.comm_time,
        "loss": None if np.isnan(r.loss) else encode_jsonable(r.loss),
        "grad_change": _encode_float(r.grad_change),
        "extra": encode_jsonable(r.extra),
    }


def _iter_from_jsonable(rec: Dict) -> IterationRecord:
    return IterationRecord(
        step=rec["step"],
        synced=rec["synced"],
        sim_time=rec["sim_time"],
        comm_time=rec["comm_time"],
        loss=float("nan") if rec["loss"] is None else decode_jsonable(rec["loss"]),
        grad_change=_decode_float(rec["grad_change"]),
        extra=decode_jsonable(rec.get("extra", {})),
    )


def _eval_to_jsonable(e: EvalRecord) -> Dict:
    return {
        "kind": "eval",
        "step": e.step,
        "epoch": e.epoch,
        "sim_time": e.sim_time,
        "metric": encode_jsonable(e.metric),
        "metric_name": e.metric_name,
    }


def _eval_from_jsonable(rec: Dict) -> EvalRecord:
    return EvalRecord(
        step=rec["step"],
        epoch=rec["epoch"],
        sim_time=rec["sim_time"],
        metric=decode_jsonable(rec["metric"]),
        metric_name=rec.get("metric_name", "accuracy"),
    )


def _fault_to_jsonable(f: FaultRecord) -> Dict:
    return {
        "kind": "fault",
        "step": f.step,
        "worker": f.worker,
        "fault_kind": f.kind,
        "detail": encode_jsonable(f.detail),
    }


def _fault_from_jsonable(rec: Dict) -> FaultRecord:
    return FaultRecord(
        step=rec["step"],
        worker=rec["worker"],
        kind=rec["fault_kind"],
        detail=decode_jsonable(rec.get("detail", {})),
    )


def runlog_to_jsonable(log: RunLog) -> List[Dict]:
    """Whole run log as a list of strict-JSON-safe record dicts (header
    first) — the shared representation of the JSONL file and checkpoints."""
    records = [
        {"kind": "header", "name": log.name, "meta": encode_jsonable(log.meta)}
    ]
    records += [_iter_to_jsonable(r) for r in log.iterations]
    records += [_fault_to_jsonable(f) for f in log.faults]
    records += [_eval_to_jsonable(e) for e in log.evals]
    return records


def runlog_from_jsonable(records: List[Dict]) -> RunLog:
    log = RunLog()
    for rec in records:
        kind = rec.get("kind")
        if kind == "header":
            log.name = rec["name"]
            log.meta = decode_jsonable(rec.get("meta", {}))
        elif kind == "iter":
            log.record_iteration(_iter_from_jsonable(rec))
        elif kind == "eval":
            log.record_eval(_eval_from_jsonable(rec))
        elif kind == "fault":
            log.record_fault(_fault_from_jsonable(rec))
        else:
            raise ValueError(f"unknown record kind {kind!r} in run log")
    return log


def save_runlog(log: RunLog, path: PathLike) -> None:
    """Write a run log as JSONL: a header line, then one record per line.

    Output is strict JSON (``allow_nan=False``): non-finite values are
    tag-encoded, so a diverged run's log is still parseable by any reader.
    """
    path = Path(path)
    with path.open("w") as f:
        for rec in runlog_to_jsonable(log):
            f.write(json.dumps(rec, allow_nan=False) + "\n")


def load_runlog(path: PathLike) -> RunLog:
    """Inverse of :func:`save_runlog`."""
    path = Path(path)
    records = []
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    try:
        return runlog_from_jsonable(records)
    except ValueError as e:
        raise ValueError(f"{e} ({path})") from None


def _encode_float(x):
    """JSON has no inf/nan; encode them as strings (legacy top-level form,
    kept for the ``grad_change`` field's file-format compatibility). For
    nested structures use :func:`encode_jsonable`."""
    if x is None:
        return None
    if np.isnan(x):
        return "nan"
    if np.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(x)


def _decode_float(x):
    if x is None:
        return None
    if isinstance(x, str):
        return float(x)
    return float(x)


# -- models ------------------------------------------------------------------


def save_model(model: Module, path: PathLike) -> None:
    """Persist a model's named parameters as a compressed ``.npz``."""
    state = model.state_dict()
    # npz keys cannot contain '/'; dots are fine.
    np.savez_compressed(Path(path), **state)


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_model` into ``model`` in place.

    The architectures must match exactly — mismatches raise via
    :meth:`Module.load_state_dict`.
    """
    with np.load(Path(path)) as data:
        state: Dict[str, np.ndarray] = {k: data[k] for k in data.files}
    model.load_state_dict(state)
    return model


# -- checkpoints -------------------------------------------------------------
#
# A checkpoint is an arbitrary tree of dicts/lists whose leaves are JSON
# scalars or numpy arrays. Arrays are hoisted into npz entries and replaced
# in the JSON tree by {"__ndarray__": index}; everything else goes through
# the non-finite-safe encoder. One .npz file holds both.


def _hoist_arrays(obj: Any, arrays: List[np.ndarray]) -> Any:
    if isinstance(obj, np.ndarray):
        arrays.append(obj)
        return {_NDARRAY_TAG: len(arrays) - 1}
    if isinstance(obj, dict):
        return {str(k): _hoist_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_hoist_arrays(v, arrays) for v in obj]
    return encode_jsonable(obj)


def _lower_arrays(obj: Any, arrays: Dict[int, np.ndarray]) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {_NDARRAY_TAG}:
            return arrays[int(obj[_NDARRAY_TAG])]
        if set(obj) == {_NONFINITE_TAG}:
            return float(obj[_NONFINITE_TAG])
        return {k: _lower_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_lower_arrays(v, arrays) for v in obj]
    return obj


def save_checkpoint(state: Dict, path: PathLike) -> None:
    """Persist a checkpoint tree (dicts/lists of arrays and scalars).

    Written atomically: the file is complete or absent, never torn — a kill
    mid-checkpoint must not destroy the previous good checkpoint.
    """
    path = Path(path)
    arrays: List[np.ndarray] = []
    tree = _hoist_arrays(state, arrays)
    payload = {f"arr_{i}": a for i, a in enumerate(arrays)}
    payload["__tree__"] = np.frombuffer(
        json.dumps(tree, allow_nan=False).encode("utf-8"), dtype=np.uint8
    )
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as f:
        np.savez_compressed(f, **payload)
    tmp.replace(path)


def load_checkpoint(path: PathLike) -> Dict:
    """Inverse of :func:`save_checkpoint`."""
    path = Path(path)
    with np.load(path) as data:
        tree = json.loads(bytes(data["__tree__"]).decode("utf-8"))
        arrays = {
            int(k[4:]): data[k] for k in data.files if k.startswith("arr_")
        }
        # Materialize now: the npz file handle closes on exit.
        arrays = {i: np.array(a, copy=True) for i, a in arrays.items()}
    return _lower_arrays(tree, arrays)
