"""Run-artifact serialization.

Training runs are expensive; these helpers persist a
:class:`~repro.utils.runlog.RunLog` (JSONL: one iteration or eval record per
line) and model state dicts (``.npz``) so experiments can be resumed,
re-plotted or diffed without re-running.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.module import Module
from repro.utils.runlog import EvalRecord, IterationRecord, RunLog

PathLike = Union[str, Path]


def save_runlog(log: RunLog, path: PathLike) -> None:
    """Write a run log as JSONL: a header line, then one record per line."""
    path = Path(path)
    with path.open("w") as f:
        f.write(
            json.dumps({"kind": "header", "name": log.name, "meta": log.meta})
            + "\n"
        )
        for r in log.iterations:
            f.write(
                json.dumps(
                    {
                        "kind": "iter",
                        "step": r.step,
                        "synced": r.synced,
                        "sim_time": r.sim_time,
                        "comm_time": r.comm_time,
                        "loss": None if np.isnan(r.loss) else r.loss,
                        "grad_change": _encode_float(r.grad_change),
                        "extra": r.extra,
                    }
                )
                + "\n"
            )
        for e in log.evals:
            f.write(
                json.dumps(
                    {
                        "kind": "eval",
                        "step": e.step,
                        "epoch": e.epoch,
                        "sim_time": e.sim_time,
                        "metric": e.metric,
                        "metric_name": e.metric_name,
                    }
                )
                + "\n"
            )


def load_runlog(path: PathLike) -> RunLog:
    """Inverse of :func:`save_runlog`."""
    path = Path(path)
    log = RunLog()
    with path.open() as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("kind")
            if kind == "header":
                log.name = rec["name"]
                log.meta = rec.get("meta", {})
            elif kind == "iter":
                log.record_iteration(
                    IterationRecord(
                        step=rec["step"],
                        synced=rec["synced"],
                        sim_time=rec["sim_time"],
                        comm_time=rec["comm_time"],
                        loss=float("nan") if rec["loss"] is None else rec["loss"],
                        grad_change=_decode_float(rec["grad_change"]),
                        extra=rec.get("extra", {}),
                    )
                )
            elif kind == "eval":
                log.record_eval(EvalRecord(**rec))
            else:
                raise ValueError(f"unknown record kind {kind!r} in {path}")
    return log


def _encode_float(x):
    """JSON has no inf/nan; encode them as strings."""
    if x is None:
        return None
    if np.isnan(x):
        return "nan"
    if np.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(x)


def _decode_float(x):
    if x is None:
        return None
    if isinstance(x, str):
        return float(x)
    return float(x)


def save_model(model: Module, path: PathLike) -> None:
    """Persist a model's named parameters as a compressed ``.npz``."""
    state = model.state_dict()
    # npz keys cannot contain '/'; dots are fine.
    np.savez_compressed(Path(path), **state)


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_model` into ``model`` in place.

    The architectures must match exactly — mismatches raise via
    :meth:`Module.load_state_dict`.
    """
    with np.load(Path(path)) as data:
        state: Dict[str, np.ndarray] = {k: data[k] for k in data.files}
    model.load_state_dict(state)
    return model
