"""In-process collectives over numpy buffers, with simulated timing.

:class:`SimGroup` mirrors the mpi4py surface the paper's PS calls map onto
(allreduce / allgather / broadcast / p2p) but executes within one process:
the data movement is real numpy, the elapsed time is the cost model's. Every
operation returns ``(result, simulated_seconds)`` so trainers charge the
clock explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.comm.costmodel import allgather_bits_time, p2p_time
from repro.comm.network import NetworkModel
from repro.comm.topology import Topology, build_topology
from repro.utils import fastpath
from repro.utils.flatten import mean_into


class SimGroup:
    """A communicator over ``n_workers`` simulated ranks.

    Parameters
    ----------
    n_workers:
        Group size (the PS is not a rank; its cost is in the topology).
    net:
        Link parameters used for timing.
    topology:
        Name or instance; decides the full-model sync cost formula.
    """

    def __init__(
        self,
        n_workers: int,
        net: NetworkModel = None,
        topology="ps",
        aggregator=None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.net = net if net is not None else NetworkModel()
        self.topology: Topology = (
            topology if isinstance(topology, Topology) else build_topology(topology)
        )
        #: Optional robust :class:`~repro.core.robust.Aggregator` applied by
        #: :meth:`allreduce_mean` in place of the plain mean; ``None`` keeps
        #: the exact legacy arithmetic (byte-identity contract). Timing and
        #: byte accounting are strategy-independent — a robust round moves
        #: the same payload over the same links.
        self.aggregator = aggregator
        # Byte/op counters so experiments can report communication volume.
        self.bytes_synced: int = 0
        self.n_syncs: int = 0
        self.n_allgathers: int = 0
        # Reusable allreduce output (fast path); sized on first use.
        self._mean_buf: Optional[np.ndarray] = None

    # -- full-model synchronization ---------------------------------------
    def allreduce_mean(
        self,
        vectors: Sequence[np.ndarray],
        nbytes: float = None,
        n_live: Optional[int] = None,
    ) -> Tuple[np.ndarray, float]:
        """Average one flat vector per rank; returns (mean, sim_seconds).

        ``nbytes`` overrides the payload size for timing (the experiment
        harness passes the *paper-scale* model size here so Fig. 1a's
        507 MB VGG11 behaviour reproduces with a small in-memory analog).

        ``n_live`` opts in to a degraded round over a survivor subset: the
        mean is over ``n_live`` vectors and the sync is charged for
        ``n_live`` ranks. Without it a short vector list is an error —
        silently averaging fewer replicas than the group has is exactly
        the wrong-answer mode the fault model exists to make loud.
        """
        expected = self.n_workers if n_live is None else int(n_live)
        if n_live is not None and not 1 <= expected <= self.n_workers:
            raise ValueError(
                f"n_live must be in [1, {self.n_workers}], got {n_live}"
            )
        if len(vectors) != expected:
            raise ValueError(
                f"expected {expected} vectors, got {len(vectors)}"
            )
        first = np.asarray(vectors[0])
        for v in vectors[1:]:
            if np.asarray(v).shape != first.shape:
                raise ValueError("allreduce requires equally-shaped vectors")
        if self.aggregator is not None:
            if self._mean_buf is None or self._mean_buf.shape != first.shape:
                self._mean_buf = np.empty(first.shape, dtype=np.float64)
            self.aggregator.reduce(vectors, out=self._mean_buf, where="allreduce")
            mean = self._mean_buf.view()
            mean.flags.writeable = False
        elif fastpath.is_enabled():
            # Average into a reusable buffer (bitwise-identical to the stack
            # reduce below) and hand out a read-only view — callers consume
            # the mean before the next collective.
            if self._mean_buf is None or self._mean_buf.shape != first.shape:
                self._mean_buf = np.empty(first.shape, dtype=np.float64)
            mean = mean_into(vectors, out=self._mean_buf).view()
            mean.flags.writeable = False
        else:
            mean = np.mean(np.stack([np.asarray(v) for v in vectors]), axis=0)
        payload = float(first.nbytes if nbytes is None else nbytes)
        t = self.topology.sync_time(payload, expected, self.net)
        counted = int(payload) * expected
        self.bytes_synced += counted
        self.n_syncs += 1
        self._trace("allreduce", payload, counted, expected, t)
        return mean, t

    def charge_sync(self, nbytes: float, n_live: Optional[int] = None) -> float:
        """Account one full-model sync round and return its simulated time.

        For callers that perform the aggregation arithmetic elsewhere (e.g.
        through the :class:`~repro.cluster.server.ParameterServer`) and only
        need the clock charged once. ``n_live`` charges a degraded round
        over a survivor subset instead of the full group.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        ranks = self.n_workers if n_live is None else int(n_live)
        if not 1 <= ranks <= self.n_workers:
            raise ValueError(f"n_live must be in [1, {self.n_workers}], got {n_live}")
        t = self.topology.sync_time(float(nbytes), ranks, self.net)
        counted = int(nbytes) * ranks
        self.bytes_synced += counted
        self.n_syncs += 1
        self._trace("sync", float(nbytes), counted, ranks, t)
        return t

    # -- SelSync's flag exchange ------------------------------------------
    def allgather_flags(self, flags: Sequence[int]) -> Tuple[np.ndarray, float]:
        """Alg. 1 line 12: share each worker's 1-bit sync status with all."""
        if len(flags) != self.n_workers:
            raise ValueError(f"expected {self.n_workers} flags, got {len(flags)}")
        arr = np.asarray(flags, dtype=np.uint8)
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError(f"flags must be 0/1 bits, got {list(flags)}")
        self.n_allgathers += 1
        t = allgather_bits_time(self.n_workers, self.net)
        # Flag exchanges are latency traffic; they do not count toward the
        # full-model ``bytes_synced`` ledger, so ``bytes`` is 0 here.
        self._trace("allgather_flags", float(self.n_workers), 0, self.n_workers, t)
        return arr, t

    # -- broadcast / p2p -----------------------------------------------------
    def broadcast(self, vector: np.ndarray, nbytes: float = None) -> Tuple[List[np.ndarray], float]:
        """Root sends one vector to all ranks (initial model pull, Alg. 1 line 3)."""
        payload = float(vector.nbytes if nbytes is None else nbytes)
        # All pulls proceed in parallel, PS egress shared — same as one PS phase.
        t = self.topology.sync_time(payload, self.n_workers, self.net) / 2.0
        copies = [vector.copy() for _ in range(self.n_workers)]
        counted = int(payload) * self.n_workers
        self.bytes_synced += counted
        self._trace("broadcast", payload, counted, self.n_workers, t)
        return copies, t

    def p2p(self, payload_nbytes: float) -> float:
        """Timing for one point-to-point transfer (data injection)."""
        t = p2p_time(payload_nbytes, self.net)
        self._trace("p2p", float(payload_nbytes), 0, 2, t)
        return t

    # -- tracing ----------------------------------------------------------
    def _trace(
        self, op: str, payload: float, counted: int, ranks: int, seconds: float
    ) -> None:
        """Emit one ``collective`` event when a tracer is installed.

        ``bytes`` is exactly the amount this operation added to
        :attr:`bytes_synced`, so the trace-wide sum of event ``bytes``
        equals the counter — the invariant the property tests pin down.
        """
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "collective",
                op=op,
                payload=payload,
                bytes=float(counted),
                ranks=ranks,
                seconds=seconds,
            )

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """Traffic counters (the only mutable state besides scratch)."""
        return {
            "bytes_synced": self.bytes_synced,
            "n_syncs": self.n_syncs,
            "n_allgathers": self.n_allgathers,
        }

    def load_state_dict(self, state: dict) -> None:
        self.bytes_synced = int(state["bytes_synced"])
        self.n_syncs = int(state["n_syncs"])
        self.n_allgathers = int(state["n_allgathers"])
