"""In-process collectives over numpy buffers, with simulated timing.

:class:`SimGroup` mirrors the mpi4py surface the paper's PS calls map onto
(allreduce / allgather / broadcast / p2p) but executes within one process:
the data movement is real numpy, the elapsed time is the cost model's. Every
operation returns ``(result, simulated_seconds)`` so trainers charge the
clock explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.comm.costmodel import (
    allgather_bits_time,
    p2p_time,
    ps_sync_time,
    sharded_ps_sync_time,
)
from repro.comm.envelope import CollectiveTimeoutError, CommEnvelope, RetryPolicy
from repro.comm.network import LinkFaultModel, NetworkModel
from repro.comm.sharding import ShardSpec
from repro.comm.topology import Topology, build_topology
from repro.utils import fastpath
from repro.utils.flatten import mean_into


class SimGroup:
    """A communicator over ``n_workers`` simulated ranks.

    Parameters
    ----------
    n_workers:
        Group size (the PS is not a rank; its cost is in the topology).
    net:
        Link parameters used for timing.
    topology:
        Name or instance; decides the full-model sync cost formula.
    link_faults:
        Optional :class:`~repro.comm.network.LinkFaultModel`. ``None`` (the
        default) disables the resilient-collectives layer entirely — every
        op takes the original single-shot path and runs are bitwise
        identical to builds without it. When set, each collective routes
        around dead links (ring→chain, tree re-parenting, PS fallback) and
        wraps its messages in a retrying :class:`CommEnvelope`; a link the
        schedule cannot route around raises :class:`CollectiveTimeoutError`.
    retry_policy:
        Envelope retry/backoff schedule; only consulted with link faults.
    shard_spec:
        Optional :class:`~repro.comm.sharding.ShardSpec`. ``None`` (or a
        single-shard spec, which is normalized to ``None``) keeps every
        sync on the original full-vector path — byte-identical to builds
        without sharding. With ``S > 1`` shards, full-model syncs run one
        PS round per shard **in parallel** and the clock charges
        :func:`~repro.comm.costmodel.sharded_ps_sync_time`; only the
        ``"ps"`` topology supports this (enforced by the config layer).
    """

    def __init__(
        self,
        n_workers: int,
        net: NetworkModel = None,
        topology="ps",
        aggregator=None,
        link_faults: Optional[LinkFaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        shard_spec: Optional[ShardSpec] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.net = net if net is not None else NetworkModel()
        self.topology: Topology = (
            topology if isinstance(topology, Topology) else build_topology(topology)
        )
        #: Optional robust :class:`~repro.core.robust.Aggregator` applied by
        #: :meth:`allreduce_mean` in place of the plain mean; ``None`` keeps
        #: the exact legacy arithmetic (byte-identity contract). Timing and
        #: byte accounting are strategy-independent — a robust round moves
        #: the same payload over the same links.
        self.aggregator = aggregator
        self.link_faults = link_faults
        self.envelope: Optional[CommEnvelope] = (
            None if link_faults is None
            else CommEnvelope(link_faults, retry_policy or RetryPolicy())
        )
        # Byte/op counters so experiments can report communication volume.
        self.bytes_synced: int = 0
        self.n_syncs: int = 0
        self.n_allgathers: int = 0
        # Resilience counters (only move when link faults are active).
        self.n_reroutes: int = 0
        self.retry_wait_s: float = 0.0
        # Current training step (fed by the trainer via begin_step) — the
        # key every link-fault draw is salted with.
        self._step: int = 0
        self._partition_active: bool = False
        # Dedup link_fault events to one per (link, step).
        self._faulted_links: set = set()
        # Reusable allreduce output (fast path); sized on first use.
        self._mean_buf: Optional[np.ndarray] = None
        # Sharded-PS geometry; a trivial 1-shard spec is normalized away so
        # the unsharded code paths stay the only ones default runs touch.
        self.shard_spec: Optional[ShardSpec] = (
            shard_spec
            if shard_spec is not None and shard_spec.n_shards > 1
            else None
        )
        # Per-shard absences (shard -> positions in the round's vector
        # list) pending for the next sharded round; set by the trainer
        # when an uplink push for one shard was terminally lost.
        self._shard_absent: dict = {}
        #: Shard rounds that ran with fewer contributors than the sync's
        #: cohort (or did not run at all) — the group-side degradation
        #: ledger, mirroring the sharded server's.
        self.degraded_shard_rounds: int = 0

    # -- membership --------------------------------------------------------
    def resize(self, n_workers: int, shard_spec: Optional[ShardSpec] = None):
        """Adopt a new world size after an elastic membership change.

        Topology objects are stateless over the group size (every
        ``sync_time`` takes ``n_workers`` explicitly), so a resize is just
        the new count plus fresh shard geometry; byte/op counters carry
        over — they ledger the whole run, not one membership epoch.
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.shard_spec = (
            shard_spec
            if shard_spec is not None and shard_spec.n_shards > 1
            else None
        )
        self._shard_absent = {}

    # -- step context ------------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Install the step every subsequent link-fault draw is keyed on.

        Collectives always run on the coordinator thread, so this is safe
        under every executor backend. Also detects partition onset/healing
        transitions and emits ``partition_detected`` events.
        """
        self._step = int(step)
        # Shard absences never survive a step boundary: an aborted round
        # (quorum loss, rollback) must not leak its drops into the next one.
        self._shard_absent = {}
        if self.link_faults is None:
            return
        self._faulted_links = set()
        part = self.link_faults.partition_at(step)
        if part is not None and not self._partition_active:
            self._partition_active = True
            tr = obs.active()
            if tr is not None:
                tr.emit(
                    "partition_detected",
                    step=step,
                    groups=[list(g) for g in part.groups],
                    majority=list(self.link_faults.majority_side(step)),
                    until=part.end,
                )
        elif part is None and self._partition_active:
            self._partition_active = False

    # -- resilient envelope ------------------------------------------------
    def _record_link_fault(self, src: int, dst: int, kind: str) -> None:
        key = (min(src, dst), max(src, dst))
        if key in self._faulted_links:
            return
        self._faulted_links.add(key)
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "link_fault", step=self._step,
                src=key[0], dst=key[1], kind=kind,
            )

    def _enveloped_edges(
        self, edges, op: str, transfer_s: float, must_deliver: bool
    ) -> float:
        """Push one enveloped message across each schedule edge.

        Returns the summed retry latency (timeouts + backoffs + duplicate
        retransfers) to charge on top of the healed cost-model time. A
        terminal loss raises :class:`CollectiveTimeoutError` when
        ``must_deliver`` (ring/tree schedules cannot tolerate a hole).
        """
        env = self.envelope
        lf = self.link_faults
        extra = 0.0
        for (src, dst) in edges:
            out = env.send(src, dst, self._step, transfer_s)
            if out.attempts > 1 or not out.delivered:
                kind = "down" if lf.link_down(src, dst, self._step) else "loss"
                self._record_link_fault(src, dst, kind)
                tr = obs.active()
                if tr is not None:
                    tr.emit(
                        "retry", step=self._step, src=src, dst=dst,
                        op=op, attempts=out.attempts, wait_s=out.wait_s,
                        delivered=out.delivered,
                    )
            extra += out.wait_s + out.dup_extra_s
            self.retry_wait_s += out.wait_s
            if not out.delivered and must_deliver:
                raise CollectiveTimeoutError(
                    op, src, dst, self._step, out.attempts
                )
        return extra

    def _resilient_sync(self, op: str, payload: float, ranks: int, rank_ids) -> float:
        """Healed + enveloped time for one full-model sync round.

        Only reached when link faults are active. Reroutes the schedule
        around dead links (emitting ``reroute``), then charges per-message
        retries over the healed edges. PS schedules skip the per-edge
        envelope here — their uplinks are simulated per worker in the
        trainer's upload path, where a lost push degrades one worker
        instead of the whole round.
        """
        ids = list(range(ranks)) if rank_ids is None else sorted(rank_ids)
        healed = self.topology.healed_sync_time(
            payload, ids, self.n_workers, self.net, self.link_faults, self._step
        )
        if healed.mode != "normal":
            self.n_reroutes += 1
            tr = obs.active()
            if tr is not None:
                tr.emit(
                    "reroute", step=self._step, op=op,
                    topology=self.topology.name, mode=healed.mode,
                    detail=healed.detail, n_dead=healed.n_dead,
                )
        t = healed.seconds
        if self.topology.name != "ps" and healed.mode != "ps_fallback":
            # Full payload crosses each healed hop (chain/tree hop cost);
            # the normal ring's per-hop share is payload/k but retries there
            # retransmit the full segment stream, so charge conservatively.
            per_hop = self.net.latency_s + 8.0 * payload / (
                self.net.effective_worker_bandwidth()
            )
            t += self._enveloped_edges(
                healed.edges, op, per_hop, must_deliver=True
            )
        return t

    # -- sharded parameter service ----------------------------------------
    def set_shard_absences(self, absences) -> None:
        """Install per-shard drops for the *next* sharded sync round.

        ``absences`` maps shard index → positions (indices into the round's
        vector list) whose uplink push for that shard was terminally lost.
        Those positions are excluded from that shard's aggregation and its
        contributor count — a degraded *shard* round — while still counting
        toward every other shard. Consumed by the next sharded round and
        cleared at each ``begin_step``.
        """
        if self.shard_spec is None:
            raise RuntimeError("set_shard_absences requires a sharded group")
        clean = {}
        for s, positions in absences.items():
            s = int(s)
            if not 0 <= s < self.shard_spec.n_shards:
                raise ValueError(
                    f"shard {s} out of range [0, {self.shard_spec.n_shards})"
                )
            if positions:
                clean[s] = frozenset(int(p) for p in positions)
        self._shard_absent = clean

    def _take_shard_absences(self) -> dict:
        absent = self._shard_absent
        self._shard_absent = {}
        return absent

    def _sharded_mean(self, vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Per-shard aggregate of ``vectors`` into the reusable buffer.

        Reads (does not consume) the pending shard absences so the arithmetic
        and the subsequent :meth:`_sharded_round` charge see the same drops.
        With no absences and ``aggregator=None`` the result is bitwise equal
        to the unsharded mean: ``mean_into`` accumulates elementwise, so
        slicing the reduction per shard changes nothing.
        """
        first = np.asarray(vectors[0])
        if self._mean_buf is None or self._mean_buf.shape != first.shape:
            self._mean_buf = np.empty(first.shape, dtype=np.float64)
        for s, sl in enumerate(self.shard_spec.slices()):
            gone = self._shard_absent.get(s, frozenset())
            shard_vecs = [
                np.asarray(v)[sl]
                for i, v in enumerate(vectors)
                if i not in gone
            ]
            if not shard_vecs:
                # Nobody delivered this shard: no information, no movement.
                self._mean_buf[sl] = 0.0
            elif self.aggregator is not None:
                self.aggregator.reduce(
                    shard_vecs, out=self._mean_buf[sl], where="allreduce"
                )
            else:
                mean_into(shard_vecs, out=self._mean_buf[sl])
        mean = self._mean_buf.view()
        mean.flags.writeable = False
        return mean

    def _sharded_round(self, op: str, payload: float, ranks: int) -> float:
        """Charge one sharded full-model sync round; consumes absences.

        Emits one ``collective`` event per shard (its ``bytes`` is exactly
        what that shard added to :attr:`bytes_synced`, preserving the
        events-sum == counter invariant) plus one ``shard_round`` summary
        event whose ``bytes`` recaps the round total without being counted
        again by the metrics tap.
        """
        spec = self.shard_spec
        absent = self._take_shard_absences()
        shard_bytes = spec.int_payloads(payload)
        ks = [
            max(0, ranks - len(absent.get(s, ())))
            for s in range(spec.n_shards)
        ]
        total = sharded_ps_sync_time(shard_bytes, ks, self.net)
        self.degraded_shard_rounds += sum(1 for k in ks if k < ranks)
        round_bytes = 0
        n_active = 0
        for s, (b, k) in enumerate(zip(shard_bytes, ks)):
            t_s = ps_sync_time(float(b), k, self.net) if k >= 1 else 0.0
            counted = int(b) * k
            self.bytes_synced += counted
            round_bytes += counted
            if k >= 1:
                n_active += 1
            self._trace(op, float(b), counted, k, t_s, shard=s)
        self.n_syncs += 1
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "shard_round",
                op=op,
                n_shards=spec.n_shards,
                n_active=n_active,
                n_degraded=sum(1 for k in ks if k < ranks),
                bytes=float(round_bytes),
                seconds=total,
            )
        return total

    # -- full-model synchronization ---------------------------------------
    def allreduce_mean(
        self,
        vectors: Sequence[np.ndarray],
        nbytes: float = None,
        n_live: Optional[int] = None,
        rank_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, float]:
        """Average one flat vector per rank; returns (mean, sim_seconds).

        ``nbytes`` overrides the payload size for timing (the experiment
        harness passes the *paper-scale* model size here so Fig. 1a's
        507 MB VGG11 behaviour reproduces with a small in-memory analog).

        ``n_live`` opts in to a degraded round over a survivor subset: the
        mean is over ``n_live`` vectors and the sync is charged for
        ``n_live`` ranks. Without it a short vector list is an error —
        silently averaging fewer replicas than the group has is exactly
        the wrong-answer mode the fault model exists to make loud.

        ``rank_ids`` names the actual participating worker ids (so the
        link-fault layer can route around the links those ranks use);
        ignored without link faults, where only the count matters.
        """
        expected = self.n_workers if n_live is None else int(n_live)
        if n_live is not None and not 1 <= expected <= self.n_workers:
            raise ValueError(
                f"n_live must be in [1, {self.n_workers}], got {n_live}"
            )
        if len(vectors) != expected:
            raise ValueError(
                f"expected {expected} vectors, got {len(vectors)}"
            )
        first = np.asarray(vectors[0])
        for v in vectors[1:]:
            if np.asarray(v).shape != first.shape:
                raise ValueError("allreduce requires equally-shaped vectors")
        if self.shard_spec is not None:
            mean = self._sharded_mean(vectors)
            payload = float(first.nbytes if nbytes is None else nbytes)
            t = self._sharded_round("allreduce", payload, expected)
            return mean, t
        if self.aggregator is not None:
            if self._mean_buf is None or self._mean_buf.shape != first.shape:
                self._mean_buf = np.empty(first.shape, dtype=np.float64)
            self.aggregator.reduce(vectors, out=self._mean_buf, where="allreduce")
            mean = self._mean_buf.view()
            mean.flags.writeable = False
        elif fastpath.is_enabled():
            # Average into a reusable buffer (bitwise-identical to the stack
            # reduce below) and hand out a read-only view — callers consume
            # the mean before the next collective.
            if self._mean_buf is None or self._mean_buf.shape != first.shape:
                self._mean_buf = np.empty(first.shape, dtype=np.float64)
            mean = mean_into(vectors, out=self._mean_buf).view()
            mean.flags.writeable = False
        else:
            mean = np.mean(np.stack([np.asarray(v) for v in vectors]), axis=0)
        payload = float(first.nbytes if nbytes is None else nbytes)
        if self.envelope is None:
            t = self.topology.sync_time(payload, expected, self.net)
        else:
            t = self._resilient_sync("allreduce", payload, expected, rank_ids)
        counted = int(payload) * expected
        self.bytes_synced += counted
        self.n_syncs += 1
        self._trace("allreduce", payload, counted, expected, t)
        return mean, t

    def charge_sync(
        self,
        nbytes: float,
        n_live: Optional[int] = None,
        rank_ids: Optional[Sequence[int]] = None,
    ) -> float:
        """Account one full-model sync round and return its simulated time.

        For callers that perform the aggregation arithmetic elsewhere (e.g.
        through the :class:`~repro.cluster.server.ParameterServer`) and only
        need the clock charged once. ``n_live`` charges a degraded round
        over a survivor subset instead of the full group; ``rank_ids``
        identifies the survivors for the link-fault layer.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        ranks = self.n_workers if n_live is None else int(n_live)
        if not 1 <= ranks <= self.n_workers:
            raise ValueError(f"n_live must be in [1, {self.n_workers}], got {n_live}")
        if self.shard_spec is not None:
            return self._sharded_round("sync", float(nbytes), ranks)
        if self.envelope is None:
            t = self.topology.sync_time(float(nbytes), ranks, self.net)
        else:
            t = self._resilient_sync("sync", float(nbytes), ranks, rank_ids)
        counted = int(nbytes) * ranks
        self.bytes_synced += counted
        self.n_syncs += 1
        self._trace("sync", float(nbytes), counted, ranks, t)
        return t

    def sync_time_only(
        self,
        nbytes: float,
        n_live: Optional[int] = None,
        rank_ids: Optional[Sequence[int]] = None,
    ) -> float:
        """Healed sync time *without* byte accounting or a trace event.

        For trainers (FedAvg) that charge their round's clock against a
        different topology/ledger but still need link faults respected.
        Identical to ``topology.sync_time`` when link faults are off.
        """
        ranks = self.n_workers if n_live is None else int(n_live)
        if not 1 <= ranks <= self.n_workers:
            raise ValueError(f"n_live must be in [1, {self.n_workers}], got {n_live}")
        if self.shard_spec is not None:
            # Time-only query: uniform contributor counts, and the pending
            # absences (if any) are left for the accounted round to consume.
            return sharded_ps_sync_time(
                self.shard_spec.int_payloads(float(nbytes)),
                [ranks] * self.shard_spec.n_shards,
                self.net,
            )
        if self.envelope is None:
            return self.topology.sync_time(float(nbytes), ranks, self.net)
        return self._resilient_sync("sync", float(nbytes), ranks, rank_ids)

    def push_outcome(
        self, worker: int, nbytes: float, shard: Optional[int] = None
    ) -> Tuple[float, bool]:
        """Simulate one worker's PS uplink push through the envelope.

        Returns ``(extra_seconds, delivered)``. Only meaningful with link
        faults active (returns ``(0.0, True)`` otherwise). A terminal loss
        does NOT raise here: the PS schedule tolerates holes, so the
        trainer degrades by dropping that worker from the round — the same
        path worker-level drop faults take.

        ``shard`` namespaces one shard's push within the step: each shard
        message draws its own loss/dup/jitter fate (envelope ``msg`` key
        ``shard + 1``) and a terminal loss drops the worker from *that
        shard's* round only. ``None`` keeps the exact unsharded streams.
        """
        if self.envelope is None:
            return 0.0, True
        lf = self.link_faults
        transfer_s = self.net.latency_s + 8.0 * float(nbytes) / self.net.bandwidth_bps
        msg = 0 if shard is None else int(shard) + 1
        out = self.envelope.send(worker, lf.ps_rank, self._step, transfer_s, msg)
        if out.attempts > 1 or not out.delivered:
            kind = (
                "down" if lf.link_down(worker, lf.ps_rank, self._step) else "loss"
            )
            self._record_link_fault(worker, lf.ps_rank, kind)
            tr = obs.active()
            if tr is not None:
                extra = {} if shard is None else {"shard": int(shard)}
                tr.emit(
                    "retry", step=self._step, worker=worker,
                    src=worker, dst=lf.ps_rank, op="push",
                    attempts=out.attempts, wait_s=out.wait_s,
                    delivered=out.delivered, **extra,
                )
        self.retry_wait_s += out.wait_s
        return out.wait_s + out.dup_extra_s, out.delivered

    # -- SelSync's flag exchange ------------------------------------------
    def allgather_flags(self, flags: Sequence[int]) -> Tuple[np.ndarray, float]:
        """Alg. 1 line 12: share each worker's 1-bit sync status with all."""
        if len(flags) != self.n_workers:
            raise ValueError(f"expected {self.n_workers} flags, got {len(flags)}")
        arr = np.asarray(flags, dtype=np.uint8)
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError(f"flags must be 0/1 bits, got {list(flags)}")
        self.n_allgathers += 1
        t = allgather_bits_time(self.n_workers, self.net)
        # Flag exchanges are latency traffic; they do not count toward the
        # full-model ``bytes_synced`` ledger, so ``bytes`` is 0 here.
        self._trace("allgather_flags", float(self.n_workers), 0, self.n_workers, t)
        return arr, t

    # -- broadcast / p2p -----------------------------------------------------
    def broadcast(self, vector: np.ndarray, nbytes: float = None) -> Tuple[List[np.ndarray], float]:
        """Root sends one vector to all ranks (initial model pull, Alg. 1 line 3)."""
        payload = float(vector.nbytes if nbytes is None else nbytes)
        # All pulls proceed in parallel, PS egress shared — same as one PS phase.
        t = self.topology.sync_time(payload, self.n_workers, self.net) / 2.0
        copies = [vector.copy() for _ in range(self.n_workers)]
        counted = int(payload) * self.n_workers
        self.bytes_synced += counted
        self._trace("broadcast", payload, counted, self.n_workers, t)
        return copies, t

    def p2p(self, payload_nbytes: float) -> float:
        """Timing for one point-to-point transfer (data injection)."""
        t = p2p_time(payload_nbytes, self.net)
        self._trace("p2p", float(payload_nbytes), 0, 2, t)
        return t

    # -- tracing ----------------------------------------------------------
    def _trace(
        self,
        op: str,
        payload: float,
        counted: int,
        ranks: int,
        seconds: float,
        **extra,
    ) -> None:
        """Emit one ``collective`` event when a tracer is installed.

        ``bytes`` is exactly the amount this operation added to
        :attr:`bytes_synced`, so the trace-wide sum of event ``bytes``
        equals the counter — the invariant the property tests pin down.
        Sharded rounds pass ``shard=s``; unsharded events carry no extra
        keys (trace byte-identity).
        """
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "collective",
                op=op,
                payload=payload,
                bytes=float(counted),
                ranks=ranks,
                seconds=seconds,
                **extra,
            )

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """Traffic counters (the only mutable state besides scratch).

        The ``net`` key exists only while the resilient layer is active so
        fault-free checkpoints stay byte-identical to builds without it.
        """
        state = {
            "bytes_synced": self.bytes_synced,
            "n_syncs": self.n_syncs,
            "n_allgathers": self.n_allgathers,
        }
        if self.envelope is not None:
            state["net"] = {
                "envelope": self.envelope.state_dict(),
                "n_reroutes": self.n_reroutes,
                "retry_wait_s": self.retry_wait_s,
                "partition_active": self._partition_active,
            }
        if self.shard_spec is not None:
            # Geometry and the degradation ledger — shard absences are
            # transient within a step and rounds always complete before a
            # checkpoint is cut.
            state["shard_bounds"] = list(self.shard_spec.bounds)
            state["degraded_shard_rounds"] = self.degraded_shard_rounds
        return state

    def load_state_dict(self, state: dict) -> None:
        saved = state.get("shard_bounds")
        ours = None if self.shard_spec is None else list(self.shard_spec.bounds)
        if saved is not None and ours is not None and list(saved) != ours:
            raise ValueError(
                f"shard layout mismatch: checkpoint bounds {list(saved)} "
                f"vs group {ours}"
            )
        self.bytes_synced = int(state["bytes_synced"])
        self.n_syncs = int(state["n_syncs"])
        self.n_allgathers = int(state["n_allgathers"])
        if self.shard_spec is not None:
            self.degraded_shard_rounds = int(
                state.get("degraded_shard_rounds", 0)
            )
        if self.envelope is not None and "net" in state:
            net = state["net"]
            self.envelope.load_state_dict(net["envelope"])
            self.n_reroutes = int(net["n_reroutes"])
            self.retry_wait_s = float(net["retry_wait_s"])
            self._partition_active = bool(net["partition_active"])
