"""Per-layer communication scheduling (paper §II-D related work).

GradientFlow overlaps outer-layer communication with inner-layer backward
compute; ByteScheduler re-partitions and batches tensors for efficient
transmission. This module models those schedules over a model's per-layer
parameter sizes so the ablation benches can quantify what layer-wise
scheduling buys on top of (or instead of) SelSync's skip-the-round strategy.

Three schedules over one backward pass:

* ``fused`` — wait for the full backward, then send one message with all
  bytes (the baseline the rest of this library charges).
* ``per_layer`` — send each layer the moment its gradient is ready
  (backward runs output→input), overlapping transfers with the remaining
  backward compute; each message pays its own latency.
* ``bucketed`` — per-layer readiness, but messages are coalesced into
  buckets of at least ``bucket_bytes`` (ByteScheduler / PyTorch-DDP style),
  amortizing latency while keeping most of the overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.comm.network import NetworkModel
from repro.nn.module import Module


def layer_sizes_bytes(model: Module) -> List[int]:
    """Per-parameter-tensor byte sizes in backward order (output→input).

    Parameters are registered in forward order, so backward readiness is the
    reverse traversal.
    """
    sizes = [p.nbytes for p in model.parameters()]
    return list(reversed(sizes))


@dataclass
class ScheduleResult:
    """Outcome of one modelled backward+communicate pass."""

    total_time: float
    comm_tail: float  # time spent communicating after compute finished
    n_messages: int


def expected_attempts(loss_p: float) -> float:
    """Expected send count for one message under i.i.d. loss ``loss_p``.

    A lost message is retransmitted until it lands, so attempts are
    geometric with mean ``1/(1-p)``. This is the steady-state cost a
    ``loss:p=...`` link fault adds to a schedule, before timeout/backoff
    overhead (which :class:`repro.comm.envelope.CommEnvelope` charges on
    the live path).
    """
    if not 0.0 <= loss_p < 1.0:
        raise ValueError(f"loss_p must be in [0, 1), got {loss_p}")
    return 1.0 / (1.0 - loss_p)


def _transfer(nbytes: float, net: NetworkModel, loss_p: float = 0.0) -> float:
    one = net.latency_s + 8.0 * nbytes / net.effective_worker_bandwidth()
    return one * expected_attempts(loss_p)


def fused_schedule(
    sizes: Sequence[int],
    backward_time: float,
    net: NetworkModel,
    loss_p: float = 0.0,
) -> ScheduleResult:
    """One message after the full backward pass."""
    total_bytes = float(sum(sizes))
    t = _transfer(total_bytes, net, loss_p)
    return ScheduleResult(
        total_time=backward_time + t, comm_tail=t, n_messages=1
    )


def _overlapped(
    chunks: Sequence[float], backward_time: float, net: NetworkModel,
    ready_fracs: Sequence[float], loss_p: float = 0.0,
) -> ScheduleResult:
    """Simulate a single link draining ``chunks`` as they become ready.

    ``ready_fracs[i]`` is the fraction of the backward pass after which
    chunk ``i`` may start transmitting. The link serializes messages.
    """
    clock = 0.0
    for frac, nbytes in zip(ready_fracs, chunks):
        ready_at = frac * backward_time
        start = max(clock, ready_at)
        clock = start + _transfer(nbytes, net, loss_p)
    return ScheduleResult(
        total_time=max(clock, backward_time),
        comm_tail=max(0.0, clock - backward_time),
        n_messages=len(chunks),
    )


def per_layer_schedule(
    sizes: Sequence[int],
    backward_time: float,
    net: NetworkModel,
    loss_p: float = 0.0,
) -> ScheduleResult:
    """Send each layer as soon as its gradient exists (GradientFlow)."""
    n = len(sizes)
    if n == 0:
        return ScheduleResult(backward_time, 0.0, 0)
    # Layer i (backward order) is ready after (i+1)/n of the backward pass;
    # readiness is proportional to work done, approximated as uniform.
    fracs = [(i + 1) / n for i in range(n)]
    return _overlapped(
        [float(s) for s in sizes], backward_time, net, fracs, loss_p
    )


def bucketed_schedule(
    sizes: Sequence[int],
    backward_time: float,
    net: NetworkModel,
    bucket_bytes: float = 1e6,
    loss_p: float = 0.0,
) -> ScheduleResult:
    """Coalesce ready layers into ≥``bucket_bytes`` messages (ByteScheduler)."""
    if bucket_bytes <= 0:
        raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
    n = len(sizes)
    if n == 0:
        return ScheduleResult(backward_time, 0.0, 0)
    buckets: List[float] = []
    fracs: List[float] = []
    acc = 0.0
    for i, s in enumerate(sizes):
        acc += float(s)
        is_last = i == n - 1
        if acc >= bucket_bytes or is_last:
            buckets.append(acc)
            fracs.append((i + 1) / n)  # ready when its last layer is ready
            acc = 0.0
    return _overlapped(buckets, backward_time, net, fracs, loss_p)


def sharded_schedule(
    sizes: Sequence[int],
    backward_time: float,
    net: NetworkModel,
    n_shards: int,
    loss_p: float = 0.0,
) -> ScheduleResult:
    """Fused send split across ``n_shards`` parallel PS shard links.

    The full backward completes, then one message per shard leaves
    concurrently (each shard server has its own ingress), so the comm tail
    is the *slowest shard's* transfer plus one coordination latency per
    extra shard — the schedule-level analog of
    :func:`repro.comm.costmodel.sharded_ps_sync_time`. Shard payloads come
    from the same layer-aligned geometry the live path uses
    (:meth:`repro.comm.sharding.ShardSpec.from_layers` over the backward-
    order sizes), so the modelled split matches what a sharded run ships.
    With one shard this is exactly :func:`fused_schedule`.
    """
    from repro.comm.sharding import ShardSpec

    if not sizes:
        return ScheduleResult(backward_time, 0.0, 0)
    spec = ShardSpec.from_layers([int(s) for s in sizes], n_shards)
    payloads = spec.int_payloads(float(sum(sizes)))
    tail = max(_transfer(float(b), net, loss_p) for b in payloads)
    tail += (spec.n_shards - 1) * net.latency_s
    return ScheduleResult(
        total_time=backward_time + tail,
        comm_tail=tail,
        n_messages=spec.n_shards,
    )


def compare_schedules(
    model: Module,
    backward_time: float,
    net: NetworkModel = None,
    bucket_bytes: float = 1e6,
    loss_p: float = 0.0,
) -> dict:
    """Run all three schedules over a model's real layer sizes.

    ``loss_p`` scales every message by its expected retransmit count —
    lossy links hurt per-layer schedules the most (many small messages
    each paying the geometric attempt tax on their own latency).
    """
    net = net if net is not None else NetworkModel()
    sizes = layer_sizes_bytes(model)
    return {
        "fused": fused_schedule(sizes, backward_time, net, loss_p),
        "per_layer": per_layer_schedule(sizes, backward_time, net, loss_p),
        "bucketed": bucketed_schedule(
            sizes, backward_time, net, bucket_bytes, loss_p
        ),
    }
