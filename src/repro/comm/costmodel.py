"""Communication-time cost models.

Closed-form times for the synchronization primitives the trainers invoke,
derived from the standard α–β (latency–bandwidth) model. These are the only
place simulated wall-clock is manufactured; everything else measures real
numpy compute or counts real bytes.
"""

from __future__ import annotations

from repro.comm.network import NetworkModel


def p2p_time(nbytes: float, net: NetworkModel) -> float:
    """One point-to-point transfer (data injection uses this)."""
    return net.transfer_time(nbytes)


def ps_sync_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Full PS round: N workers push ``nbytes`` each, then pull the update.

    Workers co-located on a node (``net.workers_per_node``) first reduce
    locally over the fast intra-node link, then one aggregated update per
    node crosses the NIC; the PS serializes all node ingress through its own
    link. Each phase therefore costs
    ``intra + latency + max(payload/node_NIC, n_nodes×payload/PS_NIC)`` and a
    full round is push + pull. The shared-ingress term is what bends
    Fig. 1a's throughput curve away from linear as N grows.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    import math

    bits = 8.0 * nbytes
    wpn = min(net.workers_per_node, n_workers)
    n_nodes = math.ceil(n_workers / wpn)
    intra = 0.0
    if wpn > 1:
        # Local ring reduce among co-located workers at the intra-node rate.
        intra = (wpn - 1) / wpn * bits / (net.bandwidth_bps * net.intra_node_speedup)
    inter = net.latency_s + max(
        bits / net.bandwidth_bps, n_nodes * bits / net.ps_bandwidth_bps
    )
    return 2.0 * (intra + inter)  # push + pull


def sharded_ps_sync_time(
    shard_nbytes, ranks_per_shard, net: NetworkModel
) -> float:
    """Full sync round over a sharded parameter server.

    ``shard_nbytes[s]`` is shard ``s``'s payload and ``ranks_per_shard[s]``
    the number of workers contributing to that shard's round (a degraded
    shard round covers fewer). Each shard is owned by its own shard server
    on its own NIC, so the ``S`` per-shard push–pull rounds proceed **in
    parallel** and the round costs the slowest shard:

        max_s ps_sync_time(b_s, k_s) + (S_active − 1) · α

    The trailing term is the per-shard coordination latency — completing a
    round now requires one completion message per *extra* shard server, so
    sharding is never charged as entirely free. A shard with zero
    contributing ranks is skipped (its round simply does not run). With one
    shard this reduces exactly to :func:`ps_sync_time`.
    """
    shard_nbytes = list(shard_nbytes)
    ranks_per_shard = list(ranks_per_shard)
    if len(shard_nbytes) != len(ranks_per_shard):
        raise ValueError(
            f"{len(shard_nbytes)} shard payloads vs "
            f"{len(ranks_per_shard)} rank counts"
        )
    if not shard_nbytes:
        raise ValueError("need at least one shard")
    times = [
        ps_sync_time(b, k, net)
        for b, k in zip(shard_nbytes, ranks_per_shard)
        if k >= 1
    ]
    if not times or max(times) == 0.0:
        # All shards skipped, or every shard has a single rank — the
        # unsharded convention is that a 1-worker "round" is free, and the
        # coordination term must not make the sharded analog cost more.
        return 0.0
    return max(times) + (len(times) - 1) * net.latency_s


def ring_allreduce_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Bandwidth-optimal ring allreduce: ``2(N-1)/N`` payload + 2(N-1) hops."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    bits = 8.0 * nbytes
    bw = net.effective_worker_bandwidth()
    return 2.0 * (n_workers - 1) * (net.latency_s + bits / (n_workers * bw))


def tree_allreduce_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Binary-tree reduce+broadcast: logarithmic latency, full payload per hop."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    import math

    hops = 2.0 * math.ceil(math.log2(n_workers))
    bits = 8.0 * nbytes
    bw = net.effective_worker_bandwidth()
    return hops * (net.latency_s + bits / bw)


def chain_allreduce_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Ring allreduce rerouted around one dead link: the ring becomes a
    chain (open ring).

    Without the wrap-around link the reduce-scatter/allgather pipeline
    cannot overlap both directions, so each phase degenerates to passing
    the *full* payload down the chain: 2(N−1) hops carrying ``nbytes``
    each instead of ``nbytes/N``. That is exactly the bandwidth penalty of
    losing ring parallelism — the healed ring is correct but ~N× more
    expensive in the bandwidth term, which is what makes a reroute visible
    in the timing ledger rather than cosmetically free.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    bits = 8.0 * nbytes
    bw = net.effective_worker_bandwidth()
    return 2.0 * (n_workers - 1) * (net.latency_s + bits / bw)


def tree_reparent_time(
    nbytes: float, n_workers: int, net: NetworkModel, n_dead_links: int
) -> float:
    """Tree allreduce with ``n_dead_links`` parent links rerouted.

    Each orphaned subtree re-parents to its grandparent (or a sibling),
    adding one extra full-payload hop per dead link on both the reduce and
    the broadcast sweep: ``tree_allreduce_time + 2·d·(α + bits/bw)``.
    """
    if n_dead_links < 0:
        raise ValueError(f"n_dead_links must be >= 0, got {n_dead_links}")
    base = tree_allreduce_time(nbytes, n_workers, net)
    if n_workers <= 1 or n_dead_links == 0:
        return base
    bits = 8.0 * nbytes
    bw = net.effective_worker_bandwidth()
    return base + 2.0 * n_dead_links * (net.latency_s + bits / bw)


def allgather_bits_time(n_workers: int, net: NetworkModel) -> float:
    """SelSync's 1-bit-per-worker flag allgather (Alg. 1 line 12).

    (N-1) bits of payload — latency dominated. The paper measured ≈2–4 ms;
    with the default latency this lands in the same range for N=16.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    payload_bytes = max(1.0, (n_workers - 1) / 8.0)
    # Ring-style allgather: N-1 latency hops, negligible payload.
    return (n_workers - 1) * net.latency_s + 8.0 * payload_bytes / net.effective_worker_bandwidth()
