"""Communication-time cost models.

Closed-form times for the synchronization primitives the trainers invoke,
derived from the standard α–β (latency–bandwidth) model. These are the only
place simulated wall-clock is manufactured; everything else measures real
numpy compute or counts real bytes.
"""

from __future__ import annotations

from repro.comm.network import NetworkModel


def p2p_time(nbytes: float, net: NetworkModel) -> float:
    """One point-to-point transfer (data injection uses this)."""
    return net.transfer_time(nbytes)


def ps_sync_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Full PS round: N workers push ``nbytes`` each, then pull the update.

    Workers co-located on a node (``net.workers_per_node``) first reduce
    locally over the fast intra-node link, then one aggregated update per
    node crosses the NIC; the PS serializes all node ingress through its own
    link. Each phase therefore costs
    ``intra + latency + max(payload/node_NIC, n_nodes×payload/PS_NIC)`` and a
    full round is push + pull. The shared-ingress term is what bends
    Fig. 1a's throughput curve away from linear as N grows.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    import math

    bits = 8.0 * nbytes
    wpn = min(net.workers_per_node, n_workers)
    n_nodes = math.ceil(n_workers / wpn)
    intra = 0.0
    if wpn > 1:
        # Local ring reduce among co-located workers at the intra-node rate.
        intra = (wpn - 1) / wpn * bits / (net.bandwidth_bps * net.intra_node_speedup)
    inter = net.latency_s + max(
        bits / net.bandwidth_bps, n_nodes * bits / net.ps_bandwidth_bps
    )
    return 2.0 * (intra + inter)  # push + pull


def ring_allreduce_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Bandwidth-optimal ring allreduce: ``2(N-1)/N`` payload + 2(N-1) hops."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    bits = 8.0 * nbytes
    bw = net.effective_worker_bandwidth()
    return 2.0 * (n_workers - 1) * (net.latency_s + bits / (n_workers * bw))


def tree_allreduce_time(nbytes: float, n_workers: int, net: NetworkModel) -> float:
    """Binary-tree reduce+broadcast: logarithmic latency, full payload per hop."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    import math

    hops = 2.0 * math.ceil(math.log2(n_workers))
    bits = 8.0 * nbytes
    bw = net.effective_worker_bandwidth()
    return hops * (net.latency_s + bits / bw)


def allgather_bits_time(n_workers: int, net: NetworkModel) -> float:
    """SelSync's 1-bit-per-worker flag allgather (Alg. 1 line 12).

    (N-1) bits of payload — latency dominated. The paper measured ≈2–4 ms;
    with the default latency this lands in the same range for N=16.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    payload_bytes = max(1.0, (n_workers - 1) / 8.0)
    # Ring-style allgather: N-1 latency hops, negligible payload.
    return (n_workers - 1) * net.latency_s + 8.0 * payload_bytes / net.effective_worker_bandwidth()
