"""Communication envelope: timeout → retry → exponential backoff.

Every message a collective sends travels inside a :class:`CommEnvelope`.
The envelope consults the :class:`~repro.comm.network.LinkFaultModel` for
per-attempt loss/duplication draws and administrative link state, charges
simulated wall-clock for each failed attempt (an adaptive timeout derived
from an RTT EWMA, plus exponential backoff with seeded jitter), and gives
up loudly after ``max_retries`` retries. Callers decide what "giving up"
means: the PS path degrades by dropping the sender from the round, while
ring/tree allreduce — which cannot proceed with a hole in the schedule —
raise :class:`CollectiveTimeoutError` into the quorum/recovery machinery.

Determinism: the jitter uniform for attempt ``k`` of the ``(src, dst,
step)`` message comes from the link-fault model's keyed stream, so the
entire retry schedule is a pure function of ``(seed, src, dst, step)`` —
identical across executors and independent of the order collectives issue
sends. The envelope itself draws no randomness.

With no link-fault model installed the envelope is never constructed at
all; fault-free runs go through the original single-shot transfer path and
stay bitwise identical to builds without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.comm.network import LinkFaultModel

__all__ = [
    "CollectiveTimeoutError",
    "RetryPolicy",
    "SendOutcome",
    "CommEnvelope",
]


class CollectiveTimeoutError(RuntimeError):
    """A collective could not complete within its retry budget.

    Raised when a message exhausts every attempt on a link the collective
    cannot route around (ring/tree schedules with no healthy detour). The
    recovery supervisor treats it like a quorum loss: roll back to the
    last checkpoint and resume with whatever connectivity remains.
    """

    def __init__(self, op: str, src: int, dst: int, step: int, attempts: int):
        self.op = op
        self.src = src
        self.dst = dst
        self.step = step
        self.attempts = attempts
        super().__init__(
            f"collective {op!r} timed out at step {step}: link "
            f"({src},{dst}) failed all {attempts} attempt(s)"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff schedule for one message.

    Attributes
    ----------
    max_retries:
        Retries after the first attempt (0 = single shot, fail fast).
    base_s:
        Backoff before the first retry.
    multiplier:
        Exponential growth factor per retry.
    cap_s:
        Ceiling on any single backoff interval.
    jitter:
        Symmetric jitter fraction: the backoff is scaled by
        ``1 + jitter * (2u - 1)`` for a keyed uniform ``u`` ∈ [0, 1), so
        the *cap* on interval k (``jitter=0``) is monotone non-decreasing
        and the jittered value stays within ±jitter of it.
    timeout_mult:
        A failed attempt costs ``timeout_mult ×`` the adaptive RTT
        estimate before the sender declares it lost.
    rtt_alpha:
        EWMA smoothing factor for the RTT estimate.
    """

    max_retries: int = 4
    base_s: float = 0.025
    multiplier: float = 2.0
    cap_s: float = 2.0
    jitter: float = 0.5
    timeout_mult: float = 4.0
    rtt_alpha: float = 0.2

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.cap_s < self.base_s:
            raise ValueError(
                f"cap_s ({self.cap_s}) must be >= base_s ({self.base_s})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.timeout_mult < 1.0:
            raise ValueError(f"timeout_mult must be >= 1, got {self.timeout_mult}")
        if not 0.0 < self.rtt_alpha <= 1.0:
            raise ValueError(f"rtt_alpha must be in (0, 1], got {self.rtt_alpha}")

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def backoff_cap(self, attempt: int) -> float:
        """Jitter-free backoff ceiling before retry ``attempt`` (1-based).
        Monotone non-decreasing in ``attempt`` and bounded by ``cap_s``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.cap_s, self.base_s * self.multiplier ** (attempt - 1))

    def backoff(self, attempt: int, u: float) -> float:
        """Jittered backoff before retry ``attempt`` given uniform ``u``."""
        return self.backoff_cap(attempt) * (1.0 + self.jitter * (2.0 * u - 1.0))

    def max_total_wait(self) -> float:
        """Upper bound on the summed backoff of a fully exhausted message
        (excludes per-attempt timeouts, which scale with the RTT)."""
        return sum(
            self.backoff_cap(k) * (1.0 + self.jitter)
            for k in range(1, self.max_retries + 1)
        )


@dataclass
class SendOutcome:
    """What one enveloped message cost and how it ended."""

    delivered: bool
    attempts: int
    #: Total simulated seconds: waits + backoffs + the final transfer.
    elapsed_s: float
    #: Retry-only portion (timeouts + backoffs); ``elapsed_s`` minus the
    #: useful transfer. This is what gets charged as retry latency.
    wait_s: float
    duplicated: bool = False
    #: Extra transfer seconds charged for an idempotent duplicate.
    dup_extra_s: float = 0.0


@dataclass
class CommEnvelope:
    """Per-message timeout/retry state machine over a link-fault model.

    Maintains an RTT EWMA (seeded from the first observed transfer) that
    adapts the per-attempt timeout: flaky-but-fast fabrics give up on an
    attempt quickly, congested ones wait longer before burning a retry.
    """

    faults: LinkFaultModel
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Adaptive RTT estimate in seconds (``None`` until the first success).
    rtt_ewma: Optional[float] = None
    # Lifetime counters (surfaced via SimGroup state/metrics).
    n_sends: int = 0
    n_retries: int = 0
    n_losses: int = 0
    n_dups: int = 0
    n_exhausted: int = 0
    total_wait_s: float = 0.0

    def timeout_s(self, transfer_s: float) -> float:
        """Adaptive per-attempt timeout: a multiple of the RTT estimate,
        never below the time the transfer itself would need."""
        est = transfer_s if self.rtt_ewma is None else self.rtt_ewma
        return max(transfer_s, self.policy.timeout_mult * est)

    def _observe(self, rtt: float) -> None:
        a = self.policy.rtt_alpha
        self.rtt_ewma = rtt if self.rtt_ewma is None else (
            (1.0 - a) * self.rtt_ewma + a * rtt
        )

    def send(
        self, src: int, dst: int, step: int, transfer_s: float, msg: int = 0
    ) -> SendOutcome:
        """Deliver one message, retrying through faults.

        ``transfer_s`` is the fault-free cost-model time for the payload;
        the link's delay factor scales it. ``msg`` namespaces independent
        messages sharing a ``(src, dst, step)`` key — the sharded PS push
        path sends one message per shard and each must draw its own fate
        (0, the default, keeps the exact pre-sharding streams). Returns a
        :class:`SendOutcome` — the caller decides whether a non-delivery
        degrades the round or raises :class:`CollectiveTimeoutError`.
        """
        self.n_sends += 1
        f = self.faults
        delay = f.delay_factor(src, dst, step)
        effective = transfer_s * delay
        elapsed = 0.0
        wait = 0.0
        for attempt in range(1, self.policy.max_attempts + 1):
            down = f.link_down(src, dst, step)
            lost = down or f.message_lost(src, dst, step, attempt - 1, msg)
            if not lost:
                elapsed += effective
                self._observe(effective)
                dup = f.message_duplicated(src, dst, step, attempt - 1, msg)
                dup_extra = effective if dup else 0.0
                if dup:
                    self.n_dups += 1
                self.total_wait_s += wait
                return SendOutcome(
                    delivered=True,
                    attempts=attempt,
                    elapsed_s=elapsed,
                    wait_s=wait,
                    duplicated=dup,
                    dup_extra_s=dup_extra,
                )
            self.n_losses += 1
            t_out = self.timeout_s(effective)
            elapsed += t_out
            wait += t_out
            if attempt < self.policy.max_attempts:
                self.n_retries += 1
                u = f.jitter_uniform(src, dst, step, attempt - 1, msg)
                b = self.policy.backoff(attempt, u)
                elapsed += b
                wait += b
        self.n_exhausted += 1
        self.total_wait_s += wait
        return SendOutcome(
            delivered=False,
            attempts=self.policy.max_attempts,
            elapsed_s=elapsed,
            wait_s=wait,
        )

    def state_dict(self) -> dict:
        return {
            "rtt_ewma": self.rtt_ewma,
            "n_sends": self.n_sends,
            "n_retries": self.n_retries,
            "n_losses": self.n_losses,
            "n_dups": self.n_dups,
            "n_exhausted": self.n_exhausted,
            "total_wait_s": self.total_wait_s,
        }

    def load_state_dict(self, state: dict) -> None:
        self.rtt_ewma = state["rtt_ewma"]
        self.n_sends = int(state["n_sends"])
        self.n_retries = int(state["n_retries"])
        self.n_losses = int(state["n_losses"])
        self.n_dups = int(state["n_dups"])
        self.n_exhausted = int(state["n_exhausted"])
        self.total_wait_s = float(state["total_wait_s"])
