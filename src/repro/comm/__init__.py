"""Simulated communication substrate.

Data movement between simulated workers happens in-process over numpy
buffers (mpi4py-style collective semantics); the *time* each operation would
take on the paper's testbed (5 Gbps NIC, PS topology) comes from an explicit
cost model, so speedups are ratios of modelled wall-clock.
"""

from repro.comm.network import LinkFaultModel, NetworkModel, make_link_faults
from repro.comm.costmodel import (
    allgather_bits_time,
    chain_allreduce_time,
    p2p_time,
    ps_sync_time,
    ring_allreduce_time,
    sharded_ps_sync_time,
    tree_allreduce_time,
    tree_reparent_time,
)
from repro.comm.sharding import ShardSpec
from repro.comm.envelope import (
    CollectiveTimeoutError,
    CommEnvelope,
    RetryPolicy,
    SendOutcome,
)
from repro.comm.topology import (
    HealedSync,
    PSTopology,
    RingTopology,
    Topology,
    TreeTopology,
    build_topology,
)
from repro.comm.collectives import SimGroup
from repro.comm.scheduling import (
    bucketed_schedule,
    compare_schedules,
    expected_attempts,
    fused_schedule,
    layer_sizes_bytes,
    per_layer_schedule,
    sharded_schedule,
)

__all__ = [
    "NetworkModel",
    "LinkFaultModel",
    "make_link_faults",
    "ps_sync_time",
    "sharded_ps_sync_time",
    "ShardSpec",
    "ring_allreduce_time",
    "tree_allreduce_time",
    "chain_allreduce_time",
    "tree_reparent_time",
    "allgather_bits_time",
    "p2p_time",
    "CollectiveTimeoutError",
    "CommEnvelope",
    "RetryPolicy",
    "SendOutcome",
    "Topology",
    "HealedSync",
    "PSTopology",
    "RingTopology",
    "TreeTopology",
    "build_topology",
    "SimGroup",
    "layer_sizes_bytes",
    "expected_attempts",
    "fused_schedule",
    "per_layer_schedule",
    "bucketed_schedule",
    "sharded_schedule",
    "compare_schedules",
]
