"""Network model: link bandwidths, latency and heterogeneity."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs


@dataclass
class NetworkModel:
    """Parameters of the simulated interconnect.

    Defaults mirror the paper's testbed: worker containers on a 5 Gbps NIC
    pushing/pulling through one PS node. ``intra_node_fraction`` models
    multi-GPU nodes (paper's 8/16-worker clusters pack 2/4 GPUs per node)
    where co-located workers enjoy a much faster effective link.

    Attributes
    ----------
    bandwidth_bps:
        Per-worker NIC bandwidth in bits/second.
    ps_bandwidth_bps:
        PS node NIC bandwidth; the PS ingests all N updates through it, which
        is what makes the PS the scaling bottleneck (Fig. 1a).
    latency_s:
        One-way message latency in seconds.
    intra_node_speedup:
        Bandwidth multiplier for worker pairs on the same node.
    workers_per_node:
        Workers co-located per physical node (1 = every link crosses the NIC).
    """

    bandwidth_bps: float = 5e9
    ps_bandwidth_bps: float = 20e9
    latency_s: float = 2e-4
    intra_node_speedup: float = 8.0
    workers_per_node: int = 1

    def __post_init__(self):
        if self.bandwidth_bps <= 0 or self.ps_bandwidth_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.workers_per_node < 1:
            raise ValueError("workers_per_node must be >= 1")

    def effective_worker_bandwidth(self) -> float:
        """Average per-worker bandwidth accounting for intra-node links."""
        if self.workers_per_node <= 1:
            return self.bandwidth_bps
        # One of every `workers_per_node` transfers crosses the NIC; the rest
        # move at the intra-node rate. Harmonic blend of the two rates.
        inter = 1.0 / self.workers_per_node
        intra = 1.0 - inter
        return 1.0 / (
            inter / self.bandwidth_bps
            + intra / (self.bandwidth_bps * self.intra_node_speedup)
        )

    def transfer_time(self, nbytes: float, bandwidth_bps: Optional[float] = None) -> float:
        """Seconds to move ``nbytes`` over one link (payload + latency)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        bw = self.bandwidth_bps if bandwidth_bps is None else bandwidth_bps
        t = self.latency_s + 8.0 * nbytes / bw
        tr = obs.active()
        if tr is not None:
            # Metrics only, no events: transfer_time is the primitive inside
            # every collective cost formula, so emitting events here would
            # double-count against the per-collective records.
            tr.metrics.inc("net.transfers")
            tr.metrics.inc("net.seconds", t)
        return t
