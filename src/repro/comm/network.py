"""Network model: link bandwidths, latency, heterogeneity and link faults."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.cluster.faults import NetFaultPlan, PartitionFault, parse_net_fault_spec


@dataclass
class NetworkModel:
    """Parameters of the simulated interconnect.

    Defaults mirror the paper's testbed: worker containers on a 5 Gbps NIC
    pushing/pulling through one PS node. ``intra_node_fraction`` models
    multi-GPU nodes (paper's 8/16-worker clusters pack 2/4 GPUs per node)
    where co-located workers enjoy a much faster effective link.

    Attributes
    ----------
    bandwidth_bps:
        Per-worker NIC bandwidth in bits/second.
    ps_bandwidth_bps:
        PS node NIC bandwidth; the PS ingests all N updates through it, which
        is what makes the PS the scaling bottleneck (Fig. 1a).
    latency_s:
        One-way message latency in seconds.
    intra_node_speedup:
        Bandwidth multiplier for worker pairs on the same node.
    workers_per_node:
        Workers co-located per physical node (1 = every link crosses the NIC).
    """

    bandwidth_bps: float = 5e9
    ps_bandwidth_bps: float = 20e9
    latency_s: float = 2e-4
    intra_node_speedup: float = 8.0
    workers_per_node: int = 1

    def __post_init__(self):
        if self.bandwidth_bps <= 0 or self.ps_bandwidth_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.workers_per_node < 1:
            raise ValueError("workers_per_node must be >= 1")

    def effective_worker_bandwidth(self) -> float:
        """Average per-worker bandwidth accounting for intra-node links."""
        if self.workers_per_node <= 1:
            return self.bandwidth_bps
        # One of every `workers_per_node` transfers crosses the NIC; the rest
        # move at the intra-node rate. Harmonic blend of the two rates.
        inter = 1.0 / self.workers_per_node
        intra = 1.0 - inter
        return 1.0 / (
            inter / self.bandwidth_bps
            + intra / (self.bandwidth_bps * self.intra_node_speedup)
        )

    def transfer_time(self, nbytes: float, bandwidth_bps: Optional[float] = None) -> float:
        """Seconds to move ``nbytes`` over one link (payload + latency)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        bw = self.bandwidth_bps if bandwidth_bps is None else bandwidth_bps
        t = self.latency_s + 8.0 * nbytes / bw
        tr = obs.active()
        if tr is not None:
            # Metrics only, no events: transfer_time is the primitive inside
            # every collective cost formula, so emitting events here would
            # double-count against the per-collective records.
            tr.metrics.inc("net.transfers")
            tr.metrics.inc("net.seconds", t)
        return t


class LinkFaultModel:
    """Deterministic link-level fault oracle for the simulated fabric.

    Wraps a :class:`~repro.cluster.faults.NetFaultPlan` and answers, for any
    ``(src, dst, step)`` triple, whether the link is administratively down
    (partition/flap), how much per-attempt loss and duplication probability
    applies, and by what factor transfers are slowed. Every stochastic draw
    is keyed on ``(seed, src, dst, step, attempt)`` through its own
    :class:`numpy.random.SeedSequence` stream — never the trainer RNGs — so
    outcomes are identical across serial/threaded/process executors and
    independent of call order. The parameter server is addressed as the
    pseudo-rank ``n_workers`` so PS links share the same keying scheme.
    """

    #: Salt namespaces for the keyed streams (distinct per draw purpose so
    #: loss and dup draws on the same message are independent).
    _SALT_LOSS = 101
    _SALT_DUP = 102
    _SALT_JITTER = 103

    def __init__(self, plan: NetFaultPlan, n_workers: int, seed: int = 0):
        plan.validate(n_workers)
        self.plan = plan
        self.n_workers = int(n_workers)
        self.seed = int(seed)

    @property
    def active(self) -> bool:
        return not self.plan.empty

    @property
    def ps_rank(self) -> int:
        """Pseudo-rank used to key PS↔worker links."""
        return self.n_workers

    def _rng(
        self,
        src: int,
        dst: int,
        step: int,
        salt: int,
        attempt: int = 0,
        msg: int = 0,
    ):
        a, b = (src, dst) if src <= dst else (dst, src)
        # ``msg`` namespaces multiple independent messages on the same link
        # in the same step (one per parameter-server shard). It is appended
        # only when nonzero so every pre-sharding draw keeps its exact
        # stream — the byte-identity contract for unsharded runs.
        key = [self.seed, a, b, step, salt, attempt]
        if msg:
            key.append(msg)
        return np.random.default_rng(np.random.SeedSequence(key))

    # -- administrative link state -------------------------------------

    def partition_at(self, step: int) -> Optional[PartitionFault]:
        """The partition clause covering ``step``, if any (first wins)."""
        for p in self.plan.partitions:
            if p.covers(step):
                return p
        return None

    def majority_side(self, step: int) -> Optional[Tuple[int, ...]]:
        """Worker ids on the majority side of the active partition (with
        unnamed workers riding along), or ``None`` when unpartitioned."""
        p = self.partition_at(step)
        if p is None:
            return None
        maj = p.majority_index()
        side = [
            w for w in range(self.n_workers)
            if (p.side_of(w) if p.side_of(w) is not None else maj) == maj
        ]
        return tuple(side)

    def link_down(self, a: int, b: int, step: int) -> bool:
        """Is the undirected link (a, b) administratively down at ``step``?

        True while a partition severs the pair or a flap clause is in its
        down half-period. The PS pseudo-rank is treated as a member of the
        partition's majority side (the PS sits with the majority).
        """
        p = self.partition_at(step)
        if p is not None:
            maj = p.majority_index()
            sa = maj if a == self.ps_rank else (
                p.side_of(a) if p.side_of(a) is not None else maj
            )
            sb = maj if b == self.ps_rank else (
                p.side_of(b) if p.side_of(b) is not None else maj
            )
            if sa != sb:
                return True
        lo, hi = (a, b) if a <= b else (b, a)
        for f in self.plan.flaps:
            if (f.a, f.b) == (lo, hi) and f.is_down(step):
                return True
        return False

    def dead_links(self, step: int, n: Optional[int] = None) -> List[Tuple[int, int]]:
        """All worker–worker links down at ``step`` (sorted, canonical)."""
        n = self.n_workers if n is None else n
        return [
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if self.link_down(a, b, step)
        ]

    # -- stochastic per-attempt draws ----------------------------------

    def loss_prob(self, a: int, b: int, step: int) -> float:
        """Per-attempt drop probability on the link (clauses combine as
        independent loss processes: 1 − Π(1 − pᵢ))."""
        keep = 1.0
        for l in self.plan.losses:
            if l.covers(a, b, step):
                keep *= 1.0 - l.p
        return 1.0 - keep

    def dup_prob(self, a: int, b: int, step: int) -> float:
        keep = 1.0
        for d in self.plan.dups:
            if d.covers(a, b, step):
                keep *= 1.0 - d.p
        return 1.0 - keep

    def delay_factor(self, a: int, b: int, step: int) -> float:
        """Multiplier on transfer time (overlapping clauses multiply)."""
        lo, hi = (a, b) if a <= b else (b, a)
        factor = 1.0
        for d in self.plan.delays:
            if (d.a, d.b) == (lo, hi) and d.covers(step):
                factor *= d.factor
        return factor

    def message_lost(
        self, src: int, dst: int, step: int, attempt: int, msg: int = 0
    ) -> bool:
        """Keyed Bernoulli draw: is this attempt's message dropped?"""
        p = self.loss_prob(src, dst, step)
        if p <= 0.0:
            return False
        u = self._rng(src, dst, step, self._SALT_LOSS, attempt, msg).random()
        return bool(u < p)

    def message_duplicated(
        self, src: int, dst: int, step: int, attempt: int, msg: int = 0
    ) -> bool:
        """Keyed Bernoulli draw: does this attempt spawn a duplicate?"""
        p = self.dup_prob(src, dst, step)
        if p <= 0.0:
            return False
        u = self._rng(src, dst, step, self._SALT_DUP, attempt, msg).random()
        return bool(u < p)

    def jitter_uniform(
        self, src: int, dst: int, step: int, attempt: int, msg: int = 0
    ) -> float:
        """Keyed uniform [0, 1) draw for backoff jitter."""
        return float(
            self._rng(src, dst, step, self._SALT_JITTER, attempt, msg).random()
        )


def make_link_faults(
    spec: Optional[str], n_workers: int, seed: int = 0
) -> Optional[LinkFaultModel]:
    """Build a :class:`LinkFaultModel` from a spec string, or ``None`` for
    an empty spec — callers short-circuit on ``None`` so fault-free runs
    never touch the link-fault code path at all."""
    plan = parse_net_fault_spec(spec)
    if plan.empty:
        return None
    return LinkFaultModel(plan, n_workers, seed=seed)
