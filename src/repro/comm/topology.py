"""Synchronization topologies.

Alg. 1's ``pushToPS``/``pullFromPS`` can be swapped for decentralized
collectives (paper §III, last paragraph); a :class:`Topology` encapsulates
the cost formula for one full model synchronization so trainers are agnostic
to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.comm.costmodel import (
    chain_allreduce_time,
    ps_sync_time,
    ring_allreduce_time,
    tree_allreduce_time,
    tree_reparent_time,
)
from repro.comm.network import LinkFaultModel, NetworkModel
from repro.utils.registry import Registry

TOPOLOGIES: Registry = Registry("topology")


@dataclass(frozen=True)
class HealedSync:
    """Outcome of routing one collective around dead links.

    ``mode`` is ``"normal"`` (no healing needed), ``"rerouted"`` (ring →
    chain around one dead link, or the ring/tree re-formed over a rank
    subset), ``"reparent"`` (tree subtrees re-attached) or
    ``"ps_fallback"`` (fabric too broken for the decentralized schedule —
    degrade to PS push–pull). ``edges`` is the healed schedule actually
    used, so the envelope simulates retries over real links only.
    """

    seconds: float
    mode: str
    detail: str
    edges: Tuple[Tuple[int, int], ...]
    n_dead: int = 0


class Topology:
    """Cost interface for one full-model synchronization round."""

    name = "abstract"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        raise NotImplementedError

    def schedule_edges(
        self, ranks: Sequence[int], ps_rank: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Links one sync round crosses when ``ranks`` participate."""
        raise NotImplementedError

    def healed_sync_time(
        self,
        nbytes: float,
        ranks: Sequence[int],
        n_total: int,
        net: NetworkModel,
        faults: LinkFaultModel,
        step: int,
    ) -> HealedSync:
        """Sync time with dead links routed around.

        ``ranks`` are the participating worker ids (possibly a survivor
        subset of ``n_total``); ``faults`` answers per-link liveness at
        ``step``. The default treats every topology as unaffected by
        worker–worker link state (correct for PS, overridden by ring/tree).
        """
        k = len(ranks)
        return HealedSync(
            seconds=self.sync_time(nbytes, k, net),
            mode="normal",
            detail="",
            edges=self.schedule_edges(ranks, faults.ps_rank),
        )

    def neighbors(self, rank: int, n_workers: int) -> frozenset:
        """Worker ranks that ``rank`` exchanges data with directly.

        Invariants (property-tested): never contains ``rank`` itself, every
        member is in ``[0, n_workers)``, and peer links are symmetric
        (``a in neighbors(b)`` iff ``b in neighbors(a)``).
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not 0 <= rank < n_workers:
            raise ValueError(f"rank must be in [0, {n_workers}), got {rank}")
        return self._neighbors(rank, n_workers)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        raise NotImplementedError


@TOPOLOGIES.register("ps")
class PSTopology(Topology):
    """Central parameter server (the paper's deployment)."""

    name = "ps"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return ps_sync_time(nbytes, n_workers, net)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        # All traffic goes through the PS node, which is not a worker rank:
        # workers never talk to each other directly.
        return frozenset()

    def schedule_edges(
        self, ranks: Sequence[int], ps_rank: int
    ) -> Tuple[Tuple[int, int], ...]:
        # Every participant talks to the PS pseudo-rank only. The per-worker
        # uplink retries are simulated in the trainer's upload path (where a
        # terminally lost push can drop that one worker); the edges here
        # exist so healed_sync_time has a uniform shape, not for retry
        # simulation — see SimGroup._resilient_sync.
        return tuple((r, ps_rank) for r in ranks)


@TOPOLOGIES.register("ring")
class RingTopology(Topology):
    """Bandwidth-optimal ring allreduce."""

    name = "ring"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return ring_allreduce_time(nbytes, n_workers, net)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        # Predecessor and successor on the ring; a 1- or 2-worker ring
        # collapses (no self-loops, and the two-ring's peers coincide).
        return frozenset(
            p for p in ((rank - 1) % n_workers, (rank + 1) % n_workers)
            if p != rank
        )

    def schedule_edges(
        self, ranks: Sequence[int], ps_rank: int
    ) -> Tuple[Tuple[int, int], ...]:
        # The ring over the participating ranks in id order (wrap-around
        # closes it); a sub-ring over survivors skips missing members.
        ids = sorted(ranks)
        if len(ids) < 2:
            return ()
        edges = [
            (ids[i], ids[i + 1]) for i in range(len(ids) - 1)
        ]
        if len(ids) > 2:
            edges.append((ids[0], ids[-1]))
        return tuple(edges)

    def healed_sync_time(
        self,
        nbytes: float,
        ranks: Sequence[int],
        n_total: int,
        net: NetworkModel,
        faults: LinkFaultModel,
        step: int,
    ) -> HealedSync:
        k = len(ranks)
        edges = self.schedule_edges(ranks, faults.ps_rank)
        dead = [e for e in edges if faults.link_down(e[0], e[1], step)]
        live = tuple(e for e in edges if e not in set(dead))
        if not dead:
            mode = "rerouted" if k < n_total else "normal"
            detail = (
                f"ring re-formed over {k}/{n_total} ranks" if k < n_total else ""
            )
            return HealedSync(
                seconds=self.sync_time(nbytes, k, net),
                mode=mode, detail=detail, edges=edges,
            )
        if len(dead) == 1:
            a, b = dead[0]
            return HealedSync(
                seconds=chain_allreduce_time(nbytes, k, net),
                mode="rerouted",
                detail=f"ring rerouted around dead link ({a},{b}) as open chain",
                edges=live,
                n_dead=1,
            )
        # Two or more dead ring links disconnect the chain: degrade to PS
        # push–pull over the PS pseudo-rank links (the PS sits with the
        # majority, so survivors can always reach it).
        return HealedSync(
            seconds=ps_sync_time(nbytes, k, net),
            mode="ps_fallback",
            detail=(
                f"ring disconnected ({len(dead)} dead links); "
                f"degraded to PS push-pull"
            ),
            edges=tuple((r, faults.ps_rank) for r in ranks),
            n_dead=len(dead),
        )


@TOPOLOGIES.register("tree")
class TreeTopology(Topology):
    """Logarithmic binary-tree reduce + broadcast."""

    name = "tree"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return tree_allreduce_time(nbytes, n_workers, net)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        # Binary-heap layout: parent (rank-1)//2, children 2r+1 / 2r+2.
        # n_workers ranks form a connected tree with n_workers - 1 edges.
        peers = []
        if rank > 0:
            peers.append((rank - 1) // 2)
        for child in (2 * rank + 1, 2 * rank + 2):
            if child < n_workers:
                peers.append(child)
        return frozenset(peers)

    def schedule_edges(
        self, ranks: Sequence[int], ps_rank: int
    ) -> Tuple[Tuple[int, int], ...]:
        # Binary-heap tree over the participating ranks in id order: the
        # i-th smallest id parents the (2i+1)-th and (2i+2)-th, so a
        # survivor subset still forms a connected tree.
        ids = sorted(ranks)
        k = len(ids)
        return tuple(
            (min(ids[(i - 1) // 2], ids[i]), max(ids[(i - 1) // 2], ids[i]))
            for i in range(1, k)
        )

    def healed_sync_time(
        self,
        nbytes: float,
        ranks: Sequence[int],
        n_total: int,
        net: NetworkModel,
        faults: LinkFaultModel,
        step: int,
    ) -> HealedSync:
        k = len(ranks)
        edges = self.schedule_edges(ranks, faults.ps_rank)
        dead = [e for e in edges if faults.link_down(e[0], e[1], step)]
        live = tuple(e for e in edges if e not in set(dead))
        if not dead:
            mode = "rerouted" if k < n_total else "normal"
            detail = (
                f"tree re-formed over {k}/{n_total} ranks" if k < n_total else ""
            )
            return HealedSync(
                seconds=self.sync_time(nbytes, k, net),
                mode=mode, detail=detail, edges=edges,
            )
        # Each dead parent link orphans a subtree; it re-parents one level
        # up, costing an extra full-payload hop per sweep direction.
        return HealedSync(
            seconds=tree_reparent_time(nbytes, k, net, len(dead)),
            mode="reparent",
            detail=(
                f"tree re-parented {len(dead)} orphaned subtree(s) around "
                f"dead link(s) {sorted(dead)}"
            ),
            edges=live,
            n_dead=len(dead),
        )


def build_topology(name: str) -> Topology:
    return TOPOLOGIES.create(name)
