"""Synchronization topologies.

Alg. 1's ``pushToPS``/``pullFromPS`` can be swapped for decentralized
collectives (paper §III, last paragraph); a :class:`Topology` encapsulates
the cost formula for one full model synchronization so trainers are agnostic
to it.
"""

from __future__ import annotations

from repro.comm.costmodel import (
    ps_sync_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from repro.comm.network import NetworkModel
from repro.utils.registry import Registry

TOPOLOGIES: Registry = Registry("topology")


class Topology:
    """Cost interface for one full-model synchronization round."""

    name = "abstract"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        raise NotImplementedError

    def neighbors(self, rank: int, n_workers: int) -> frozenset:
        """Worker ranks that ``rank`` exchanges data with directly.

        Invariants (property-tested): never contains ``rank`` itself, every
        member is in ``[0, n_workers)``, and peer links are symmetric
        (``a in neighbors(b)`` iff ``b in neighbors(a)``).
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not 0 <= rank < n_workers:
            raise ValueError(f"rank must be in [0, {n_workers}), got {rank}")
        return self._neighbors(rank, n_workers)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        raise NotImplementedError


@TOPOLOGIES.register("ps")
class PSTopology(Topology):
    """Central parameter server (the paper's deployment)."""

    name = "ps"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return ps_sync_time(nbytes, n_workers, net)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        # All traffic goes through the PS node, which is not a worker rank:
        # workers never talk to each other directly.
        return frozenset()


@TOPOLOGIES.register("ring")
class RingTopology(Topology):
    """Bandwidth-optimal ring allreduce."""

    name = "ring"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return ring_allreduce_time(nbytes, n_workers, net)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        # Predecessor and successor on the ring; a 1- or 2-worker ring
        # collapses (no self-loops, and the two-ring's peers coincide).
        return frozenset(
            p for p in ((rank - 1) % n_workers, (rank + 1) % n_workers)
            if p != rank
        )


@TOPOLOGIES.register("tree")
class TreeTopology(Topology):
    """Logarithmic binary-tree reduce + broadcast."""

    name = "tree"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return tree_allreduce_time(nbytes, n_workers, net)

    def _neighbors(self, rank: int, n_workers: int) -> frozenset:
        # Binary-heap layout: parent (rank-1)//2, children 2r+1 / 2r+2.
        # n_workers ranks form a connected tree with n_workers - 1 edges.
        peers = []
        if rank > 0:
            peers.append((rank - 1) // 2)
        for child in (2 * rank + 1, 2 * rank + 2):
            if child < n_workers:
                peers.append(child)
        return frozenset(peers)


def build_topology(name: str) -> Topology:
    return TOPOLOGIES.create(name)
