"""Synchronization topologies.

Alg. 1's ``pushToPS``/``pullFromPS`` can be swapped for decentralized
collectives (paper §III, last paragraph); a :class:`Topology` encapsulates
the cost formula for one full model synchronization so trainers are agnostic
to it.
"""

from __future__ import annotations

from repro.comm.costmodel import (
    ps_sync_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from repro.comm.network import NetworkModel
from repro.utils.registry import Registry

TOPOLOGIES: Registry = Registry("topology")


class Topology:
    """Cost interface for one full-model synchronization round."""

    name = "abstract"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        raise NotImplementedError


@TOPOLOGIES.register("ps")
class PSTopology(Topology):
    """Central parameter server (the paper's deployment)."""

    name = "ps"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return ps_sync_time(nbytes, n_workers, net)


@TOPOLOGIES.register("ring")
class RingTopology(Topology):
    """Bandwidth-optimal ring allreduce."""

    name = "ring"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return ring_allreduce_time(nbytes, n_workers, net)


@TOPOLOGIES.register("tree")
class TreeTopology(Topology):
    """Logarithmic binary-tree reduce + broadcast."""

    name = "tree"

    def sync_time(self, nbytes: float, n_workers: int, net: NetworkModel) -> float:
        return tree_allreduce_time(nbytes, n_workers, net)


def build_topology(name: str) -> Topology:
    return TOPOLOGIES.create(name)
