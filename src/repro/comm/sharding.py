"""Parameter-space sharding for the parameter server.

DS-Sync (arXiv:2007.03298) divides synchronization into independent groups
served concurrently; sharded parameter servers (each shard server owning a
contiguous slice of the model) are the classic realization. A
:class:`ShardSpec` partitions the flat parameter/gradient arena into ``S``
contiguous, **layer-aligned** shards: every shard boundary coincides with a
parameter-tensor boundary, so a shard is always a whole number of tensors
and per-layer machinery (scheduling, compression) composes with it.

The spec is pure geometry — which flat indices belong to which shard — and
is shared by every consumer:

* :class:`~repro.cluster.server.ShardedParameterServer` aggregates each
  shard independently (robust aggregators operate shard-locally),
* :class:`~repro.comm.collectives.SimGroup` charges a sharded sync round as
  the **max over shards served in parallel** plus a per-shard coordination
  latency (see :func:`~repro.comm.costmodel.sharded_ps_sync_time`),
* the trainer's upload path pushes one enveloped message per shard, so a
  lost uplink degrades *one shard's* round instead of the whole sync.

``ShardSpec.from_layers(sizes, 1)`` yields the single-shard spec; callers
treat ``ps_shards == 1`` as "no sharding" and never construct a spec at
all, keeping default runs byte-identical to builds without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ShardSpec"]


@dataclass(frozen=True)
class ShardSpec:
    """Contiguous partition of ``[0, n_params)`` into layer-aligned shards.

    ``bounds`` has ``n_shards + 1`` strictly increasing entries with
    ``bounds[0] == 0`` and ``bounds[-1] == n_params``; shard ``s`` owns the
    flat slice ``[bounds[s], bounds[s+1])``. Immutable and hashable, so a
    spec can key caches and travel through checkpoints as a plain list.
    """

    n_params: int
    bounds: Tuple[int, ...]

    def __post_init__(self):
        if self.n_params < 1:
            raise ValueError(f"n_params must be >= 1, got {self.n_params}")
        b = self.bounds
        if len(b) < 2:
            raise ValueError(f"need at least 2 bounds, got {b!r}")
        if b[0] != 0 or b[-1] != self.n_params:
            raise ValueError(
                f"bounds must run 0..{self.n_params}, got {b[0]}..{b[-1]}"
            )
        for lo, hi in zip(b, b[1:]):
            if hi <= lo:
                raise ValueError(
                    f"bounds must be strictly increasing, got {b!r}"
                )

    # -- construction ------------------------------------------------------
    @classmethod
    def from_layers(
        cls, layer_sizes: Sequence[int], n_shards: int
    ) -> "ShardSpec":
        """Balanced contiguous partition aligned to layer boundaries.

        Walks the tensors in registration order and closes a shard once it
        holds at least its proportional share of the *remaining* parameters
        (while leaving at least one tensor per remaining shard), which is
        the standard linear-partition greedy. The effective shard count is
        ``min(n_shards, len(layer_sizes))`` — a shard can never be smaller
        than one tensor, so over-asking degrades gracefully instead of
        erroring.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        sizes = [int(s) for s in layer_sizes]
        if not sizes:
            raise ValueError("layer_sizes must be non-empty")
        if any(s < 1 for s in sizes):
            raise ValueError(f"layer sizes must be >= 1, got {sizes}")
        total = sum(sizes)
        s_eff = min(n_shards, len(sizes))
        bounds: List[int] = [0]
        offset = 0
        layer_idx = 0
        remaining = total
        for shard in range(s_eff):
            shards_left = s_eff - shard
            layers_left = len(sizes) - layer_idx
            target = remaining / shards_left
            acc = 0
            # Take at least one tensor; keep taking while under target and
            # enough tensors remain for the shards after this one.
            while layer_idx < len(sizes):
                layers_left = len(sizes) - layer_idx
                if acc and layers_left <= shards_left - 1:
                    break
                nxt = sizes[layer_idx]
                # Close the shard if adding the next tensor overshoots the
                # target by more than stopping short undershoots it.
                if acc and acc + nxt - target > target - acc:
                    break
                acc += nxt
                layer_idx += 1
            offset += acc
            remaining -= acc
            bounds.append(offset)
        return cls(n_params=total, bounds=tuple(bounds))

    @classmethod
    def single(cls, n_params: int) -> "ShardSpec":
        """The trivial one-shard spec over ``n_params`` entries."""
        return cls(n_params=int(n_params), bounds=(0, int(n_params)))

    # -- geometry ----------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Parameter count per shard."""
        return tuple(
            hi - lo for lo, hi in zip(self.bounds, self.bounds[1:])
        )

    @property
    def fractions(self) -> Tuple[float, ...]:
        """Each shard's fraction of the full parameter count — the scale
        factor applied to ``comm_bytes`` to get per-shard payloads."""
        return tuple(s / self.n_params for s in self.sizes)

    def slices(self) -> Tuple[slice, ...]:
        """Flat-vector slice per shard, in shard order."""
        return tuple(
            slice(lo, hi) for lo, hi in zip(self.bounds, self.bounds[1:])
        )

    def shard_of(self, index: int) -> int:
        """Shard owning flat index ``index``."""
        if not 0 <= index < self.n_params:
            raise ValueError(
                f"index must be in [0, {self.n_params}), got {index}"
            )
        import bisect

        return bisect.bisect_right(self.bounds, index) - 1

    def payloads(self, total_nbytes: float) -> Tuple[float, ...]:
        """Per-shard byte payloads for a ``total_nbytes`` full-model sync.

        Proportional split; experiments override ``comm_bytes`` with the
        paper-scale model size, so shard payloads scale with it rather
        than the in-memory analog.
        """
        if total_nbytes < 0:
            raise ValueError(f"total_nbytes must be >= 0, got {total_nbytes}")
        return tuple(f * float(total_nbytes) for f in self.fractions)

    def int_payloads(self, total_nbytes: float) -> Tuple[int, ...]:
        """Exact integer byte split: sums to ``int(total_nbytes)``.

        Largest-remainder apportionment over the shard fractions, with
        deterministic tie-breaking by shard index — so the sharded byte
        ledger (sum over shards × contributors) reconciles exactly with the
        unsharded ``int(payload) × ranks`` accounting when no shard round
        is degraded.
        """
        total = int(total_nbytes)
        if total < 0:
            raise ValueError(f"total_nbytes must be >= 0, got {total_nbytes}")
        exact = [f * total for f in self.fractions]
        floors = [int(x) for x in exact]
        short = total - sum(floors)
        order = sorted(
            range(self.n_shards), key=lambda s: (floors[s] - exact[s], s)
        )
        for s in order[:short]:
            floors[s] += 1
        return tuple(floors)

    # -- canonical string form --------------------------------------------
    def to_spec(self) -> str:
        """Canonical string form, e.g. ``"0,216,1976,27244"``.

        Round-trips through :meth:`parse` exactly (property-tested), so a
        spec can live in a checkpoint, a CLI flag, or a trace header.
        """
        return ",".join(str(b) for b in self.bounds)

    @classmethod
    def parse(cls, spec: str) -> "ShardSpec":
        """Inverse of :meth:`to_spec`."""
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        if len(parts) < 2:
            raise ValueError(
                f"shard spec needs at least 2 bounds, got {spec!r}"
            )
        try:
            bounds = tuple(int(p) for p in parts)
        except ValueError as e:
            raise ValueError(f"bad shard spec {spec!r}: {e}") from None
        return cls(n_params=bounds[-1], bounds=bounds)

    def aligned_to(self, layer_sizes: Sequence[int]) -> bool:
        """True when every shard boundary is a tensor boundary of
        ``layer_sizes`` (the layer-alignment invariant)."""
        cuts = {0}
        off = 0
        for s in layer_sizes:
            off += int(s)
            cuts.add(off)
        return all(b in cuts for b in self.bounds)
