"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Train one method on one workload and print the summary (optionally
    persisting the run log as JSONL).
``compare``
    Run several methods on the same workload and print a comparison table.
``workloads`` / ``methods``
    List the available registries.
``table1``
    Regenerate the paper's Table I at a configurable scale.
``fig``
    Run one figure generator at a quick scale and print its data.

Examples::

    python -m repro run --workload resnet_cifar10 --method selsync --delta 0.3
    python -m repro compare --workload vgg_cifar100 --methods bsp,selsync,fedavg
    python -m repro table1 --workloads resnet_cifar10 --steps 100
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.reporting import render_table, render_table1
from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import WORKLOADS, get_workload
from repro.utils.serialization import save_runlog


def _method_spec(args) -> MethodSpec:
    params = {}
    if args.method == "selsync":
        params["delta"] = args.delta
        params["aggregation"] = args.aggregation
    elif args.method == "fedavg":
        params["c_fraction"] = args.c_fraction
        params["e_factor"] = args.e_factor
    elif args.method == "ssp":
        params["staleness"] = args.staleness
    elif args.method == "easgd":
        params["rho"] = args.rho
        params["tau"] = args.tau
    return MethodSpec(args.method, params)


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="resnet_cifar10", choices=list(WORKLOADS))
    p.add_argument("--n-workers", type=int, default=4)
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--eval-every", type=int, default=50)
    p.add_argument(
        "--partition", default=None, choices=[None, "seldp", "defdp", "noniid"],
        help="default: seldp for selsync, defdp otherwise",
    )
    p.add_argument("--labels-per-worker", type=int, default=1)
    p.add_argument("--data-scale", type=float, default=0.3)
    p.add_argument("--batch-size", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--executor",
        default=os.environ.get("REPRO_EXECUTOR", "serial"),
        choices=["serial", "threaded", "process"],
        help="backend for the per-worker gradient phase (results are "
        "byte-identical; process scales with cores via shared-memory "
        "arenas; default honours $REPRO_EXECUTOR)",
    )
    p.add_argument(
        "--executor-threads", type=int, default=None,
        help="thread-pool width for --executor threaded (default: n_workers)",
    )
    p.add_argument(
        "--procs", type=int, default=None,
        help="process-pool width for --executor process "
        "(default: min(n_workers, cpu_count))",
    )
    p.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="inject faults, e.g. 'crash:w2@50-120,straggle:w0x4@30+,drop:p=0.05' "
        "(see repro.cluster.faults)",
    )
    p.add_argument(
        "--topology", default="ps", choices=["ps", "ring", "tree"],
        help="collective topology the cost model charges (ps is the "
        "paper's testbed)",
    )
    p.add_argument(
        "--ps-shards", type=int,
        default=int(os.environ.get("REPRO_PS_SHARDS", "1")), metavar="S",
        help="partition the parameter server into S layer-aligned shards "
        "served in parallel (requires --topology ps; 1 keeps the run "
        "byte-identical to an unsharded build; default honours "
        "$REPRO_PS_SHARDS)",
    )
    p.add_argument(
        "--net-faults", default=None, metavar="SPEC",
        help="inject link-level network faults, e.g. "
        "'partition:{w0,w1|w2..w7}@100-200,loss:p=0.02,"
        "flap:link(2,5)x3@50+' (see repro.cluster.faults); empty/unset "
        "keeps the run byte-identical to a fault-free build",
    )
    p.add_argument(
        "--retry-max", type=int, default=4, metavar="N",
        help="max retransmits per enveloped message before "
        "CollectiveTimeoutError / degraded round (with --net-faults)",
    )
    p.add_argument(
        "--retry-base-ms", type=float, default=25.0, metavar="MS",
        help="base backoff before the first retransmit; doubles per "
        "attempt up to the cap (with --net-faults)",
    )
    p.add_argument(
        "--min-quorum", type=int, default=None,
        help="min workers per aggregation round before QuorumLostError "
        "(default: all workers; 1 with --health)",
    )
    p.add_argument(
        "--aggregator", default="mean",
        choices=["mean", "median", "trimmed_mean", "norm_clip", "krum", "multi_krum"],
        help="aggregation strategy for synchronous rounds (mean is the "
        "paper's protocol and the byte-identical default; the rest are "
        "Byzantine-robust — see repro.core.robust)",
    )
    p.add_argument(
        "--trim-f", type=int, default=1, metavar="F",
        help="trim/Byzantine count f for trimmed_mean/krum/multi_krum",
    )
    p.add_argument(
        "--clip-factor", type=float, default=3.0,
        help="norm cap multiplier for --aggregator norm_clip",
    )
    p.add_argument(
        "--health", action="store_true",
        help="enable per-worker health tracking and quarantine "
        "(see repro.cluster.health)",
    )
    p.add_argument(
        "--health-threshold", type=float, default=3.0,
        help="EWMA outlier score above which a worker is quarantined",
    )
    p.add_argument(
        "--probation", type=int, default=20, metavar="STEPS",
        help="steps a quarantined worker sits out before reinstatement",
    )
    p.add_argument(
        "--elastic", default=None, metavar="SPEC",
        help="elastic membership plan, e.g. "
        "'join:+2@100,drain:w3@50,scale:4..12' (see "
        "repro.cluster.elastic); 'off'/empty/unset keeps the run "
        "byte-identical to a fixed-membership build",
    )
    p.add_argument(
        "--scale-policy", default="none",
        choices=["none", "goodput", "comm"],
        help="metrics-driven autoscale policy over the live goodput/"
        "sync-ratio/comm-fraction signals; any value other than 'none' "
        "enables the elastic subsystem",
    )
    p.add_argument(
        "--min-workers", type=int, default=None, metavar="N",
        help="autoscaler world-size floor (overrides the plan's "
        "scale:MIN..MAX clause)",
    )
    p.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="autoscaler world-size ceiling (overrides the plan's "
        "scale:MIN..MAX clause)",
    )
    p.add_argument(
        "--max-recoveries", type=int, default=None, metavar="N",
        help="wrap the run in a RecoverySupervisor: roll back to the "
        "latest checkpoint and retry up to N times on quorum loss "
        "or divergence",
    )
    p.add_argument(
        "--divergence-threshold", type=float, default=None,
        help="replica-spread level the supervisor's watchdog treats as "
        "divergence (requires --max-recoveries)",
    )


def _add_method_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--method", default="selsync",
        choices=["bsp", "selsync", "fedavg", "ssp", "localsgd", "easgd"],
    )
    p.add_argument("--delta", type=float, default=0.3, help="selsync threshold")
    p.add_argument("--aggregation", default="params", choices=["params", "grads"])
    p.add_argument("--c-fraction", type=float, default=1.0, help="fedavg C")
    p.add_argument("--e-factor", type=float, default=0.25, help="fedavg E")
    p.add_argument("--staleness", type=int, default=100, help="ssp s")
    p.add_argument("--rho", type=float, default=0.1, help="easgd elasticity")
    p.add_argument("--tau", type=int, default=4, help="easgd period")


def _build(args, spec: MethodSpec):
    scheme = args.partition or ("seldp" if spec.kind == "selsync" else "defdp")
    return get_workload(args.workload).build(
        n_workers=args.n_workers,
        n_steps=args.steps,
        partition_scheme=scheme,
        labels_per_worker=args.labels_per_worker,
        data_scale=args.data_scale,
        batch_size=args.batch_size,
        seed=args.seed,
        cluster_kwargs={
            "executor": args.executor,
            "executor_threads": args.executor_threads,
            "executor_procs": getattr(args, "procs", None),
            "fault_spec": getattr(args, "fault_spec", None),
            "topology": getattr(args, "topology", "ps"),
            "ps_shards": getattr(args, "ps_shards", 1),
            # argparse hyphens become underscores; '' means "no net faults"
            # and must behave exactly like unset (byte-identity contract).
            "net_fault_spec": getattr(args, "net_faults", None) or None,
            "retry_max": getattr(args, "retry_max", 4),
            "retry_base_ms": getattr(args, "retry_base_ms", 25.0),
            "min_quorum": getattr(args, "min_quorum", None),
            "aggregator": getattr(args, "aggregator", "mean"),
            "trim_f": getattr(args, "trim_f", 1),
            "clip_factor": getattr(args, "clip_factor", 3.0),
            "health": getattr(args, "health", False),
            "health_threshold": getattr(args, "health_threshold", 3.0),
            "probation": getattr(args, "probation", 20),
            # ''/'off' mean "no elastic membership" and must behave exactly
            # like unset (byte-identity contract; parse maps them to the
            # empty plan, but None keeps even the config field identical).
            "elastic_spec": getattr(args, "elastic", None) or None,
            "scale_policy": getattr(args, "scale_policy", "none"),
            "min_workers": getattr(args, "min_workers", None),
            "max_workers": getattr(args, "max_workers", None),
        },
    )


def cmd_run(args) -> int:
    spec = _method_spec(args)
    built = _build(args, spec)
    tracer = None
    if args.trace or args.trace_path or args.metrics_summary:
        from repro.obs import Tracer

        tracer = Tracer(path=args.trace_path, name=spec.kind)
    supervisor = None
    if args.max_recoveries is not None:
        from repro.core.recovery import RecoverySupervisor

        supervisor = RecoverySupervisor(
            max_recoveries=args.max_recoveries,
            divergence_threshold=args.divergence_threshold,
        )
    elif args.divergence_threshold is not None:
        print("--divergence-threshold requires --max-recoveries")
        return 2
    res = run_method(
        spec, built, n_steps=args.steps, eval_every=args.eval_every,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
        resume_from=args.resume,
        stop_after=args.stop_after,
        tracer=tracer,
        supervisor=supervisor,
    )
    rows = [
        ["method", spec.display],
        ["workload", args.workload],
        ["iterations", res.steps],
        ["best_metric", res.best_metric],
        ["final_metric", res.final_metric],
        ["lssr", res.lssr],
        ["sim_time_s", round(res.sim_time, 2)],
    ]
    if res.log.faults:
        rows.append(["n_faults", res.log.n_faults])
    if supervisor is not None:
        rows.append(["n_recoveries", len(supervisor.recoveries)])
    print(render_table(["field", "value"], rows))
    if tracer is not None:
        tracer.close()
        from repro.experiments.reporting import render_run_dashboard

        print(render_run_dashboard(tracer))
        if args.trace_path:
            print(f"trace written to {args.trace_path}")
        if args.metrics_summary:
            import json

            from repro.utils.serialization import encode_jsonable

            with open(args.metrics_summary, "w") as f:
                json.dump(
                    encode_jsonable(tracer.metrics.summary()),
                    f, indent=2, sort_keys=True,
                )
            print(f"metrics summary written to {args.metrics_summary}")
    if args.save_log:
        save_runlog(res.log, args.save_log)
        print(f"run log written to {args.save_log}")
    return 0


def cmd_compare(args) -> int:
    rows = []
    for name in args.methods.split(","):
        name = name.strip()
        ns = argparse.Namespace(**vars(args))
        ns.method = name
        spec = _method_spec(ns)
        built = _build(args, spec)
        res = run_method(
            spec, built, n_steps=args.steps, eval_every=args.eval_every
        )
        rows.append(
            [
                spec.display,
                res.best_metric,
                res.lssr,
                round(res.sim_time, 2),
                round(res.log.total_comm_time, 2),
            ]
        )
    print(
        render_table(
            ["method", "best_metric", "lssr", "sim_time_s", "comm_time_s"],
            rows,
            title=f"{args.workload} — {args.n_workers} workers, {args.steps} steps",
        )
    )
    return 0


def cmd_workloads(_args) -> int:
    for name in WORKLOADS:
        w = get_workload(name)
        print(
            f"{name}: {w.model_name} on {w.dataset_name} "
            f"(b={w.batch_size}, metric={w.metric})"
        )
    return 0


def cmd_methods(_args) -> int:
    from repro.experiments.runner import _TRAINERS

    for name, cls in sorted(_TRAINERS.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name}: {doc}")
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.table1 import DEFAULT_METHODS, run_table1

    workloads = tuple(args.workloads.split(","))
    rows = run_table1(
        workloads=workloads,
        methods=tuple(DEFAULT_METHODS),
        n_workers=args.n_workers,
        n_steps=args.steps,
        eval_every=args.eval_every,
        data_scale=args.data_scale,
        seed=args.seed,
    )
    print(render_table1(rows))
    return 0


#: quick-scale runners for the `fig` subcommand (name → zero-arg callable).
def _fig_runners():
    from repro.experiments import figures as F

    return {
        "fig1a": lambda: F.fig1a_relative_throughput(),
        "fig2": lambda: F.fig2_batchsize_scaling(batch_sizes=(16, 64, 256)),
        "fig4": lambda: F.fig4_hessian_vs_gradient(n_steps=40),
        "fig6": lambda: F.fig6_delta_dial(
            deltas=(0.0, 0.1, 1e9), n_workers=2, n_steps=60, data_scale=0.15
        ),
        "fig8a": lambda: F.fig8a_tracker_overhead(n_updates=100),
        "fig8b": lambda: F.fig8b_partition_overhead(repeats=1),
    }


def cmd_fig(args) -> int:
    runners = _fig_runners()
    if args.name not in runners:
        print(f"unknown figure {args.name!r}; choices: {sorted(runners)}")
        return 2
    result = runners[args.name]()
    import pprint

    pprint.pprint(result)
    return 0


def cmd_results(args) -> int:
    """Collate benchmarks/results/*.txt into one report."""
    from pathlib import Path

    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}; run the benchmarks first")
        return 1
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"no result files in {results_dir}")
        return 1
    blocks = []
    for f in files:
        blocks.append(f"## {f.stem}\n\n```\n{f.read_text().rstrip()}\n```")
    report = "# SelSync reproduction — collected benchmark results\n\n" + "\n\n".join(blocks) + "\n"
    out_path = Path(args.output)
    out_path.write_text(report)
    print(f"wrote {out_path} ({len(files)} result blocks)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SelSync reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="train one method on one workload")
    _add_workload_args(p_run)
    _add_method_args(p_run)
    p_run.add_argument("--save-log", default=None, help="write run log JSONL here")
    p_run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="snapshot full trainer state every K steps (requires "
        "--checkpoint-path)",
    )
    p_run.add_argument(
        "--checkpoint-path", default=None, metavar="FILE",
        help="checkpoint file, atomically overwritten at each snapshot",
    )
    p_run.add_argument(
        "--resume", default=None, metavar="FILE",
        help="resume from a checkpoint; continuation is bitwise-identical "
        "to an uninterrupted run",
    )
    p_run.add_argument(
        "--stop-after", type=int, default=None, metavar="K",
        help="simulate a crash: abort right after step K (keep all other "
        "flags identical to the full run, then --resume the checkpoint)",
    )
    p_run.add_argument(
        "--trace", action="store_true",
        help="record a structured event trace and print the run dashboard "
        "(traces are deterministic: byte-identical across executors)",
    )
    p_run.add_argument(
        "--trace-path", default=None, metavar="FILE",
        help="write the event trace as JSONL here (implies --trace)",
    )
    p_run.add_argument(
        "--metrics-summary", default=None, metavar="FILE",
        help="write the metrics registry summary as JSON here (implies --trace)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare methods on a workload")
    _add_workload_args(p_cmp)
    _add_method_args(p_cmp)
    p_cmp.add_argument(
        "--methods", default="bsp,selsync", help="comma-separated method names"
    )
    p_cmp.set_defaults(fn=cmd_compare)

    p_wl = sub.add_parser("workloads", help="list available workloads")
    p_wl.set_defaults(fn=cmd_workloads)

    p_m = sub.add_parser("methods", help="list available trainers")
    p_m.set_defaults(fn=cmd_methods)

    p_t1 = sub.add_parser("table1", help="regenerate Table I")
    p_t1.add_argument("--workloads", default="resnet_cifar10")
    p_t1.add_argument("--n-workers", type=int, default=4)
    p_t1.add_argument("--steps", type=int, default=150)
    p_t1.add_argument("--eval-every", type=int, default=30)
    p_t1.add_argument("--data-scale", type=float, default=0.25)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.set_defaults(fn=cmd_table1)

    p_fig = sub.add_parser("fig", help="run a figure generator (quick scale)")
    p_fig.add_argument("name", help="e.g. fig1a, fig2, fig4, fig6, fig8a, fig8b")
    p_fig.set_defaults(fn=cmd_fig)

    p_res = sub.add_parser(
        "results", help="collate benchmarks/results/*.txt into one markdown report"
    )
    p_res.add_argument("--results-dir", default="benchmarks/results")
    p_res.add_argument("--output", default="RESULTS.md")
    p_res.set_defaults(fn=cmd_results)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
