"""Simulated training cluster: workers, parameter server, time models."""

from repro.cluster.compute import ComputeModel
from repro.cluster.elastic import (
    ElasticContext,
    ElasticController,
    ElasticPlan,
    canonical_elastic_spec,
    parse_elastic_spec,
)
from repro.cluster.memory import MemoryModel, measure_activation_bytes
from repro.cluster.worker import SimWorker
from repro.cluster.server import ParameterServer
from repro.cluster.simclock import Event, EventQueue

__all__ = [
    "ComputeModel",
    "ElasticContext",
    "ElasticController",
    "ElasticPlan",
    "canonical_elastic_spec",
    "parse_elastic_spec",
    "MemoryModel",
    "measure_activation_bytes",
    "SimWorker",
    "ParameterServer",
    "Event",
    "EventQueue",
]
