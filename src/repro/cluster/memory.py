"""Worker memory-footprint accounting (Fig. 2b).

Activation memory is *measured*, not modelled: after a forward pass every
layer holds the arrays its backward needs (inputs, im2col patches, masks),
so walking the module tree and summing cached ``ndarray`` attributes gives
the true activation footprint of this substrate at a given batch size.
Parameter/gradient/optimizer-slot memory is exact arithmetic on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module


def measure_activation_bytes(model: Module) -> int:
    """Sum the bytes of every cached array in the module tree.

    Call immediately after a training-mode forward pass; the result is the
    memory backward would touch.
    """
    total = 0
    for m in model.modules():
        for name, value in vars(m).items():
            if name in ("_params", "_children"):
                continue
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, tuple):
                total += sum(v.nbytes for v in value if isinstance(v, np.ndarray))
    return int(total)


@dataclass
class MemoryModel:
    """Total worker memory for a model/batch combination.

    ``optimizer_slots`` is the number of parameter-sized state buffers the
    optimizer keeps (SGD+momentum: 1; Adam: 2).
    """

    optimizer_slots: int = 1

    def footprint_bytes(self, model: Module, activation_bytes: int) -> int:
        if activation_bytes < 0:
            raise ValueError(f"activation_bytes must be >= 0, got {activation_bytes}")
        param_bytes = model.nbytes
        grad_bytes = model.nbytes
        opt_bytes = self.optimizer_slots * model.nbytes
        return int(param_bytes + grad_bytes + opt_bytes + activation_bytes)

    def measure(self, model: Module, x: np.ndarray) -> int:
        """Run a training forward on ``x`` and return the total footprint."""
        model.train()
        model.forward(x)
        return self.footprint_bytes(model, measure_activation_bytes(model))
