"""Simulated training worker (one model replica)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.data.loader import BatchLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.base import Optimizer


def record_batch_observations(tr, loss: float, grad_sqnorm: float) -> None:
    """Metrics one consumed mini-batch contributes to an installed tracer.

    Factored out so every executor backend reports identically: the
    serial/threaded backends reach it through ``compute_gradient`` on the
    thread that ran the math, while the process backend's parent replays it
    from the child's result (children run with tracing uninstalled).
    Histogram summaries sort their samples, so the interleaving of
    concurrent workers cannot leak in — as long as no NaN enters the sort,
    hence the finite guards.
    """
    tr.metrics.inc("worker.batches")
    if np.isfinite(loss):
        tr.metrics.observe("worker.loss", float(loss))
    if np.isfinite(grad_sqnorm):
        tr.metrics.observe("worker.grad_sqnorm", float(grad_sqnorm))


class SimWorker:
    """One simulated rank: a model replica, its optimizer and its data view.

    Trainers orchestrate workers; a worker only knows how to produce a
    gradient from its next mini-batch and apply an optimizer step. Workers in
    one group always start from byte-identical parameters (the cluster
    builder seeds every replica with the same RNG), matching BSP's
    pull-initial-state-from-PS contract.
    """

    def __init__(
        self,
        worker_id: int,
        model: Module,
        optimizer: Optimizer,
        loader: BatchLoader,
        loss_factory: Callable[[], CrossEntropyLoss] = CrossEntropyLoss,
    ):
        self.worker_id = worker_id
        self.model = model
        self.optimizer = optimizer
        self.loader = loader
        self.loss_factory = loss_factory
        self.last_loss: float = float("nan")
        self.last_grad_sqnorm: float = float("nan")
        self._prefetched: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- gradient computation ------------------------------------------------
    def draw_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pull the next mini-batch now; the following ``compute_gradient()``
        consumes it.

        Executors call this on the coordinating thread, in worker order,
        before fanning the math out — loader RNG streams then advance
        identically under every backend. Drawing twice without a consuming
        ``compute_gradient`` is always a bug (a batch would be silently
        skipped), so it raises.
        """
        if self._prefetched is not None:
            raise RuntimeError(
                f"worker {self.worker_id}: draw_batch() called with a "
                "prefetched batch still pending; the previous batch was "
                "never consumed by compute_gradient()"
            )
        self._prefetched = self.loader.next_batch()
        return self._prefetched

    def take_prefetched(self) -> Tuple[np.ndarray, np.ndarray]:
        """Hand over the pending prefetched batch, clearing the guard.

        The process executor consumes batches here: the draw happened on the
        coordinating process (keeping the loader authoritative there), while
        the forward/backward that would normally consume ``_prefetched``
        runs in a child process on a staged copy.
        """
        if self._prefetched is None:
            raise RuntimeError(
                f"worker {self.worker_id}: take_prefetched() without a "
                "pending draw_batch()"
            )
        batch, self._prefetched = self._prefetched, None
        return batch

    def compute_gradient(
        self, batch: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> float:
        """Forward/backward on the next (or a given) mini-batch.

        Leaves the gradient accumulated in the model and returns the loss.
        Also records the squared L2 gradient norm, which the SelSync tracker
        consumes (Eqn. 2 works on ``||∇F||²``).
        """
        if batch is None:
            if self._prefetched is not None:
                x, y = self._prefetched
                self._prefetched = None
            else:
                x, y = self.loader.next_batch()
        else:
            if self._prefetched is not None:
                raise RuntimeError(
                    f"worker {self.worker_id}: explicit batch passed while a "
                    "prefetched batch is pending; one of them would be "
                    "consumed twice or dropped"
                )
            x, y = batch
        self.model.train()
        self.model.zero_grad()
        loss = self.loss_factory()
        out = self.model.forward(x)
        value = loss.forward(out, y)
        self.model.backward(loss.backward())
        self.last_loss = value
        g = self.model.get_flat_grads()
        self.last_grad_sqnorm = float(g @ g)
        tr = obs.active()
        if tr is not None:
            # Metrics only (no event; the executor owns the exec_task event).
            record_batch_observations(tr, value, self.last_grad_sqnorm)
        return value

    # -- updates -----------------------------------------------------------
    def local_step(self, lr: float) -> None:
        """Apply one optimizer step from the accumulated gradient."""
        self.optimizer.set_lr(lr)
        self.optimizer.step()

    def apply_gradient(self, flat_grad: np.ndarray, lr: float) -> None:
        """Replace the accumulated gradient and step (gradient aggregation)."""
        self.model.set_flat_grads(flat_grad)
        self.local_step(lr)

    # -- parameter views -------------------------------------------------------
    def get_params(self, copy: bool = True) -> np.ndarray:
        """Flat parameter vector.

        Defaults to a private snapshot: most call sites stash the result
        across later parameter writes (deploy/restore, EASGD's center), and
        a live arena view would silently track those writes. Hot aggregation
        paths that consume the vector immediately pass ``copy=False`` for
        the O(1) read-only view.
        """
        return self.model.get_flat_params(copy=copy)

    def set_params(self, vec: np.ndarray) -> None:
        self.model.set_flat_params(vec)

    def resync(self, params: np.ndarray) -> None:
        """Rebase this replica onto ``params`` with fresh optimizer state.

        The shared re-entry path for every "worker comes back" transition
        — quarantine reinstatement, crash rejoin without a checkpoint, and
        a healed network partition: whatever momentum/EWMA the optimizer
        accumulated refers to a trajectory the cluster has moved past, so
        it is dropped along with the stale parameters.
        """
        self.set_params(params)
        self.optimizer.reset_state()

    def get_grads(self, copy: bool = False) -> np.ndarray:
        """Flat gradient vector — read-only live view by default (gradients
        are consumed immediately after compute, before the next backward)."""
        return self.model.get_flat_grads(copy=copy)

    @property
    def epoch(self) -> float:
        return self.loader.fractional_epoch

    # -- checkpointing ----------------------------------------------------
    def _rng_modules(self):
        """Submodules owning an RNG stream (dropout layers), in stable
        traversal order. Their states must be checkpointed for bitwise
        resume: a training forward pass consumes dropout randomness."""
        return [
            m
            for m in self.model.modules()
            if isinstance(getattr(m, "rng", None), np.random.Generator)
        ]

    def _buffer_modules(self):
        """Submodules with non-parameter buffers (BatchNorm running stats),
        in stable traversal order. The flat parameter vector excludes them,
        yet eval-mode forward passes read them — without these a resumed
        model trains identically but *evaluates* differently."""
        return [
            m
            for m in self.model.modules()
            if isinstance(getattr(m, "running_mean", None), np.ndarray)
        ]

    def model_mutable_state(self) -> Dict:
        """The model's mutable *non-parameter* state: dropout RNG streams
        and BatchNorm running statistics.

        This is exactly what a forward/backward pass touches beyond the
        parameter/gradient arenas, so it is what the process executor
        round-trips through the task pipe: the parent ships the current
        state with each task, the child ships the advanced state back.
        Small by construction — a handful of bit-generator dicts and
        per-channel vectors, never anything proportional to the model.
        """
        return {
            "rngs": [m.rng.bit_generator.state for m in self._rng_modules()],
            "buffers": [
                (m.running_mean.copy(), m.running_var.copy())
                for m in self._buffer_modules()
            ],
        }

    def set_model_mutable_state(self, state: Dict) -> None:
        """Install a :meth:`model_mutable_state` snapshot, in place."""
        rng_modules = self._rng_modules()
        buffer_modules = self._buffer_modules()
        if len(state["rngs"]) != len(rng_modules) or len(
            state["buffers"]
        ) != len(buffer_modules):
            raise ValueError(
                f"worker {self.worker_id}: mutable-state shape mismatch "
                f"({len(state['rngs'])} RNG streams for {len(rng_modules)} "
                f"modules, {len(state['buffers'])} buffer pairs for "
                f"{len(buffer_modules)} modules)"
            )
        for m, rng_state in zip(rng_modules, state["rngs"]):
            m.rng.bit_generator.state = rng_state
        for m, (mean, var) in zip(buffer_modules, state["buffers"]):
            m.running_mean[...] = mean
            m.running_var[...] = var

    def state_dict(self) -> Dict:
        """Full per-rank snapshot: parameters, optimizer slots, loader
        position/RNG and model-internal RNG streams.

        Must be taken at a step boundary — a pending prefetched batch would
        be silently dropped on restore, skewing the data stream.
        """
        if self._prefetched is not None:
            raise RuntimeError(
                f"worker {self.worker_id}: state_dict() with a prefetched "
                "batch pending; checkpoint only at step boundaries"
            )
        return {
            "worker_id": self.worker_id,
            "params": self.get_params(copy=True),
            "optimizer": self.optimizer.state_dict(),
            "loader": self.loader.state_dict(),
            "model_rngs": [m.rng.bit_generator.state for m in self._rng_modules()],
            "model_buffers": [
                {
                    "running_mean": m.running_mean.copy(),
                    "running_var": m.running_var.copy(),
                }
                for m in self._buffer_modules()
            ],
            "last_loss": self.last_loss,
            "last_grad_sqnorm": self.last_grad_sqnorm,
        }

    def load_state_dict(self, state: Dict) -> None:
        rng_modules = self._rng_modules()
        if len(state["model_rngs"]) != len(rng_modules):
            raise ValueError(
                f"worker {self.worker_id}: checkpoint has "
                f"{len(state['model_rngs'])} model RNG streams, the model "
                f"has {len(rng_modules)}"
            )
        buffer_modules = self._buffer_modules()
        if len(state["model_buffers"]) != len(buffer_modules):
            raise ValueError(
                f"worker {self.worker_id}: checkpoint has "
                f"{len(state['model_buffers'])} buffered modules, the model "
                f"has {len(buffer_modules)}"
            )
        for m, buf in zip(buffer_modules, state["model_buffers"]):
            m.running_mean = np.asarray(buf["running_mean"], dtype=np.float64).copy()
            m.running_var = np.asarray(buf["running_var"], dtype=np.float64).copy()
        self.set_params(np.asarray(state["params"]))
        self.optimizer.load_state_dict(state["optimizer"])
        self.loader.load_state_dict(state["loader"])
        for m, rng_state in zip(rng_modules, state["model_rngs"]):
            m.rng.bit_generator.state = rng_state
        self.last_loss = float(state["last_loss"])
        self.last_grad_sqnorm = float(state["last_grad_sqnorm"])
        self._prefetched = None


def build_worker_group(
    n_workers: int,
    model_factory: Callable[[], Module],
    optimizer_factory: Callable[[Module], Optimizer],
    loaders: List[BatchLoader],
    loss_factory: Callable[[], CrossEntropyLoss] = CrossEntropyLoss,
) -> List[SimWorker]:
    """Construct N identically initialized workers.

    ``model_factory`` must be deterministic (seeded) so every replica starts
    from the same parameters; this is verified rather than assumed.
    """
    if len(loaders) != n_workers:
        raise ValueError(f"need {n_workers} loaders, got {len(loaders)}")
    workers = []
    ref: Optional[np.ndarray] = None
    for n in range(n_workers):
        model = model_factory()
        flat = model.get_flat_params()
        if ref is None:
            ref = flat
        elif not np.array_equal(ref, flat):
            raise ValueError(
                "model_factory produced different initial parameters for "
                "different replicas; seed it deterministically"
            )
        workers.append(
            SimWorker(n, model, optimizer_factory(model), loaders[n], loss_factory)
        )
    return workers
