"""Pluggable execution backends for the per-worker gradient phase.

Every lock-step trainer has the same hot section: N independent
forward/backward passes, one per simulated worker. An executor owns *how*
those passes run — sequentially in the caller's thread, or fanned out over a
thread pool — while trainers stay oblivious; they call
``executor.compute_gradients(workers)`` and get the per-worker losses back
in worker order.

Determinism contract
--------------------
Serial and threaded execution produce **byte-identical** results:

* Batch draws are sequenced on the caller's thread in worker order (via
  :meth:`~repro.cluster.worker.SimWorker.draw_batch`) before any task is
  submitted, so loader RNG streams advance identically under both backends.
* Each worker owns its model, optimizer, arena and RNG; tasks share no
  mutable state, so the floating-point work per worker is the same
  instruction sequence regardless of interleaving.
* Results are collected in submission order, not completion order.

The threaded backend helps when BLAS releases the GIL and cores are
available; on a single-core host it degrades gracefully to roughly serial
speed, which is why ``serial`` stays the default.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

Batch = Tuple[np.ndarray, np.ndarray]

EXECUTOR_KINDS = ("serial", "threaded")


def _compute_one(worker, batch: Optional[Batch]) -> float:
    """One worker's forward/backward, with an ``exec_task`` trace event.

    The event deliberately excludes the backend name and (in deterministic
    mode) any wall-clock timing: the serial and threaded executors must
    produce byte-identical traces. Emission happens on the thread running
    the task — safe because each (step, worker) event stream then comes
    from exactly one thread, which is what keeps per-key ``seq`` numbers
    deterministic.
    """
    tr = obs.active()
    if tr is None:
        return worker.compute_gradient(batch)
    t0 = None if tr.deterministic else time.perf_counter()
    loss = worker.compute_gradient(batch)
    data = {"loss": float(loss)}
    if t0 is not None:
        data["wall_s"] = time.perf_counter() - t0
    tr.emit("exec_task", worker=worker.worker_id, **data)
    return loss


class WorkerExecutor:
    """Runs the per-worker gradient phase; subclasses choose the backend."""

    name = "abstract"

    def compute_gradients(
        self,
        workers: Sequence,
        batches: Optional[Sequence[Batch]] = None,
    ) -> List[float]:
        """Forward/backward every worker once; return losses in worker order.

        When ``batches`` is ``None`` each worker's next mini-batch is drawn
        here, on the calling thread, in worker order — so the data stream is
        identical whichever backend runs the math. Callers that already
        drew (or transformed) the batches pass them explicitly.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (no-op for stateless backends)."""


class SerialExecutor(WorkerExecutor):
    """In-thread reference backend: a plain loop over the workers."""

    name = "serial"

    def compute_gradients(self, workers, batches=None):
        if batches is None:
            for w in workers:
                w.draw_batch()
            return [_compute_one(w, None) for w in workers]
        if len(batches) != len(workers):
            raise ValueError(
                f"got {len(batches)} batches for {len(workers)} workers"
            )
        return [_compute_one(w, b) for w, b in zip(workers, batches)]


class ThreadedExecutor(WorkerExecutor):
    """Thread-pool backend.

    The pool is created lazily at first use and reused across steps (pool
    spin-up costs more than a step). ``threads`` bounds the pool size;
    ``None`` sizes it to the widest worker group seen.
    """

    name = "threaded"

    def __init__(self, threads: Optional[int] = None):
        if threads is not None and threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0

    def _ensure_pool(self, n_tasks: int) -> ThreadPoolExecutor:
        size = min(n_tasks, self.threads) if self.threads else n_tasks
        size = max(1, size)
        if self._pool is None or size > self._pool_size:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-worker"
            )
            self._pool_size = size
        return self._pool

    def compute_gradients(self, workers, batches=None):
        if len(workers) == 1:
            # Single-worker calls (SSP's event loop) skip the pool round-trip.
            return SerialExecutor.compute_gradients(self, workers, batches)
        pool = self._ensure_pool(len(workers))
        if batches is None:
            # Sequence the data draws on this thread: determinism contract.
            for w in workers:
                w.draw_batch()
            futures = [pool.submit(_compute_one, w, None) for w in workers]
        else:
            if len(batches) != len(workers):
                raise ValueError(
                    f"got {len(batches)} batches for {len(workers)} workers"
                )
            futures = [
                pool.submit(_compute_one, w, b)
                for w, b in zip(workers, batches)
            ]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_size = 0


def make_executor(
    kind: str = "serial", threads: Optional[int] = None
) -> WorkerExecutor:
    """Build an executor by name (``"serial"`` or ``"threaded"``)."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "threaded":
        return ThreadedExecutor(threads=threads)
    raise ValueError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
