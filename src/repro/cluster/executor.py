"""Pluggable execution backends for the per-worker gradient phase.

Every lock-step trainer has the same hot section: N independent
forward/backward passes, one per simulated worker. An executor owns *how*
those passes run — sequentially in the caller's thread, fanned out over a
thread pool, or fanned out over a persistent pool of **worker processes**
sharing the parameter/gradient arenas — while trainers stay oblivious; they
call ``executor.compute_gradients(workers)`` and get the per-worker losses
back in worker order.

Determinism contract
--------------------
All backends produce **byte-identical** results:

* Batch draws are sequenced on the caller's thread in worker order (via
  :meth:`~repro.cluster.worker.SimWorker.draw_batch`) before any task is
  submitted, so loader RNG streams advance identically under every backend.
* Each worker owns its model, optimizer, arena and RNG; tasks share no
  mutable state, so the floating-point work per worker is the same
  instruction sequence regardless of interleaving or address space.
* Results are collected in submission order, not completion order.

The threaded backend helps when BLAS releases the GIL and cores are
available; the process backend sidesteps the GIL entirely (the numpy glue
between kernels is Python-level and serializes threads), which is why it is
the backend that actually scales with cores. ``serial`` stays the default.

Process backend transport
-------------------------
:class:`ProcessExecutor` forks children that inherit the simulated workers
whole; before forking, every worker's arena is promoted to a
``multiprocessing.shared_memory`` segment (:func:`repro.nn.arena.share_arena`),
so parameter writes by the parent (optimizer steps, aggregation, resume) and
gradient writes by the children need no copies and no pickling. Mini-batches
travel through a per-worker shared staging segment. The only things pickled
per task are compact descriptors: worker id, batch shapes, dropout RNG
states and BatchNorm running statistics out; loss, ``||g||²`` and the
advanced RNG/buffer states back. All authoritative state (loaders,
optimizers, checkpoints) stays in the parent — a child is a pure
forward/backward engine over shared storage.
"""

from __future__ import annotations

import os
import time
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.utils import fastpath

Batch = Tuple[np.ndarray, np.ndarray]

EXECUTOR_KINDS = ("serial", "threaded", "process")


def _compute_one(worker, batch: Optional[Batch]) -> float:
    """One worker's forward/backward, with an ``exec_task`` trace event.

    The event deliberately excludes the backend name and (in deterministic
    mode) any wall-clock timing: the serial and threaded executors must
    produce byte-identical traces. Emission happens on the thread running
    the task — safe because each (step, worker) event stream then comes
    from exactly one thread, which is what keeps per-key ``seq`` numbers
    deterministic.
    """
    tr = obs.active()
    if tr is None:
        return worker.compute_gradient(batch)
    t0 = None if tr.deterministic else time.perf_counter()
    loss = worker.compute_gradient(batch)
    data = {"loss": float(loss)}
    if t0 is not None:
        data["wall_s"] = time.perf_counter() - t0
    tr.emit("exec_task", worker=worker.worker_id, **data)
    return loss


class WorkerExecutor:
    """Runs the per-worker gradient phase; subclasses choose the backend."""

    name = "abstract"

    def bind(self, workers: Sequence) -> None:
        """Declare the full worker group before the first compute call.

        Stateful backends (the process pool) need the complete group up
        front: trainers routinely compute over *subsets* (live workers, SSP's
        single-worker events), and a pool forked from a partial first call
        could never serve the rest. Stateless backends ignore it.
        """

    def compute_gradients(
        self,
        workers: Sequence,
        batches: Optional[Sequence[Batch]] = None,
    ) -> List[float]:
        """Forward/backward every worker once; return losses in worker order.

        When ``batches`` is ``None`` each worker's next mini-batch is drawn
        here, on the calling thread, in worker order — so the data stream is
        identical whichever backend runs the math. Callers that already
        drew (or transformed) the batches pass them explicitly.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources; idempotent (no-op when stateless or
        already shut down)."""

    def __enter__(self) -> "WorkerExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


class SerialExecutor(WorkerExecutor):
    """In-thread reference backend: a plain loop over the workers."""

    name = "serial"

    def compute_gradients(self, workers, batches=None):
        if batches is None:
            for w in workers:
                w.draw_batch()
            return [_compute_one(w, None) for w in workers]
        if len(batches) != len(workers):
            raise ValueError(
                f"got {len(batches)} batches for {len(workers)} workers"
            )
        return [_compute_one(w, b) for w, b in zip(workers, batches)]


class ThreadedExecutor(WorkerExecutor):
    """Thread-pool backend.

    The pool is created lazily at first use and reused across steps (pool
    spin-up costs more than a step). ``threads`` bounds the pool size;
    ``None`` sizes it to the widest worker group seen.
    """

    name = "threaded"

    def __init__(self, threads: Optional[int] = None):
        if threads is not None and threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0

    def _ensure_pool(self, n_tasks: int) -> ThreadPoolExecutor:
        size = min(n_tasks, self.threads) if self.threads else n_tasks
        size = max(1, size)
        if self._pool is None or size > self._pool_size:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-worker"
            )
            self._pool_size = size
        return self._pool

    def compute_gradients(self, workers, batches=None):
        if len(workers) == 1:
            # Single-worker calls (SSP's event loop) skip the pool round-trip.
            return SerialExecutor.compute_gradients(self, workers, batches)
        pool = self._ensure_pool(len(workers))
        if batches is None:
            # Sequence the data draws on this thread: determinism contract.
            for w in workers:
                w.draw_batch()
            futures = [pool.submit(_compute_one, w, None) for w in workers]
        else:
            if len(batches) != len(workers):
                raise ValueError(
                    f"got {len(batches)} batches for {len(workers)} workers"
                )
            futures = [
                pool.submit(_compute_one, w, b)
                for w, b in zip(workers, batches)
            ]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_size = 0


# -- process backend ---------------------------------------------------------


def _child_main(conn, workers) -> None:
    """Task loop of one forked worker process.

    Inherits its assigned :class:`SimWorker` replicas from the fork; their
    parameter/gradient views alias the parent's shared-memory arenas, so a
    task only needs the batch (read from the staging segment) and the
    model's mutable non-parameter state (from the descriptor). The loop
    exits on the ``None`` sentinel or when the parent's pipe end closes.
    """
    # The fork inherited any installed tracer; observability belongs to the
    # parent (it replays metrics/events from results), so uninstall here.
    obs.install(None)
    by_id = {w.worker_id: w for w in workers}
    staging: Dict[int, Tuple[str, shared_memory.SharedMemory]] = {}
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if task is None:
                break
            try:
                conn.send(_child_run_task(by_id, staging, task))
            except Exception:  # ship the traceback; the parent raises it
                try:
                    conn.send(
                        {
                            "worker": task.get("worker", -1),
                            "error": traceback.format_exc(),
                        }
                    )
                except (BrokenPipeError, OSError):
                    break
    finally:
        for _, shm in staging.values():
            shm.close()
        try:
            conn.close()
        finally:
            # Skip interpreter teardown: flushing file buffers inherited
            # from the fork (trace sinks, stdout) would duplicate the
            # parent's pending writes.
            os._exit(0)


def _child_run_task(by_id, staging, task):
    wid = task["worker"]
    w = by_id.get(wid)
    if w is None:
        raise RuntimeError(f"child was never assigned worker {wid}")
    name = task["shm"]
    cached = staging.get(wid)
    if cached is None or cached[0] != name:
        if cached is not None:
            cached[1].close()  # parent re-staged into a bigger segment
        staging[wid] = (name, shared_memory.SharedMemory(name=name))
    shm = staging[wid][1]
    x = np.ndarray(task["x_shape"], dtype=np.dtype(task["x_dtype"]), buffer=shm.buf)
    y = np.ndarray(
        task["y_shape"],
        dtype=np.dtype(task["y_dtype"]),
        buffer=shm.buf,
        offset=x.nbytes,
    )
    # The views stay valid for the whole task (the parent re-stages worker
    # ``wid``'s slot only after this task's result arrived); mark them
    # read-only so a mutating layer fails loudly instead of corrupting the
    # staging buffer.
    x.flags.writeable = False
    y.flags.writeable = False
    w.set_model_mutable_state(task["state"])
    t0 = time.perf_counter()
    loss = w.compute_gradient((x, y))
    wall_s = time.perf_counter() - t0
    return {
        "worker": wid,
        "loss": loss,
        "grad_sqnorm": w.last_grad_sqnorm,
        "state": w.model_mutable_state(),
        "wall_s": wall_s,
    }


class _BatchStaging:
    """Parent-side shared-memory slot that carries one worker's batch.

    Grows geometrically when a bigger batch appears (new segment, new name
    — the child re-attaches when the descriptor's name changes); the common
    case is a single allocation reused for the whole run.
    """

    def __init__(self):
        self.shm: Optional[shared_memory.SharedMemory] = None

    def stage(self, x: np.ndarray, y: np.ndarray) -> Dict:
        need = int(x.nbytes + y.nbytes)
        if self.shm is None or self.shm.size < need:
            self.release()
            self.shm = shared_memory.SharedMemory(create=True, size=max(1, need))
        np.ndarray(x.shape, dtype=x.dtype, buffer=self.shm.buf)[...] = x
        np.ndarray(
            y.shape, dtype=y.dtype, buffer=self.shm.buf, offset=x.nbytes
        )[...] = y
        return {
            "shm": self.shm.name,
            "x_shape": tuple(x.shape),
            "x_dtype": x.dtype.str,
            "y_shape": tuple(y.shape),
            "y_dtype": y.dtype.str,
        }

    def release(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self.shm = None


class _ProcessPool:
    """The forked children, their pipes, and the task/result protocol."""

    def __init__(self, workers: List, n_procs: int):
        from repro.nn.arena import share_arena

        if not fastpath.is_enabled():
            raise RuntimeError(
                "the process executor requires the arena fast path "
                "(repro.utils.fastpath) — without arenas there is no shared "
                "parameter storage to fork over"
            )
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError as e:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "the process executor needs the 'fork' start method so "
                "children inherit the worker replicas and shared arenas; "
                "this platform does not provide it"
            ) from e
        self.workers = {w.worker_id: w for w in workers}
        if len(self.workers) != len(workers):
            raise ValueError("duplicate worker ids in the bound group")
        # Promote every replica's arena to shared memory *before* forking;
        # children inherit views straight into the segments.
        for w in workers:
            share_arena(w.model)
        self.staging = {w.worker_id: _BatchStaging() for w in workers}
        self._child_of: Dict[int, int] = {}
        assigned: List[List] = [[] for _ in range(n_procs)]
        for i, w in enumerate(workers):
            self._child_of[w.worker_id] = i % n_procs
            assigned[i % n_procs].append(w)
        self.conns = []
        self.procs = []
        for j in range(n_procs):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_child_main,
                args=(child_conn, assigned[j]),
                name=f"repro-exec-{j}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)
        self._pending: Dict[int, Dict] = {}
        self._closed = False

    # -- protocol ---------------------------------------------------------
    def check_membership(self, workers: Sequence) -> None:
        for w in workers:
            bound = self.workers.get(w.worker_id)
            if bound is None:
                raise RuntimeError(
                    f"worker {w.worker_id} is not part of the group this "
                    "process pool was forked for; bind() the full group "
                    "before the first compute call"
                )
            if bound is not w:
                raise RuntimeError(
                    f"worker {w.worker_id} is a different object than the "
                    "one this process pool was forked for; create a fresh "
                    "executor for a fresh worker group"
                )

    def _die(self, wid: int, op: str) -> RuntimeError:
        return self._die_child(self._child_of[wid], op, wid=wid)

    def _die_child(self, j: int, op: str, wid=None) -> RuntimeError:
        proc = self.procs[j]
        proc.join(timeout=1.0)
        serving = "" if wid is None else f" (serving simulated worker {wid})"
        return RuntimeError(
            f"executor child process {proc.name}{serving} died during "
            f"{op} (exit code {proc.exitcode}); the training step cannot "
            "be trusted — aborting"
        )

    def run_tasks(self, workers: Sequence, batches: Sequence[Batch]) -> List[float]:
        tr = obs.active()
        for w, (x, y) in zip(workers, batches):
            task = {
                "worker": w.worker_id,
                "state": w.model_mutable_state(),
                **self.staging[w.worker_id].stage(
                    np.ascontiguousarray(x), np.ascontiguousarray(y)
                ),
            }
            # Drain any finished results before each send: keeps both pipe
            # directions shallow, so neither side can block with the other
            # full (descriptors and results are KBs, pipes hold 64KB).
            self._drain_ready()
            conn = self.conns[self._child_of[w.worker_id]]
            try:
                conn.send(task)
            except (BrokenPipeError, OSError):
                raise self._die(w.worker_id, "task submission") from None
        losses = []
        it = iter(list(workers))
        try:
            for w in it:
                r = self._recv_for(w.worker_id)
                w.set_model_mutable_state(r["state"])
                w.last_loss = r["loss"]
                w.last_grad_sqnorm = r["grad_sqnorm"]
                if tr is not None:
                    from repro.cluster.worker import record_batch_observations

                    record_batch_observations(tr, r["loss"], r["grad_sqnorm"])
                    data = {"loss": float(r["loss"])}
                    if not tr.deterministic:
                        data["wall_s"] = r["wall_s"]
                    tr.emit("exec_task", worker=w.worker_id, **data)
                losses.append(r["loss"])
        except Exception:
            # A failed task leaves this round's later results in flight;
            # absorb them now so a subsequent round cannot mistake a stale
            # result for its own. (A dead child has nothing to absorb.)
            for w in it:
                try:
                    self._recv_raw(w.worker_id)
                except Exception:  # pragma: no cover - child also gone
                    pass
            raise
        return losses

    def _drain_ready(self) -> None:
        for j, conn in enumerate(self.conns):
            while conn.poll():
                try:
                    r = conn.recv()
                except (EOFError, OSError):
                    # poll() also wakes on EOF: the child is gone.
                    raise self._die_child(j, "task submission") from None
                self._pending[r["worker"]] = r

    def _recv_raw(self, wid: int) -> Dict:
        conn = self.conns[self._child_of[wid]]
        while wid not in self._pending:
            try:
                r = conn.recv()
            except (EOFError, OSError):
                raise self._die(wid, "gradient computation") from None
            self._pending[r["worker"]] = r
        return self._pending.pop(wid)

    def _recv_for(self, wid: int) -> Dict:
        r = self._recv_raw(wid)
        if "error" in r:
            raise RuntimeError(
                f"gradient task for worker {wid} failed in the child "
                f"process:\n{r['error']}"
            )
        return r

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self.conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in zip(self.procs, self.conns):
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck child
                proc.terminate()
                proc.join(timeout=5.0)
            conn.close()
        for st in self.staging.values():
            st.release()
        # Children are gone: fold every arena back to private storage and
        # release the segments, so repeated runs in one process (tests,
        # sweeps) do not accumulate /dev/shm mappings.
        from repro.nn.arena import unshare_arena

        for w in self.workers.values():
            try:
                unshare_arena(w.model)
            except Exception:  # pragma: no cover - interpreter teardown
                pass


class ProcessExecutor(WorkerExecutor):
    """Process-pool backend over shared-memory arenas.

    The pool forks lazily at the first compute call (children must inherit
    fully-built worker replicas) and persists across steps. ``procs`` bounds
    the number of worker processes; ``None`` sizes it to
    ``min(n_workers, cpu_count)``. Simulated workers are assigned to
    children round-robin and stay pinned, so each replica's memory is only
    ever touched by one child.
    """

    name = "process"

    def __init__(self, procs: Optional[int] = None):
        if procs is not None and procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.procs = procs
        self._pool: Optional[_ProcessPool] = None
        self._bound: Optional[List] = None
        self._finalizer = None

    def bind(self, workers: Sequence) -> None:
        if self._pool is not None:
            self._pool.check_membership(workers)
            return
        self._bound = list(workers)

    def _ensure_pool(self, workers: Sequence) -> _ProcessPool:
        if self._pool is None:
            group = self._bound if self._bound is not None else list(workers)
            n = min(self.procs or (os.cpu_count() or 1), len(group))
            self._pool = _ProcessPool(group, max(1, n))
            # Safety net for executors that are dropped without shutdown():
            # terminates children and unlinks segments at garbage collection.
            self._finalizer = weakref.finalize(self, _ProcessPool.close, self._pool)
        self._pool.check_membership(workers)
        return self._pool

    def compute_gradients(self, workers, batches=None):
        pool = self._ensure_pool(workers)
        if batches is None:
            # Sequence the data draws on the parent, in worker order: the
            # loaders stay authoritative here and the stream is identical
            # to the serial backend's.
            for w in workers:
                w.draw_batch()
            batches = [w.take_prefetched() for w in workers]
        elif len(batches) != len(workers):
            raise ValueError(
                f"got {len(batches)} batches for {len(workers)} workers"
            )
        return pool.run_tasks(workers, batches)

    def shutdown(self) -> None:
        if self._pool is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._pool.close()
            self._pool = None


def make_executor(
    kind: str = "serial",
    threads: Optional[int] = None,
    procs: Optional[int] = None,
) -> WorkerExecutor:
    """Build an executor by name (one of :data:`EXECUTOR_KINDS`)."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "threaded":
        return ThreadedExecutor(threads=threads)
    if kind == "process":
        return ProcessExecutor(procs=procs)
    raise ValueError(
        f"unknown executor {kind!r}; valid choices: {', '.join(EXECUTOR_KINDS)}"
    )
