"""Per-worker compute-time model.

Iteration time in the paper decomposes as ``t_it = t_c + t_s`` (§II-A); this
module produces ``t_c``. A worker's compute time for one step is::

    t_c = 3 · flops_per_sample · batch / (device_flops · speed_n) · jitter

(the factor 3 covers forward + ~2× backward). ``speed_n`` models systems
heterogeneity — SSP's reason to exist — and ``jitter`` models run-to-run
variance (stragglers).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, as_rng

#: Effective sustained throughput we credit a V100 for these workloads.
#: (Peak FP32 is 14 TFLOPs; sustained training throughput is far lower.)
V100_EFFECTIVE_FLOPS = 2.0e12

#: K80 for the Fig. 2a batch-size study.
K80_EFFECTIVE_FLOPS = 0.6e12

BACKWARD_FACTOR = 3.0  # forward + backward ≈ 3x forward FLOPs


class ComputeModel:
    """Samples per-worker, per-iteration compute times.

    Parameters
    ----------
    device_flops:
        Sustained FLOP/s of the reference device.
    speeds:
        Optional per-worker relative speed multipliers (1.0 = reference).
        Length fixes the worker count this model serves.
    jitter_sigma:
        Log-normal sigma of per-step noise; 0 disables it. Real clusters
        show a few percent; straggler studies crank this up.
    """

    def __init__(
        self,
        n_workers: int,
        device_flops: float = V100_EFFECTIVE_FLOPS,
        speeds: Optional[Sequence[float]] = None,
        jitter_sigma: float = 0.02,
        rng: RngLike = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if device_flops <= 0:
            raise ValueError(f"device_flops must be positive, got {device_flops}")
        if jitter_sigma < 0:
            raise ValueError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
        self.n_workers = n_workers
        self.device_flops = device_flops
        if speeds is None:
            speeds = np.ones(n_workers)
        speeds = np.asarray(speeds, dtype=np.float64)
        if speeds.shape != (n_workers,):
            raise ValueError(
                f"speeds must have shape ({n_workers},), got {speeds.shape}"
            )
        if (speeds <= 0).any():
            raise ValueError("worker speeds must be positive")
        self.speeds = speeds
        self.jitter_sigma = jitter_sigma
        self.rng = as_rng(rng)

    def mean_time(self, flops_per_sample: float, batch_size: int, worker: int = 0) -> float:
        """Expected compute time for one step (no jitter)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not 0 <= worker < self.n_workers:
            raise IndexError(f"worker {worker} out of range [0, {self.n_workers})")
        work = BACKWARD_FACTOR * flops_per_sample * batch_size
        return work / (self.device_flops * self.speeds[worker])

    def sample_time(self, flops_per_sample: float, batch_size: int, worker: int) -> float:
        """One noisy compute-time draw for worker ``worker``."""
        t = self.mean_time(flops_per_sample, batch_size, worker)
        if self.jitter_sigma > 0:
            t *= float(self.rng.lognormal(0.0, self.jitter_sigma))
        return t

    def sample_all(self, flops_per_sample: float, batch_size: int) -> np.ndarray:
        """Compute-time draws for every worker this step (vectorized)."""
        base = (
            BACKWARD_FACTOR
            * flops_per_sample
            * batch_size
            / (self.device_flops * self.speeds)
        )
        if self.jitter_sigma > 0:
            base = base * self.rng.lognormal(0.0, self.jitter_sigma, self.n_workers)
        return base

    @classmethod
    def heterogeneous(
        cls,
        n_workers: int,
        slow_fraction: float = 0.25,
        slow_factor: float = 0.5,
        rng: RngLike = None,
        **kwargs,
    ) -> "ComputeModel":
        """Cluster where a fraction of workers runs at ``slow_factor`` speed."""
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(f"slow_fraction must be in [0,1], got {slow_fraction}")
        if slow_factor <= 0:
            raise ValueError(f"slow_factor must be positive, got {slow_factor}")
        r = as_rng(rng)
        speeds = np.ones(n_workers)
        n_slow = int(round(slow_fraction * n_workers))
        if n_slow:
            idx = r.choice(n_workers, size=n_slow, replace=False)
            speeds[idx] = slow_factor
        return cls(n_workers, speeds=speeds, rng=r, **kwargs)
