"""Per-worker health scoring and quarantine policy.

A production cluster cannot assume a misbehaving worker announces itself:
an adversarial replica pushes finite-but-hostile updates, a sick node NaNs
intermittently, a thermally-throttled box straggles every round. The
:class:`HealthTracker` watches three per-round signals for every worker —

* **update-norm deviation** from the cohort median (EWMA-smoothed),
* **NaN/Inf strikes** (non-finite gradient norms),
* **straggle ratio** (compute time vs. the cohort median),

— and quarantines workers whose smoothed outlier score crosses the
threshold. A quarantined worker is excluded from aggregation and Δ(g)
votes, sits out a probation window, and is then reinstated from the
current global model (the trainer owns the parameter restore; this class
owns the bookkeeping).

Everything here is deterministic pure bookkeeping over values the trainer
already computes; with no anomalies the tracker never changes any
decision, and the trainer bypasses it entirely when health is disabled —
which is what keeps default runs byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class QuarantineDecision:
    """One worker flagged this round."""

    worker: int
    score: float
    reason: str  # "outlier" | "non_finite" | "straggler"
    until: int  # first step at which reinstatement is allowed


class HealthTracker:
    """EWMA outlier scoring + quarantine state for ``n_workers`` ranks.

    Parameters
    ----------
    n_workers:
        Cluster size.
    threshold:
        Quarantine when a worker's smoothed outlier score exceeds this.
        The per-round raw score is ``|norm − median| / median`` plus any
        straggle excess, so a threshold of 3 means "consistently ~4× the
        cohort's update norm".
    probation:
        Steps a quarantined worker sits out before reinstatement.
    alpha:
        EWMA smoothing factor for the outlier score.
    max_strikes:
        Consecutive non-finite updates before quarantine (NaN/Inf is
        treated as hard evidence; two in a row is enough by default).
    straggle_tolerance:
        Compute-time ratio over the cohort median that starts counting
        toward the score (3 ⇒ only >3× slowdowns accumulate evidence).
    warmup:
        Rounds observed before score-based quarantine activates (the EWMA
        needs a few samples; strike-based quarantine is always active).
    min_active:
        Quarantine floor: never flag a worker when doing so would leave
        fewer than this many non-quarantined ranks. Under a cluster-wide
        fault storm isolating everyone would kill the run outright; the
        floor keeps the (possibly degraded) majority training and lets the
        quorum check — not the health policy — decide when to give up.
    """

    def __init__(
        self,
        n_workers: int,
        threshold: float = 3.0,
        probation: int = 20,
        alpha: float = 0.3,
        max_strikes: int = 2,
        straggle_tolerance: float = 3.0,
        warmup: int = 3,
        min_active: int = 1,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if probation < 1:
            raise ValueError(f"probation must be >= 1, got {probation}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if max_strikes < 1:
            raise ValueError(f"max_strikes must be >= 1, got {max_strikes}")
        if not 0 <= min_active <= n_workers:
            raise ValueError(
                f"min_active must be in [0, {n_workers}], got {min_active}"
            )
        self.n_workers = int(n_workers)
        self.min_active = int(min_active)
        self.threshold = float(threshold)
        self.probation = int(probation)
        self.alpha = float(alpha)
        self.max_strikes = int(max_strikes)
        self.straggle_tolerance = float(straggle_tolerance)
        self.warmup = int(warmup)
        self.scores = [0.0] * self.n_workers
        self.strikes = [0] * self.n_workers
        self.observed = [0] * self.n_workers
        #: worker id → first step at which it may be reinstated.
        self.quarantined_until: Dict[int, int] = {}

    # -- quarantine state --------------------------------------------------
    def quarantined(self, worker: int) -> bool:
        return worker in self.quarantined_until

    @property
    def quarantined_workers(self) -> List[int]:
        return sorted(self.quarantined_until)

    def due_reinstatements(self, step: int) -> List[int]:
        """Workers whose probation has elapsed at ``step`` (sorted)."""
        return sorted(
            w for w, until in self.quarantined_until.items() if step >= until
        )

    def release(self, worker: int) -> None:
        """Lift a worker's quarantine (the trainer has restored it)."""
        self.quarantined_until.pop(worker, None)

    def _quarantine(
        self, worker: int, step: int, reason: str
    ) -> QuarantineDecision:
        until = step + self.probation
        self.quarantined_until[worker] = until
        d = QuarantineDecision(
            worker=worker, score=self.scores[worker], reason=reason, until=until
        )
        # Fresh slate on reinstatement: the worker restarts from the global
        # model, so pre-quarantine evidence no longer describes it.
        self.scores[worker] = 0.0
        self.strikes[worker] = 0
        self.observed[worker] = 0
        return d

    # -- per-round observation --------------------------------------------
    def observe(
        self,
        step: int,
        update_norms: Dict[int, float],
        compute_times: Optional[Dict[int, float]] = None,
    ) -> List[QuarantineDecision]:
        """Score one round of updates; return newly flagged workers.

        ``update_norms`` maps each participating worker to the L2 norm of
        its update (NaN/Inf marks a non-finite update); ``compute_times``
        optionally carries the same workers' simulated compute seconds.
        Already-quarantined workers are ignored.
        """
        compute_times = compute_times or {}
        flagged: List[QuarantineDecision] = []
        candidates = {
            w: n for w, n in update_norms.items() if not self.quarantined(w)
        }
        finite = sorted(n for n in candidates.values() if math.isfinite(n))
        med = _median(finite) if finite else float("nan")
        times = sorted(
            t for w, t in compute_times.items()
            if w in candidates and math.isfinite(t)
        )
        med_t = _median(times) if times else float("nan")
        def capacity() -> int:
            return (
                self.n_workers - self.min_active - len(self.quarantined_until)
            )

        for w in sorted(candidates):
            norm = candidates[w]
            if not math.isfinite(norm):
                self.strikes[w] += 1
                if self.strikes[w] >= self.max_strikes and capacity() > 0:
                    flagged.append(self._quarantine(w, step, "non_finite"))
                continue
            self.strikes[w] = 0
            # Norm deviation needs a meaningful cohort median: with fewer
            # than 3 finite peers there is no consensus to deviate from.
            deviation = 0.0
            if len(finite) >= 3 and med > 0.0:
                deviation = abs(norm - med) / med
            straggle_excess = 0.0
            t = compute_times.get(w)
            if t is not None and math.isfinite(med_t) and med_t > 0.0:
                straggle_excess = max(0.0, t / med_t - self.straggle_tolerance)
            raw = deviation + straggle_excess
            reason = "straggler" if straggle_excess > deviation else "outlier"
            self.scores[w] += self.alpha * (raw - self.scores[w])
            self.observed[w] += 1
            if (
                self.observed[w] > self.warmup
                and self.scores[w] > self.threshold
                and capacity() > 0
            ):
                flagged.append(self._quarantine(w, step, reason))
        return flagged

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "scores": list(self.scores),
            "strikes": list(self.strikes),
            "observed": list(self.observed),
            "quarantined_until": {
                str(w): int(u) for w, u in self.quarantined_until.items()
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        self.scores = [float(s) for s in state["scores"]]
        self.strikes = [int(s) for s in state["strikes"]]
        self.observed = [int(s) for s in state["observed"]]
        self.quarantined_until = {
            int(w): int(u) for w, u in state["quarantined_until"].items()
        }


def _median(sorted_vals: Sequence[float]) -> float:
    """Median of an already-sorted sequence (no numpy: keep this module a
    pure-bookkeeping dependency leaf)."""
    n = len(sorted_vals)
    if n == 0:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return float(sorted_vals[mid])
    return 0.5 * (float(sorted_vals[mid - 1]) + float(sorted_vals[mid]))
