"""Discrete-event machinery for asynchronous (SSP) simulation.

Synchronous trainers advance time in lock-step (``max`` over worker compute
times per round); SSP workers each carry their own clock, so completion
events are processed in global time order through a priority queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import obs


@dataclass(order=True)
class Event:
    """A timestamped simulation event. Ordering ties break by insertion."""

    time: float
    seq: int = field(compare=True)
    worker: int = field(compare=False, default=-1)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self):
        self._heap: list = []
        self._counter = itertools.count()
        self.now: float = 0.0

    def push(self, time: float, worker: int = -1, payload: Any = None) -> None:
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, Event(time, next(self._counter), worker, payload))
        tr = obs.active()
        if tr is not None:
            tr.metrics.inc("simclock.pushes")

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        self.now = ev.time
        tr = obs.active()
        if tr is not None:
            tr.metrics.inc("simclock.pops")
            tr.metrics.set("simclock.now", self.now)
        return ev

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
