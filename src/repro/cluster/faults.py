"""Deterministic fault injection for the simulated cluster.

The paper's evaluation assumes perfectly reliable workers; real clusters do
not cooperate. This module adds a seeded, fully deterministic fault model so
every trainer can be exercised under crashes, stragglers, lossy links and
corrupted gradients — and so the same faults replay identically under the
serial and threaded executors (drop/corrupt draws are keyed on
``(seed, worker, step)``, never on call order).

Event taxonomy
--------------
``crash``
    Worker ``w`` is down for steps ``[start, end)`` and rejoins at ``end``
    (open-ended windows never rejoin). A down worker computes nothing,
    contributes nothing to aggregation, and its loader/optimizer freeze.
``straggle``
    Worker ``w``'s compute time is multiplied by ``factor`` for every step
    in the window; the same factor scales its upload-retry transfers, so a
    slow worker also retransmits slowly.
``drop``
    Each gradient/parameter upload is lost with probability ``p``
    (per-worker per-step Bernoulli). Lost uploads are retried with
    exponential backoff charged to the cost model; after
    :data:`MAX_UPLOAD_RETRIES` failures the update is abandoned for the
    step and the worker is excluded from that aggregation round.
``corrupt``
    Worker ``w``'s gradient is overwritten with a NaN/inf burst in the
    window. Degraded-mode trainers detect the poisoned update and reject
    it rather than averaging it into the global model.

Spec grammar
------------
One compact string shared by the CLI, the tests and the experiment runner::

    spec    := clause ("," clause)*
    clause  := "crash:w" ID window
             | "straggle:w" ID "x" FACTOR window
             | "corrupt:w" ID window
             | "drop:" ["w" ID ":"] "p=" PROB [window]
    window  := "@" START            (corrupt: one step; others: open-ended)
             | "@" START "-" END    (half-open [START, END))
             | "@" START "+"        (open-ended)

Example: ``crash:w2@50-120,straggle:w0x4@30+,drop:p=0.05``.

Link-level faults
-----------------
Worker faults model sick *nodes*; the network has its own failure modes —
lost messages, flapping links, full partitions — with their own spec
grammar (``ClusterConfig.net_fault_spec`` / ``--net-faults``). Clauses are
semicolon-free, comma-separated like worker faults, but because partition
groups use commas internally, clauses are split on commas *outside*
braces/parens::

    netspec := clause ("," clause)*
    clause  := "partition:{" group ("|" group)* "}" window
             | "flap:link(" A "," B ")x" PERIOD [window]
             | "loss:" ["link(" A "," B "):"] "p=" PROB [window]
             | "dup:"  ["link(" A "," B "):"] "p=" PROB [window]
             | "delay:link(" A "," B ")x" FACTOR [window]
    group   := member ("," member)*
    member  := "w" ID | "w" ID ".." ["w"] ID     (w2..w7 = w2,w3,...,w7)

``partition`` cuts every link between different groups for the window
(workers not named in any group ride with the majority side).  ``flap``
toggles one link down/up with half-period PERIOD steps.  ``loss`` drops
each message on the link (or all links) with probability ``p`` per
attempt; ``dup`` delivers a duplicate (idempotent, but the extra transfer
is charged).  ``delay`` multiplies the link's transfer time by FACTOR.

Example: ``partition:{w0,w1|w2..w7}@100-200,flap:link(2,5)x3@50+,loss:p=0.02``.

All link draws are keyed on ``(seed, src, dst, step)`` — see
:class:`repro.comm.network.LinkFaultModel` — so sequences replay
identically across executors and call orders.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs


class QuorumLostError(RuntimeError):
    """Raised when fewer workers than ``min_quorum`` can contribute to an
    aggregation round — a loud failure instead of a silently wrong mean.

    Instances raised by the trainers carry ``step`` / ``contributing`` /
    ``quorum`` attributes so a recovery supervisor can relax the quorum to
    the surviving worker set before retrying.
    """

    step: int = -1
    contributing: int = -1
    quorum: int = -1


class NonFiniteUpdateError(ValueError):
    """A NaN/Inf update vector reached an aggregation point that cannot
    tolerate it (the plain-mean path, or a robust round where *every*
    contribution was non-finite). Subclasses ``ValueError`` so existing
    shape-validation handlers keep working."""


#: Abandon an upload after this many failed retries (the update is lost for
#: the step and the worker drops out of that aggregation round).
MAX_UPLOAD_RETRIES = 8

#: First-retry backoff in simulated seconds; retry ``k`` waits ``base·2^k``.
RETRY_BACKOFF_BASE_S = 0.05


def retry_backoff_seconds(n_retries: int) -> float:
    """Total exponential-backoff wait for ``n_retries`` failed attempts."""
    if n_retries < 0:
        raise ValueError(f"n_retries must be >= 0, got {n_retries}")
    # base * (2^n - 1): geometric series of base·2^k for k in [0, n).
    return RETRY_BACKOFF_BASE_S * (2.0**n_retries - 1.0)


# -- fault clauses -----------------------------------------------------------


@dataclass(frozen=True)
class CrashFault:
    """Worker ``worker`` is down for steps ``[start, end)``; ``end=None``
    means it never rejoins."""

    worker: int
    start: int
    end: Optional[int] = None

    kind = "crash"

    def covers(self, step: int) -> bool:
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        return f"crash:w{self.worker}@{_window_str(self.start, self.end)}"


@dataclass(frozen=True)
class StraggleFault:
    """Worker ``worker`` runs ``factor``× slower for steps ``[start, end)``."""

    worker: int
    factor: float
    start: int
    end: Optional[int] = None

    kind = "straggle"

    def covers(self, step: int) -> bool:
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        return (
            f"straggle:w{self.worker}x{_number_str(self.factor)}"
            f"@{_window_str(self.start, self.end)}"
        )


@dataclass(frozen=True)
class DropFault:
    """Uploads are lost with probability ``p``; ``worker=None`` hits all."""

    p: float
    worker: Optional[int] = None
    start: int = 0
    end: Optional[int] = None

    kind = "drop"

    def covers(self, worker: int, step: int) -> bool:
        if self.worker is not None and worker != self.worker:
            return False
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        prefix = "drop:" if self.worker is None else f"drop:w{self.worker}:"
        s = f"{prefix}p={_number_str(self.p)}"
        if self.start != 0 or self.end is not None:
            s += f"@{_window_str(self.start, self.end)}"
        return s


@dataclass(frozen=True)
class CorruptFault:
    """Worker ``worker``'s gradient is NaN/inf-poisoned in ``[start, end)``."""

    worker: int
    start: int
    end: int  # always bounded; a single-step burst has end = start + 1

    kind = "corrupt"

    def covers(self, step: int) -> bool:
        return self.start <= step < self.end

    def to_spec(self) -> str:
        if self.end == self.start + 1:
            return f"corrupt:w{self.worker}@{self.start}"
        return f"corrupt:w{self.worker}@{self.start}-{self.end}"


@dataclass(frozen=True)
class RandomCorruptFault:
    """Adversarial (finite) corruption: each covered worker's gradient is
    replaced with a hostile vector with probability ``p`` per step.

    Unlike :class:`CorruptFault`'s NaN burst — which any finiteness check
    detects — the adversarial gradient is fully finite (a scaled sign-flip
    plus large-norm noise), so a plain mean silently averages it in. This
    is the threat model robust aggregators exist for. ``worker=None``
    covers all workers.
    """

    p: float
    worker: Optional[int] = None
    start: int = 0
    end: Optional[int] = None

    kind = "adversarial"

    def covers(self, worker: int, step: int) -> bool:
        if self.worker is not None and worker != self.worker:
            return False
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        prefix = "corrupt:" if self.worker is None else f"corrupt:w{self.worker}:"
        s = f"{prefix}p={_number_str(self.p)}"
        if self.start != 0 or self.end is not None:
            s += f"@{_window_str(self.start, self.end)}"
        return s


def _window_str(start: int, end: Optional[int]) -> str:
    return f"{start}+" if end is None else f"{start}-{end}"


def _number_str(x: float) -> str:
    """Render a float compactly and canonically (4 → "4", 0.05 → "0.05")."""
    f = float(x)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


# -- the plan ----------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, canonically ordered collection of fault clauses."""

    crashes: Tuple[CrashFault, ...] = ()
    straggles: Tuple[StraggleFault, ...] = ()
    drops: Tuple[DropFault, ...] = ()
    corruptions: Tuple[CorruptFault, ...] = ()
    rand_corruptions: Tuple[RandomCorruptFault, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.crashes
            or self.straggles
            or self.drops
            or self.corruptions
            or self.rand_corruptions
        )

    def to_spec(self) -> str:
        """Canonical spec string: kinds in a fixed order, each kind sorted
        by (worker, start). ``parse_fault_spec(plan.to_spec()) == plan``."""
        clauses: List[str] = []
        clauses += [c.to_spec() for c in sorted(self.crashes, key=lambda c: (c.worker, c.start))]
        clauses += [s.to_spec() for s in sorted(self.straggles, key=lambda s: (s.worker, s.start))]
        clauses += [
            d.to_spec()
            for d in sorted(self.drops, key=lambda d: (-1 if d.worker is None else d.worker, d.start))
        ]
        clauses += [c.to_spec() for c in sorted(self.corruptions, key=lambda c: (c.worker, c.start))]
        clauses += [
            r.to_spec()
            for r in sorted(
                self.rand_corruptions,
                key=lambda r: (-1 if r.worker is None else r.worker, r.start),
            )
        ]
        return ",".join(clauses)

    def max_worker(self) -> int:
        """Highest worker id named anywhere in the plan (-1 if none)."""
        ids = [c.worker for c in self.crashes]
        ids += [s.worker for s in self.straggles]
        ids += [d.worker for d in self.drops if d.worker is not None]
        ids += [c.worker for c in self.corruptions]
        ids += [r.worker for r in self.rand_corruptions if r.worker is not None]
        return max(ids) if ids else -1

    def validate(self, n_workers: int) -> None:
        """Reject plans that name workers outside the cluster or would take
        every worker down simultaneously forever (an unrunnable cluster)."""
        hi = self.max_worker()
        if hi >= n_workers:
            raise ValueError(
                f"fault plan names worker {hi} but the cluster has only "
                f"{n_workers} workers (ids 0..{n_workers - 1})"
            )


_WINDOW_RE = re.compile(r"^(\d+)(\+|-(\d+))?$")


def _parse_window(text: str, clause: str) -> Tuple[int, Optional[int], bool]:
    """Return ``(start, end, explicit_open)``; ``end=None`` when bare/open."""
    m = _WINDOW_RE.match(text)
    if not m:
        raise ValueError(f"bad fault window {text!r} in clause {clause!r}")
    start = int(m.group(1))
    if m.group(2) is None:
        return start, None, False
    if m.group(2) == "+":
        return start, None, True
    end = int(m.group(3))
    if end <= start:
        raise ValueError(
            f"fault window must end after it starts, got {text!r} in {clause!r}"
        )
    return start, end, False


_CRASH_RE = re.compile(r"^crash:w(\d+)@(.+)$")
_STRAGGLE_RE = re.compile(r"^straggle:w(\d+)x([0-9.eE+-]+)@(.+)$")
_CORRUPT_RE = re.compile(r"^corrupt:w(\d+)@(.+)$")
_RAND_CORRUPT_RE = re.compile(r"^corrupt:(?:w(\d+):)?p=([0-9.eE+-]+?)(?:@(.+))?$")
_DROP_RE = re.compile(r"^drop:(?:w(\d+):)?p=([0-9.eE+-]+?)(?:@(.+))?$")


def parse_fault_spec(spec: Optional[str]) -> FaultPlan:
    """Parse the compact fault-spec grammar (module docstring) into a plan.

    Empty/None specs yield an empty plan. Raises ``ValueError`` with the
    offending clause on any syntax or range error.
    """
    if spec is None or not spec.strip():
        return FaultPlan()
    crashes: List[CrashFault] = []
    straggles: List[StraggleFault] = []
    drops: List[DropFault] = []
    corruptions: List[CorruptFault] = []
    rand_corruptions: List[RandomCorruptFault] = []
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("crash:"):
            m = _CRASH_RE.match(clause)
            if not m:
                raise ValueError(f"bad crash clause {clause!r}")
            start, end, _ = _parse_window(m.group(2), clause)
            crashes.append(CrashFault(worker=int(m.group(1)), start=start, end=end))
        elif clause.startswith("straggle:"):
            m = _STRAGGLE_RE.match(clause)
            if not m:
                raise ValueError(f"bad straggle clause {clause!r}")
            factor = float(m.group(2))
            if factor <= 0:
                raise ValueError(f"straggle factor must be > 0 in {clause!r}")
            start, end, _ = _parse_window(m.group(3), clause)
            straggles.append(
                StraggleFault(worker=int(m.group(1)), factor=factor, start=start, end=end)
            )
        elif clause.startswith("corrupt:") and "p=" in clause:
            # Probabilistic *adversarial* corruption, mirroring the drop
            # grammar: ``corrupt:[wID:]p=PROB[@window]``.
            m = _RAND_CORRUPT_RE.match(clause)
            if not m:
                raise ValueError(f"bad corrupt clause {clause!r}")
            p = float(m.group(2))
            if not 0.0 < p <= 1.0:
                raise ValueError(
                    f"corrupt probability must be in (0, 1], got {clause!r}"
                )
            worker = None if m.group(1) is None else int(m.group(1))
            if m.group(3) is None:
                start, end = 0, None
            else:
                start, end, _ = _parse_window(m.group(3), clause)
            rand_corruptions.append(
                RandomCorruptFault(p=p, worker=worker, start=start, end=end)
            )
        elif clause.startswith("corrupt:"):
            m = _CORRUPT_RE.match(clause)
            if not m:
                raise ValueError(f"bad corrupt clause {clause!r}")
            start, end, explicit_open = _parse_window(m.group(2), clause)
            if end is None:
                if explicit_open:
                    raise ValueError(
                        f"corrupt windows must be bounded (a permanent NaN "
                        f"source is never aggregatable): {clause!r}"
                    )
                end = start + 1  # bare "@s": a one-step burst
            corruptions.append(CorruptFault(worker=int(m.group(1)), start=start, end=end))
        elif clause.startswith("drop:"):
            m = _DROP_RE.match(clause)
            if not m:
                raise ValueError(f"bad drop clause {clause!r}")
            p = float(m.group(2))
            if not 0.0 < p <= 1.0:
                raise ValueError(f"drop probability must be in (0, 1], got {clause!r}")
            worker = None if m.group(1) is None else int(m.group(1))
            if m.group(3) is None:
                start, end = 0, None
            else:
                start, end, _ = _parse_window(m.group(3), clause)
            drops.append(DropFault(p=p, worker=worker, start=start, end=end))
        else:
            raise _unknown_kind_error(clause, "worker-level")
    # Normalize clause order (same keys as ``to_spec``) so plans compare by
    # content, not by the order the user happened to write clauses in —
    # this is what makes ``parse(plan.to_spec()) == plan`` hold universally.
    return FaultPlan(
        crashes=tuple(sorted(crashes, key=lambda c: (c.worker, c.start))),
        straggles=tuple(sorted(straggles, key=lambda s: (s.worker, s.start))),
        drops=tuple(
            sorted(drops, key=lambda d: (-1 if d.worker is None else d.worker, d.start))
        ),
        corruptions=tuple(sorted(corruptions, key=lambda c: (c.worker, c.start))),
        rand_corruptions=tuple(
            sorted(
                rand_corruptions,
                key=lambda r: (-1 if r.worker is None else r.worker, r.start),
            )
        ),
    )


def canonical_fault_spec(spec: Optional[str]) -> str:
    """Canonical form of a spec string (parse → re-emit)."""
    return parse_fault_spec(spec).to_spec()


# -- link-level faults --------------------------------------------------------

#: Registered worker-level fault kinds → grammar hint (one line each).
WORKER_FAULT_KINDS: Dict[str, str] = {
    "crash": "crash:wID@WINDOW",
    "straggle": "straggle:wIDxFACTOR@WINDOW",
    "drop": "drop:[wID:]p=PROB[@WINDOW]",
    "corrupt": "corrupt:wID@WINDOW  or  corrupt:[wID:]p=PROB[@WINDOW]",
}

#: Registered link-level fault kinds → grammar hint (one line each).
LINK_FAULT_KINDS: Dict[str, str] = {
    "partition": "partition:{wA,wB|wC..wD}@WINDOW",
    "flap": "flap:link(A,B)xPERIOD[@WINDOW]",
    "loss": "loss:[link(A,B):]p=PROB[@WINDOW]",
    "dup": "dup:[link(A,B):]p=PROB[@WINDOW]",
    "delay": "delay:link(A,B)xFACTOR[@WINDOW]",
}


def _unknown_kind_error(clause: str, level: str) -> ValueError:
    """One actionable error for any unknown/misplaced fault clause.

    Lists every registered kind — worker- and link-level — and where each
    belongs, so a user who typed a link clause into ``--fault-spec`` (or
    vice versa) is redirected instead of left guessing.
    """
    kind = clause.split(":", 1)[0].split("{", 1)[0].strip()
    lines = [f"unknown {level} fault clause {clause!r}"]
    if level == "worker-level" and kind in LINK_FAULT_KINDS:
        lines[0] = (
            f"{kind!r} is a link-level fault kind; it belongs in the "
            f"net-fault spec (--net-faults / ClusterConfig.net_fault_spec), "
            f"not the worker fault spec"
        )
    elif level == "link-level" and kind in WORKER_FAULT_KINDS:
        lines[0] = (
            f"{kind!r} is a worker-level fault kind; it belongs in the "
            f"worker fault spec (--fault-spec / ClusterConfig.fault_spec), "
            f"not the net-fault spec"
        )
    lines.append("registered worker-level kinds (--fault-spec):")
    lines += [f"  {k}: {g}" for k, g in WORKER_FAULT_KINDS.items()]
    lines.append("registered link-level kinds (--net-faults):")
    lines += [f"  {k}: {g}" for k, g in LINK_FAULT_KINDS.items()]
    return ValueError("\n".join(lines))


def _link_key(a: int, b: int) -> Tuple[int, int]:
    """Canonical undirected link id (smaller rank first)."""
    a, b = int(a), int(b)
    if a == b:
        raise ValueError(f"a link needs two distinct endpoints, got ({a},{b})")
    if a < 0 or b < 0:
        raise ValueError(f"link endpoints must be worker ranks >= 0, got ({a},{b})")
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class PartitionFault:
    """Links between different ``groups`` are down for steps ``[start, end)``.

    Groups are disjoint worker-id tuples; workers not named in any group
    are treated as members of the majority side (largest group, ties
    broken toward the group holding the lowest worker id).
    """

    groups: Tuple[Tuple[int, ...], ...]
    start: int
    end: Optional[int] = None

    kind = "partition"

    def covers(self, step: int) -> bool:
        return step >= self.start and (self.end is None or step < self.end)

    def side_of(self, worker: int) -> Optional[int]:
        for gi, g in enumerate(self.groups):
            if worker in g:
                return gi
        return None

    def majority_index(self) -> int:
        """Index of the majority group (largest; ties → lowest worker id)."""
        return min(
            range(len(self.groups)),
            key=lambda gi: (-len(self.groups[gi]), min(self.groups[gi])),
        )

    def severs(self, a: int, b: int) -> bool:
        """Is the (a, b) link cut? Unnamed workers ride with the majority."""
        maj = self.majority_index()
        sa = self.side_of(a)
        sb = self.side_of(b)
        sa = maj if sa is None else sa
        sb = maj if sb is None else sb
        return sa != sb

    def to_spec(self) -> str:
        return (
            "partition:{"
            + "|".join(_group_str(g) for g in self.groups)
            + "}@"
            + _window_str(self.start, self.end)
        )


@dataclass(frozen=True)
class FlapFault:
    """Link ``(a, b)`` toggles down/up with half-period ``period`` steps.

    Within the window the link is *down* on steps where
    ``((step - start) // period) % 2 == 0`` — so ``flap:link(2,5)x3@50+``
    is down on 50–52, up on 53–55, down on 56–58, and so on.
    """

    a: int
    b: int
    period: int
    start: int
    end: Optional[int] = None

    kind = "flap"

    def covers(self, step: int) -> bool:
        return step >= self.start and (self.end is None or step < self.end)

    def is_down(self, step: int) -> bool:
        if not self.covers(step):
            return False
        return ((step - self.start) // self.period) % 2 == 0

    def to_spec(self) -> str:
        return (
            f"flap:link({self.a},{self.b})x{self.period}"
            f"@{_window_str(self.start, self.end)}"
        )


@dataclass(frozen=True)
class LossFault:
    """Messages on ``link`` (``None`` = every link) are lost with
    probability ``p`` per attempt in ``[start, end)``."""

    p: float
    link: Optional[Tuple[int, int]] = None
    start: int = 0
    end: Optional[int] = None

    kind = "loss"

    def covers(self, a: int, b: int, step: int) -> bool:
        if self.link is not None and self.link != _link_key(a, b):
            return False
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        prefix = (
            "loss:" if self.link is None
            else f"loss:link({self.link[0]},{self.link[1]}):"
        )
        s = f"{prefix}p={_number_str(self.p)}"
        if self.start != 0 or self.end is not None:
            s += f"@{_window_str(self.start, self.end)}"
        return s


@dataclass(frozen=True)
class DupFault:
    """Messages on ``link`` (``None`` = every link) are duplicated with
    probability ``p``; delivery is idempotent but the duplicate transfer
    is charged to the metrics ledger."""

    p: float
    link: Optional[Tuple[int, int]] = None
    start: int = 0
    end: Optional[int] = None

    kind = "dup"

    def covers(self, a: int, b: int, step: int) -> bool:
        if self.link is not None and self.link != _link_key(a, b):
            return False
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        prefix = (
            "dup:" if self.link is None
            else f"dup:link({self.link[0]},{self.link[1]}):"
        )
        s = f"{prefix}p={_number_str(self.p)}"
        if self.start != 0 or self.end is not None:
            s += f"@{_window_str(self.start, self.end)}"
        return s


@dataclass(frozen=True)
class DelayFault:
    """Transfers on link ``(a, b)`` take ``factor``× longer in the window
    (overlapping delay clauses on one link multiply)."""

    a: int
    b: int
    factor: float
    start: int = 0
    end: Optional[int] = None

    kind = "delay"

    def covers(self, step: int) -> bool:
        return step >= self.start and (self.end is None or step < self.end)

    def to_spec(self) -> str:
        s = f"delay:link({self.a},{self.b})x{_number_str(self.factor)}"
        if self.start != 0 or self.end is not None:
            s += f"@{_window_str(self.start, self.end)}"
        return s


def _group_str(group: Sequence[int]) -> str:
    """Render a worker group compactly: runs of >= 3 become ``wA..wB``."""
    ids = sorted(group)
    parts: List[str] = []
    i = 0
    while i < len(ids):
        j = i
        while j + 1 < len(ids) and ids[j + 1] == ids[j] + 1:
            j += 1
        if j - i >= 2:
            parts.append(f"w{ids[i]}..w{ids[j]}")
        else:
            parts += [f"w{k}" for k in ids[i:j + 1]]
        i = j + 1
    return ",".join(parts)


@dataclass(frozen=True)
class NetFaultPlan:
    """Immutable, canonically ordered collection of link-fault clauses."""

    partitions: Tuple[PartitionFault, ...] = ()
    flaps: Tuple[FlapFault, ...] = ()
    losses: Tuple[LossFault, ...] = ()
    dups: Tuple[DupFault, ...] = ()
    delays: Tuple[DelayFault, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.partitions or self.flaps or self.losses or self.dups or self.delays
        )

    def to_spec(self) -> str:
        """Canonical spec: kinds in a fixed order, each sorted by its key.
        ``parse_net_fault_spec(plan.to_spec()) == plan``."""
        clauses: List[str] = []
        clauses += [p.to_spec() for p in sorted(self.partitions, key=lambda p: p.start)]
        clauses += [f.to_spec() for f in sorted(self.flaps, key=lambda f: (f.a, f.b, f.start))]
        clauses += [
            l.to_spec()
            for l in sorted(self.losses, key=lambda l: ((-1, -1) if l.link is None else l.link, l.start))
        ]
        clauses += [
            d.to_spec()
            for d in sorted(self.dups, key=lambda d: ((-1, -1) if d.link is None else d.link, d.start))
        ]
        clauses += [d.to_spec() for d in sorted(self.delays, key=lambda d: (d.a, d.b, d.start))]
        return ",".join(clauses)

    def max_worker(self) -> int:
        """Highest worker rank named anywhere in the plan (-1 if none)."""
        ids: List[int] = []
        for p in self.partitions:
            for g in p.groups:
                ids += list(g)
        for f in self.flaps:
            ids += [f.a, f.b]
        for l in self.losses:
            if l.link is not None:
                ids += list(l.link)
        for d in self.dups:
            if d.link is not None:
                ids += list(d.link)
        for d in self.delays:
            ids += [d.a, d.b]
        return max(ids) if ids else -1

    def validate(self, n_workers: int) -> None:
        hi = self.max_worker()
        if hi >= n_workers:
            raise ValueError(
                f"net-fault plan names worker {hi} but the cluster has only "
                f"{n_workers} workers (ids 0..{n_workers - 1})"
            )
        for p in self.partitions:
            seen: set = set()
            for g in p.groups:
                overlap = seen & set(g)
                if overlap:
                    raise ValueError(
                        f"partition groups must be disjoint; worker(s) "
                        f"{sorted(overlap)} appear in more than one group of "
                        f"{p.to_spec()!r}"
                    )
                seen |= set(g)


_LINK_RE = re.compile(r"^link\((\d+),(\d+)\)$")
_FLAP_RE = re.compile(r"^flap:link\((\d+),(\d+)\)x(\d+)(?:@(.+))?$")
_DELAY_RE = re.compile(r"^delay:link\((\d+),(\d+)\)x([0-9.eE+-]+?)(?:@(.+))?$")
_LINK_PROB_RE = re.compile(
    r"^(loss|dup):(?:link\((\d+),(\d+)\):)?p=([0-9.eE+-]+?)(?:@(.+))?$"
)
_PARTITION_RE = re.compile(r"^partition:\{(.+)\}@(.+)$")
_MEMBER_RE = re.compile(r"^w(\d+)(?:\.\.w?(\d+))?$")


def _split_net_clauses(spec: str) -> List[str]:
    """Split on commas outside ``{...}``/``(...)`` (partition groups and
    link endpoints legitimately contain commas)."""
    clauses: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in spec:
        if ch in "{(":
            depth += 1
        elif ch in "})":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced braces/parens in net-fault spec {spec!r}")
        if ch == "," and depth == 0:
            clauses.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced braces/parens in net-fault spec {spec!r}")
    clauses.append("".join(cur))
    return [c.strip() for c in clauses if c.strip()]


def _parse_group(text: str, clause: str) -> Tuple[int, ...]:
    members: List[int] = []
    for raw in text.split(","):
        m = _MEMBER_RE.match(raw.strip())
        if not m:
            raise ValueError(
                f"bad partition group member {raw.strip()!r} in {clause!r}; "
                f"expected wID or wID..wID"
            )
        lo = int(m.group(1))
        if m.group(2) is None:
            members.append(lo)
        else:
            hi = int(m.group(2))
            if hi <= lo:
                raise ValueError(
                    f"bad worker range w{lo}..w{hi} in {clause!r}; "
                    f"ranges must ascend"
                )
            members += list(range(lo, hi + 1))
    if not members:
        raise ValueError(f"empty partition group in {clause!r}")
    return tuple(sorted(set(members)))


def _parse_prob(text: str, clause: str) -> float:
    p = float(text)
    if not 0.0 < p <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {clause!r}")
    return p


def parse_net_fault_spec(spec: Optional[str]) -> NetFaultPlan:
    """Parse the link-level fault grammar (module docstring) into a plan.

    Empty/None specs yield an empty plan. Unknown kinds raise one
    actionable error listing every registered fault kind (worker- and
    link-level) and which spec each belongs in.
    """
    if spec is None or not spec.strip():
        return NetFaultPlan()
    partitions: List[PartitionFault] = []
    flaps: List[FlapFault] = []
    losses: List[LossFault] = []
    dups: List[DupFault] = []
    delays: List[DelayFault] = []
    for clause in _split_net_clauses(spec):
        if clause.startswith("partition:"):
            m = _PARTITION_RE.match(clause)
            if not m:
                raise ValueError(
                    f"bad partition clause {clause!r}; expected "
                    f"{LINK_FAULT_KINDS['partition']}"
                )
            groups = tuple(
                _parse_group(g, clause) for g in m.group(1).split("|")
            )
            if len(groups) < 2:
                raise ValueError(
                    f"a partition needs at least two groups, got {clause!r}"
                )
            start, end, _ = _parse_window(m.group(2), clause)
            partitions.append(PartitionFault(groups=groups, start=start, end=end))
        elif clause.startswith("flap:"):
            m = _FLAP_RE.match(clause)
            if not m:
                raise ValueError(
                    f"bad flap clause {clause!r}; expected "
                    f"{LINK_FAULT_KINDS['flap']}"
                )
            a, b = _link_key(int(m.group(1)), int(m.group(2)))
            period = int(m.group(3))
            if period < 1:
                raise ValueError(f"flap period must be >= 1 in {clause!r}")
            if m.group(4) is None:
                start, end = 0, None
            else:
                start, end, _ = _parse_window(m.group(4), clause)
            flaps.append(FlapFault(a=a, b=b, period=period, start=start, end=end))
        elif clause.startswith(("loss:", "dup:")):
            m = _LINK_PROB_RE.match(clause)
            if not m:
                kind = clause.split(":", 1)[0]
                raise ValueError(
                    f"bad {kind} clause {clause!r}; expected "
                    f"{LINK_FAULT_KINDS[kind]}"
                )
            link = (
                None if m.group(2) is None
                else _link_key(int(m.group(2)), int(m.group(3)))
            )
            p = _parse_prob(m.group(4), clause)
            if m.group(5) is None:
                start, end = 0, None
            else:
                start, end, _ = _parse_window(m.group(5), clause)
            target = losses if m.group(1) == "loss" else dups
            cls = LossFault if m.group(1) == "loss" else DupFault
            target.append(cls(p=p, link=link, start=start, end=end))
        elif clause.startswith("delay:"):
            m = _DELAY_RE.match(clause)
            if not m:
                raise ValueError(
                    f"bad delay clause {clause!r}; expected "
                    f"{LINK_FAULT_KINDS['delay']}"
                )
            a, b = _link_key(int(m.group(1)), int(m.group(2)))
            factor = float(m.group(3))
            if factor <= 0:
                raise ValueError(f"delay factor must be > 0 in {clause!r}")
            if m.group(4) is None:
                start, end = 0, None
            else:
                start, end, _ = _parse_window(m.group(4), clause)
            delays.append(DelayFault(a=a, b=b, factor=factor, start=start, end=end))
        else:
            raise _unknown_kind_error(clause, "link-level")
    return NetFaultPlan(
        partitions=tuple(sorted(partitions, key=lambda p: p.start)),
        flaps=tuple(sorted(flaps, key=lambda f: (f.a, f.b, f.start))),
        losses=tuple(
            sorted(losses, key=lambda l: ((-1, -1) if l.link is None else l.link, l.start))
        ),
        dups=tuple(
            sorted(dups, key=lambda d: ((-1, -1) if d.link is None else d.link, d.start))
        ),
        delays=tuple(sorted(delays, key=lambda d: (d.a, d.b, d.start))),
    )


def canonical_net_fault_spec(spec: Optional[str]) -> str:
    """Canonical form of a net-fault spec string (parse → re-emit)."""
    return parse_net_fault_spec(spec).to_spec()


# -- the injector ------------------------------------------------------------


@dataclass
class StepFaults:
    """Fault transitions and state at one step, as seen by a trainer.

    ``live`` is the list of worker ids that are up this step; ``crashed`` /
    ``rejoined`` are the transitions that happened *at* this step (rejoined
    workers are live and need their state restored); ``corrupted`` lists the
    live workers whose gradient will be NaN-poisoned this step;
    ``adversarial`` lists the live workers whose gradient is replaced with a
    finite hostile vector (they still *look* healthy to any finiteness
    check and stay in the contributing set — only robust aggregation or
    health screening can defuse them).
    """

    step: int
    live: List[int]
    crashed: List[int]
    rejoined: List[int]
    corrupted: List[int]
    adversarial: List[int] = field(default_factory=list)


class FaultInjector:
    """Stateless-per-step fault oracle for one simulated cluster.

    All queries are pure functions of ``(plan, seed, worker, step)``; the
    injector holds no evolving state, so checkpoint/resume needs nothing
    from it and serial/threaded executors see identical faults.
    """

    def __init__(self, plan: FaultPlan, n_workers: int, seed: int = 0):
        plan.validate(n_workers)
        self.plan = plan
        self.n_workers = int(n_workers)
        self.seed = int(seed)

    @classmethod
    def disabled(cls, n_workers: int) -> "FaultInjector":
        return cls(FaultPlan(), n_workers)

    @property
    def active(self) -> bool:
        return not self.plan.empty

    # -- liveness ---------------------------------------------------------
    def is_down(self, worker: int, step: int) -> bool:
        return any(c.worker == worker and c.covers(step) for c in self.plan.crashes)

    def live_workers(self, step: int) -> List[int]:
        return [w for w in range(self.n_workers) if not self.is_down(w, step)]

    def begin_step(self, step: int) -> StepFaults:
        """Liveness and transitions for ``step`` (pure; no state mutated)."""
        live = self.live_workers(step)
        crashed = [
            c.worker
            for c in self.plan.crashes
            # is_down(w, -1) is False, so start-of-run crashes register too.
            if c.start == step and not self.is_down(c.worker, step - 1)
        ] if self.active else []
        # A worker "rejoins" at the first step after a crash window where it
        # is up again (adjacent windows merge into one outage).
        rejoined = [
            c.worker
            for c in self.plan.crashes
            if c.end == step and not self.is_down(c.worker, step)
        ] if self.active else []
        corrupted = [
            c.worker
            for c in self.plan.corruptions
            if c.covers(step) and c.worker in live
        ] if self.active else []
        # Dedup while preserving order (overlapping clauses for one worker).
        crashed = list(dict.fromkeys(crashed))
        rejoined = list(dict.fromkeys(rejoined))
        corrupted = list(dict.fromkeys(corrupted))
        corrupted_set = set(corrupted)
        adversarial = [
            w
            for w in live
            # A NaN burst takes precedence over the adversarial draw; the
            # draw itself is still consumed deterministically per worker.
            if self.adversarial_corrupts(w, step) and w not in corrupted_set
        ] if self.plan.rand_corruptions else []
        return StepFaults(
            step=step, live=live, crashed=crashed,
            rejoined=rejoined, corrupted=corrupted,
            adversarial=adversarial,
        )

    # -- stragglers -------------------------------------------------------
    def straggle_factor(self, worker: int, step: int) -> float:
        """Combined multiplicative slowdown for ``worker`` at ``step``
        (overlapping straggle windows multiply)."""
        f = 1.0
        for s in self.plan.straggles:
            if s.worker == worker and s.covers(step):
                f *= s.factor
        return f

    # -- lossy uploads ----------------------------------------------------
    def _event_rng(self, worker: int, step: int, salt: int) -> np.random.Generator:
        # Keyed on (seed, worker, step): identical draws no matter which
        # thread, executor or call order asks.
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, worker, step, salt])
        )

    def upload_retries(self, worker: int, step: int) -> Tuple[int, bool]:
        """Number of failed upload attempts before success, and whether the
        update was abandoned (``retries == MAX_UPLOAD_RETRIES``).

        Deterministic per ``(seed, worker, step)``. With no matching drop
        clause this is ``(0, False)`` without consuming any randomness.
        """
        p = 0.0
        for d in self.plan.drops:
            if d.covers(worker, step):
                # Independent loss channels compose: 1 - Π(1 - p_i).
                p = 1.0 - (1.0 - p) * (1.0 - d.p)
        if p <= 0.0:
            return 0, False
        rng = self._event_rng(worker, step, salt=0xD0)
        retries = 0
        while retries < MAX_UPLOAD_RETRIES and rng.random() < p:
            retries += 1
        return retries, retries >= MAX_UPLOAD_RETRIES

    def upload_penalty_seconds(
        self, worker: int, step: int, transfer_s: float
    ) -> Tuple[float, int, bool]:
        """Simulated extra seconds for this worker's upload at this step.

        Returns ``(extra_seconds, retries, lost)``. Each failed attempt
        costs one (straggle-scaled) retransfer plus exponential backoff;
        an abandoned upload still pays for every attempt it made.
        """
        retries, lost = self.upload_retries(worker, step)
        if retries == 0:
            return 0.0, 0, False
        scaled = transfer_s * self.straggle_factor(worker, step)
        tr = obs.active()
        if tr is not None:
            tr.metrics.inc("faults.upload_retries", retries)
            if lost:
                tr.metrics.inc("faults.uploads_lost")
        return retries * scaled + retry_backoff_seconds(retries), retries, lost

    # -- corruption -------------------------------------------------------
    def corrupts(self, worker: int, step: int) -> bool:
        return any(
            c.worker == worker and c.covers(step) for c in self.plan.corruptions
        )

    def corrupt_gradient(self, worker: int, step: int, grad: np.ndarray) -> np.ndarray:
        """Return a NaN/inf-poisoned copy of ``grad`` (deterministic burst:
        ~1% of entries NaN, one entry ±inf)."""
        tr = obs.active()
        if tr is not None:
            tr.metrics.inc("faults.corruptions")
        rng = self._event_rng(worker, step, salt=0xC0)
        out = np.array(grad, dtype=np.float64, copy=True)
        n = out.size
        k = max(1, n // 100)
        idx = rng.choice(n, size=min(k, n), replace=False)
        out.flat[idx] = np.nan
        out.flat[int(rng.integers(0, n))] = np.inf if rng.random() < 0.5 else -np.inf
        return out

    # -- adversarial (finite) corruption ----------------------------------
    #: Norm of an adversarial gradient relative to the honest one. Large
    #: enough that one hostile vector in a mean of ~8-16 visibly derails
    #: training; trivially trimmed by any coordinate-wise robust rule.
    ADVERSARIAL_BOOST = 40.0

    def adversarial_corrupts(self, worker: int, step: int) -> bool:
        """Deterministic Bernoulli: is this worker's gradient replaced with
        a hostile vector at this step? Independent clauses compose like
        drop probabilities."""
        p = 0.0
        for r in self.plan.rand_corruptions:
            if r.covers(worker, step):
                p = 1.0 - (1.0 - p) * (1.0 - r.p)
        if p <= 0.0:
            return False
        rng = self._event_rng(worker, step, salt=0xAD)
        return bool(rng.random() < p)

    def adversarial_gradient(
        self, worker: int, step: int, grad: np.ndarray
    ) -> np.ndarray:
        """A finite hostile gradient: sign-flipped and noise-boosted to
        ``ADVERSARIAL_BOOST ×`` the honest norm.

        Every entry is finite, so finiteness checks pass and a plain mean
        averages it straight into the global model — the Byzantine threat
        model robust aggregation exists for. Deterministic per
        ``(seed, worker, step)``.
        """
        tr = obs.active()
        if tr is not None:
            tr.metrics.inc("faults.adversarial")
        rng = self._event_rng(worker, step, salt=0xAE)
        g = np.asarray(grad, dtype=np.float64)
        norm = float(np.linalg.norm(g))
        if norm == 0.0 or not np.isfinite(norm):
            norm = 1.0
        noise = rng.standard_normal(g.shape)
        noise *= (norm / max(float(np.linalg.norm(noise)), 1e-30))
        return self.ADVERSARIAL_BOOST * (noise - g)

    # -- introspection ----------------------------------------------------
    def event_trace(self, n_steps: int) -> List[Tuple]:
        """Flat, ordered list of every event the plan injects in
        ``[0, n_steps)`` — the property-test surface for determinism.
        """
        trace: List[Tuple] = []
        for step in range(n_steps):
            sf = self.begin_step(step)
            for w in sf.crashed:
                trace.append(("crash", step, w))
            for w in sf.rejoined:
                trace.append(("rejoin", step, w))
            for w in sf.live:
                f = self.straggle_factor(w, step)
                if f != 1.0:
                    trace.append(("straggle", step, w, f))
                retries, lost = self.upload_retries(w, step)
                if retries:
                    trace.append(("drop", step, w, retries, lost))
            for w in sf.corrupted:
                trace.append(("corrupt", step, w))
            for w in sf.adversarial:
                trace.append(("adv_corrupt", step, w))
        return trace
