"""Central parameter server.

Implements the PS side of Alg. 1 (``pushToPS`` / ``pullFromPS``) plus the
versioned asynchronous interface SSP needs (each async push advances the
global version; staleness of a worker = versions applied since it last
pulled).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils import fastpath
from repro.utils.flatten import mean_into


class ParameterServer:
    """Holds the flat global parameter vector.

    Synchronous aggregation (BSP / FedAvg / SelSync-PA) averages pushed
    vectors; asynchronous application (SSP) applies each worker's update as
    it arrives and tracks versions.

    When the fast path is enabled, aggregation averages into preallocated
    buffers (``mean_into`` is bitwise-identical to ``np.mean(np.stack(...),
    axis=0)``) and hands out read-only views, so a sync step allocates
    nothing proportional to the model size.
    """

    def __init__(self, init_params: np.ndarray):
        self._params = np.array(init_params, dtype=np.float64, copy=True)
        # Scratch for gradient aggregation; separate from ``_params`` because
        # GA averages gradients without moving the globals.
        self._agg: Optional[np.ndarray] = None
        self.version: int = 0

    @property
    def n_params(self) -> int:
        return int(self._params.size)

    def _readonly(self, vec: np.ndarray) -> np.ndarray:
        view = vec.view()
        view.flags.writeable = False
        return view

    # -- synchronous interface --------------------------------------------
    def pull(self, copy: bool = True) -> np.ndarray:
        """Current global parameters.

        A private copy by default (workers go on to mutate their replicas);
        ``copy=False`` returns a read-only view for call sites that copy
        downstream anyway (e.g. straight into a worker's arena).
        """
        if copy:
            return self._params.copy()
        return self._readonly(self._params)

    def aggregate_params(self, pushed: Sequence[np.ndarray]) -> np.ndarray:
        """Parameter aggregation: global ← mean of pushed replicas."""
        self._check(pushed)
        self.version += 1
        if fastpath.is_enabled():
            mean_into(pushed, out=self._params)
            return self._readonly(self._params)
        self._params = np.mean(np.stack(pushed), axis=0)
        return self._params.copy()

    def aggregate_grads(self, grads: Sequence[np.ndarray]) -> np.ndarray:
        """Gradient aggregation: return the mean gradient (global params are
        NOT moved — in GA each worker applies the mean to its own replica,
        which is exactly the divergence mechanism §III-C describes)."""
        self._check(grads)
        self.version += 1
        if fastpath.is_enabled():
            if self._agg is None or self._agg.shape != self._params.shape:
                self._agg = np.empty_like(self._params)
            mean_into(grads, out=self._agg)
            return self._readonly(self._agg)
        return np.mean(np.stack(grads), axis=0)

    # -- asynchronous (SSP) interface ------------------------------------------
    def async_apply(self, update: np.ndarray) -> int:
        """Apply one worker's update vector to the global params immediately.

        Returns the new version. ``update`` is the delta to *add* (callers
        pass ``-lr * grad``).
        """
        if update.shape != self._params.shape:
            raise ValueError(
                f"update shape {update.shape} != params {self._params.shape}"
            )
        self._params += update
        self.version += 1
        return self.version

    def _check(self, vectors: Sequence[np.ndarray]) -> None:
        if len(vectors) == 0:
            raise ValueError("nothing to aggregate")
        for v in vectors:
            if v.shape != self._params.shape:
                raise ValueError(
                    f"vector shape {v.shape} != params {self._params.shape}"
                )

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        return {"params": self._params.copy(), "version": self.version}

    def load_state_dict(self, state: dict) -> None:
        params = np.asarray(state["params"], dtype=np.float64)
        if params.shape != self._params.shape:
            raise ValueError(
                f"server state mismatch: checkpoint params {params.shape} "
                f"vs {self._params.shape}"
            )
        self._params = params.copy()
        self._agg = None
        self.version = int(state["version"])
