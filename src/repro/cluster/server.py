"""Central parameter server.

Implements the PS side of Alg. 1 (``pushToPS`` / ``pullFromPS``) plus the
versioned asynchronous interface SSP needs (each async push advances the
global version; staleness of a worker = versions applied since it last
pulled).

Aggregation is pluggable: with ``aggregator=None`` (the default) the PS
runs the original plain-mean arithmetic bit-for-bit; handing it a
:class:`repro.core.robust.Aggregator` routes every synchronous round
through that strategy (non-finite pre-filter included) and the
asynchronous path through its ``async_transform`` hook. Either way a
non-finite update can no longer silently corrupt the global model: the
mean path rejects it with a typed
:class:`~repro.cluster.faults.NonFiniteUpdateError`, a robust aggregator
drops it on the floor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.faults import NonFiniteUpdateError
from repro.utils import fastpath
from repro.utils.flatten import mean_into


class ParameterServer:
    """Holds the flat global parameter vector.

    Synchronous aggregation (BSP / FedAvg / SelSync-PA) averages pushed
    vectors; asynchronous application (SSP) applies each worker's update as
    it arrives and tracks versions.

    When the fast path is enabled, aggregation averages into preallocated
    buffers (``mean_into`` is bitwise-identical to ``np.mean(np.stack(...),
    axis=0)``) and hands out read-only views, so a sync step allocates
    nothing proportional to the model size.
    """

    def __init__(self, init_params: np.ndarray, aggregator=None):
        self._params = np.array(init_params, dtype=np.float64, copy=True)
        # Scratch for gradient aggregation; separate from ``_params`` because
        # GA averages gradients without moving the globals.
        self._agg: Optional[np.ndarray] = None
        self.version: int = 0
        #: Optional robust :class:`~repro.core.robust.Aggregator`; ``None``
        #: keeps the exact legacy mean path (byte-identity contract).
        self.aggregator = aggregator
        #: Full-cluster contributor count, set by the trainer. When a round
        #: aggregates fewer vectors (crash, quarantine, partition, lost
        #: upload), ``degraded_rounds`` ticks — the PS-side ledger of how
        #: often the model moved on partial information.
        self.expected_contributors: Optional[int] = None
        self.degraded_rounds: int = 0

    @property
    def n_params(self) -> int:
        return int(self._params.size)

    def _readonly(self, vec: np.ndarray) -> np.ndarray:
        view = vec.view()
        view.flags.writeable = False
        return view

    # -- synchronous interface --------------------------------------------
    def pull(self, copy: bool = True) -> np.ndarray:
        """Current global parameters.

        A private copy by default (workers go on to mutate their replicas);
        ``copy=False`` returns a read-only view for call sites that copy
        downstream anyway (e.g. straight into a worker's arena).
        """
        if copy:
            return self._params.copy()
        return self._readonly(self._params)

    def aggregate_params(self, pushed: Sequence[np.ndarray]) -> np.ndarray:
        """Parameter aggregation: global ← aggregate of pushed replicas."""
        self._check(pushed)
        self.version += 1
        if self.aggregator is not None:
            self.aggregator.reduce(pushed, out=self._params, where="params")
            return self._readonly(self._params)
        if fastpath.is_enabled():
            mean_into(pushed, out=self._params)
            return self._readonly(self._params)
        self._params = np.mean(np.stack(pushed), axis=0)
        return self._params.copy()

    def aggregate_grads(self, grads: Sequence[np.ndarray]) -> np.ndarray:
        """Gradient aggregation: return the aggregate gradient (global
        params are NOT moved — in GA each worker applies the aggregate to
        its own replica, which is exactly the divergence mechanism §III-C
        describes)."""
        self._check(grads)
        self.version += 1
        if self.aggregator is not None:
            if self._agg is None or self._agg.shape != self._params.shape:
                self._agg = np.empty_like(self._params)
            self.aggregator.reduce(grads, out=self._agg, where="grads")
            return self._readonly(self._agg)
        if fastpath.is_enabled():
            if self._agg is None or self._agg.shape != self._params.shape:
                self._agg = np.empty_like(self._params)
            mean_into(grads, out=self._agg)
            return self._readonly(self._agg)
        return np.mean(np.stack(grads), axis=0)

    # -- asynchronous (SSP) interface ------------------------------------------
    def async_apply(self, update: np.ndarray) -> int:
        """Apply one worker's update vector to the global params immediately.

        Returns the new version. ``update`` is the delta to *add* (callers
        pass ``-lr * grad``). Non-finite updates are rejected with a typed
        error — a NaN entering here would poison the globals for every
        later pull. With a robust aggregator installed, the update first
        passes through its ``async_transform`` hook (norm clipping).
        """
        if update.shape != self._params.shape:
            raise ValueError(
                f"update shape {update.shape} != params {self._params.shape}"
            )
        if not np.isfinite(update).all():
            raise NonFiniteUpdateError(
                "async update contains NaN/Inf; refusing to apply it to the "
                "global model"
            )
        if self.aggregator is not None:
            update = self.aggregator.async_transform(update)
        self._params += update
        self.version += 1
        return self.version

    def _check(self, vectors: Sequence[np.ndarray]) -> None:
        if len(vectors) == 0:
            raise ValueError("nothing to aggregate")
        if (
            self.expected_contributors is not None
            and len(vectors) < self.expected_contributors
        ):
            self.degraded_rounds += 1
        for v in vectors:
            if v.shape != self._params.shape:
                raise ValueError(
                    f"vector shape {v.shape} != params {self._params.shape}"
                )
        # The plain mean has breakdown point 0: one NaN poisons the global
        # model, so reject loudly. Robust aggregators pre-filter instead
        # (dropping the offender is the whole point of having them).
        if self.aggregator is None:
            for i, v in enumerate(vectors):
                if not np.isfinite(v).all():
                    raise NonFiniteUpdateError(
                        f"update vector {i} of {len(vectors)} contains "
                        "NaN/Inf; refusing to average it into the global "
                        "model (use a robust aggregator to drop it instead)"
                    )

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        state = {"params": self._params.copy(), "version": self.version}
        # Key present only once a degraded round happened, so fault-free
        # checkpoints stay byte-identical to builds without the counter.
        if self.degraded_rounds:
            state["degraded_rounds"] = self.degraded_rounds
        return state

    def load_state_dict(self, state: dict) -> None:
        params = np.asarray(state["params"], dtype=np.float64)
        if params.shape != self._params.shape:
            raise ValueError(
                f"server state mismatch: checkpoint params {params.shape} "
                f"vs {self._params.shape}"
            )
        self._params = params.copy()
        self._agg = None
        self.version = int(state["version"])
        self.degraded_rounds = int(state.get("degraded_rounds", 0))
