"""Central parameter server.

Implements the PS side of Alg. 1 (``pushToPS`` / ``pullFromPS``) plus the
versioned asynchronous interface SSP needs (each async push advances the
global version; staleness of a worker = versions applied since it last
pulled).

Aggregation is pluggable: with ``aggregator=None`` (the default) the PS
runs the original plain-mean arithmetic bit-for-bit; handing it a
:class:`repro.core.robust.Aggregator` routes every synchronous round
through that strategy (non-finite pre-filter included) and the
asynchronous path through its ``async_transform`` hook. Either way a
non-finite update can no longer silently corrupt the global model: the
mean path rejects it with a typed
:class:`~repro.cluster.faults.NonFiniteUpdateError`, a robust aggregator
drops it on the floor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.faults import NonFiniteUpdateError
from repro.utils import fastpath
from repro.utils.flatten import mean_into


class ParameterServer:
    """Holds the flat global parameter vector.

    Synchronous aggregation (BSP / FedAvg / SelSync-PA) averages pushed
    vectors; asynchronous application (SSP) applies each worker's update as
    it arrives and tracks versions.

    When the fast path is enabled, aggregation averages into preallocated
    buffers (``mean_into`` is bitwise-identical to ``np.mean(np.stack(...),
    axis=0)``) and hands out read-only views, so a sync step allocates
    nothing proportional to the model size.
    """

    def __init__(self, init_params: np.ndarray, aggregator=None):
        self._params = np.array(init_params, dtype=np.float64, copy=True)
        # Scratch for gradient aggregation; separate from ``_params`` because
        # GA averages gradients without moving the globals.
        self._agg: Optional[np.ndarray] = None
        self.version: int = 0
        #: Optional robust :class:`~repro.core.robust.Aggregator`; ``None``
        #: keeps the exact legacy mean path (byte-identity contract).
        self.aggregator = aggregator
        #: Full-cluster contributor count, set by the trainer. When a round
        #: aggregates fewer vectors (crash, quarantine, partition, lost
        #: upload), ``degraded_rounds`` ticks — the PS-side ledger of how
        #: often the model moved on partial information.
        self.expected_contributors: Optional[int] = None
        self.degraded_rounds: int = 0

    @property
    def n_params(self) -> int:
        return int(self._params.size)

    def _readonly(self, vec: np.ndarray) -> np.ndarray:
        view = vec.view()
        view.flags.writeable = False
        return view

    # -- synchronous interface --------------------------------------------
    def pull(self, copy: bool = True) -> np.ndarray:
        """Current global parameters.

        A private copy by default (workers go on to mutate their replicas);
        ``copy=False`` returns a read-only view for call sites that copy
        downstream anyway (e.g. straight into a worker's arena).
        """
        if copy:
            return self._params.copy()
        return self._readonly(self._params)

    def aggregate_params(self, pushed: Sequence[np.ndarray]) -> np.ndarray:
        """Parameter aggregation: global ← aggregate of pushed replicas."""
        self._check(pushed)
        self.version += 1
        if self.aggregator is not None:
            self.aggregator.reduce(pushed, out=self._params, where="params")
            return self._readonly(self._params)
        if fastpath.is_enabled():
            mean_into(pushed, out=self._params)
            return self._readonly(self._params)
        self._params = np.mean(np.stack(pushed), axis=0)
        return self._params.copy()

    def aggregate_grads(self, grads: Sequence[np.ndarray]) -> np.ndarray:
        """Gradient aggregation: return the aggregate gradient (global
        params are NOT moved — in GA each worker applies the aggregate to
        its own replica, which is exactly the divergence mechanism §III-C
        describes)."""
        self._check(grads)
        self.version += 1
        if self.aggregator is not None:
            if self._agg is None or self._agg.shape != self._params.shape:
                self._agg = np.empty_like(self._params)
            self.aggregator.reduce(grads, out=self._agg, where="grads")
            return self._readonly(self._agg)
        if fastpath.is_enabled():
            if self._agg is None or self._agg.shape != self._params.shape:
                self._agg = np.empty_like(self._params)
            mean_into(grads, out=self._agg)
            return self._readonly(self._agg)
        return np.mean(np.stack(grads), axis=0)

    # -- asynchronous (SSP) interface ------------------------------------------
    def async_apply(self, update: np.ndarray) -> int:
        """Apply one worker's update vector to the global params immediately.

        Returns the new version. ``update`` is the delta to *add* (callers
        pass ``-lr * grad``). Non-finite updates are rejected with a typed
        error — a NaN entering here would poison the globals for every
        later pull. With a robust aggregator installed, the update first
        passes through its ``async_transform`` hook (norm clipping).
        """
        if update.shape != self._params.shape:
            raise ValueError(
                f"update shape {update.shape} != params {self._params.shape}"
            )
        if not np.isfinite(update).all():
            raise NonFiniteUpdateError(
                "async update contains NaN/Inf; refusing to apply it to the "
                "global model"
            )
        if self.aggregator is not None:
            update = self.aggregator.async_transform(update)
        self._params += update
        self.version += 1
        return self.version

    def _check(self, vectors: Sequence[np.ndarray]) -> None:
        if len(vectors) == 0:
            raise ValueError("nothing to aggregate")
        if (
            self.expected_contributors is not None
            and len(vectors) < self.expected_contributors
        ):
            self.degraded_rounds += 1
        for v in vectors:
            if v.shape != self._params.shape:
                raise ValueError(
                    f"vector shape {v.shape} != params {self._params.shape}"
                )
        # The plain mean has breakdown point 0: one NaN poisons the global
        # model, so reject loudly. Robust aggregators pre-filter instead
        # (dropping the offender is the whole point of having them).
        if self.aggregator is None:
            for i, v in enumerate(vectors):
                if not np.isfinite(v).all():
                    raise NonFiniteUpdateError(
                        f"update vector {i} of {len(vectors)} contains "
                        "NaN/Inf; refusing to average it into the global "
                        "model (use a robust aggregator to drop it instead)"
                    )

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        state = {"params": self._params.copy(), "version": self.version}
        # Key present only once a degraded round happened, so fault-free
        # checkpoints stay byte-identical to builds without the counter.
        if self.degraded_rounds:
            state["degraded_rounds"] = self.degraded_rounds
        return state

    def load_state_dict(self, state: dict) -> None:
        params = np.asarray(state["params"], dtype=np.float64)
        if params.shape != self._params.shape:
            raise ValueError(
                f"server state mismatch: checkpoint params {params.shape} "
                f"vs {self._params.shape}"
            )
        self._params = params.copy()
        self._agg = None
        self.version = int(state["version"])
        self.degraded_rounds = int(state.get("degraded_rounds", 0))


class ShardedParameterServer(ParameterServer):
    """Parameter server split into ``S`` independently aggregated shards.

    Each shard owns a contiguous, layer-aligned slice of the flat parameter
    vector (geometry from a :class:`~repro.comm.sharding.ShardSpec`) and
    runs its round independently: robust aggregators see one shard's slices,
    per-shard versions advance separately, and a worker whose uplink push
    for one shard was lost is excluded from *that shard's* aggregation only
    (a degraded shard round) instead of the whole sync.

    Arithmetic contract: with no absences and the plain mean, aggregating
    shard-by-shard is **bitwise identical** to the unsharded path —
    ``mean_into`` accumulates elementwise, so slicing the reduction changes
    nothing. The sharded server therefore alters *when parallelism is
    charged* and *how faults degrade*, never fault-free numerics.

    The asynchronous (SSP) path is inherited unchanged: an async push is a
    full-vector delta applied atomically, which per shard is the same
    write; only the synchronous rounds track per-shard versions.
    """

    def __init__(self, init_params: np.ndarray, spec, aggregator=None):
        super().__init__(init_params, aggregator=aggregator)
        if spec.n_params != self._params.size:
            raise ValueError(
                f"shard spec covers {spec.n_params} params but the model "
                f"has {self._params.size}"
            )
        self.spec = spec
        self.shard_versions: List[int] = [0] * spec.n_shards
        #: Shard-round ledger: ticks once per shard whose round ran with
        #: fewer contributors than pushed (or did not run at all).
        self.degraded_shard_rounds: int = 0
        # shard -> positions (indices into the pushed list) absent from the
        # next round; consumed by the next aggregate call.
        self._shard_absent: dict = {}

    @property
    def n_shards(self) -> int:
        return int(self.spec.n_shards)

    def set_shard_absences(self, absences) -> None:
        """Positions per shard to exclude from the next aggregation round
        (mirrors :meth:`repro.comm.collectives.SimGroup.set_shard_absences`)."""
        clean = {}
        for s, positions in absences.items():
            s = int(s)
            if not 0 <= s < self.n_shards:
                raise ValueError(
                    f"shard {s} out of range [0, {self.n_shards})"
                )
            if positions:
                clean[s] = frozenset(int(p) for p in positions)
        self._shard_absent = clean

    def _take_shard_absences(self) -> dict:
        absent = self._shard_absent
        self._shard_absent = {}
        return absent

    def pull_shard(self, shard: int, copy: bool = True) -> np.ndarray:
        """Current global parameters of one shard."""
        view = self._params[self.spec.slices()[shard]]
        return view.copy() if copy else self._readonly(view)

    def _reduce_shards(
        self, pushed: Sequence[np.ndarray], out: np.ndarray, where: str
    ) -> None:
        absent = self._take_shard_absences()
        for s, sl in enumerate(self.spec.slices()):
            gone = absent.get(s, frozenset())
            vecs = [v[sl] for i, v in enumerate(pushed) if i not in gone]
            if len(vecs) < len(pushed):
                self.degraded_shard_rounds += 1
            if not vecs:
                # Round skipped entirely: the shard keeps (params) or
                # contributes (grads) nothing — out holds the previous
                # globals for the params buffer, zeros for a grad scratch.
                if where == "grads":
                    out[sl] = 0.0
                continue
            if self.aggregator is not None:
                self.aggregator.reduce(
                    vecs, out=out[sl], where=f"{where}/shard{s}"
                )
            else:
                mean_into(vecs, out=out[sl])
            self.shard_versions[s] += 1

    def aggregate_params(self, pushed: Sequence[np.ndarray]) -> np.ndarray:
        self._check(pushed)
        self.version += 1
        self._reduce_shards(pushed, self._params, "params")
        return self._readonly(self._params)

    def aggregate_grads(self, grads: Sequence[np.ndarray]) -> np.ndarray:
        self._check(grads)
        self.version += 1
        if self._agg is None or self._agg.shape != self._params.shape:
            self._agg = np.empty_like(self._params)
        self._reduce_shards(grads, self._agg, "grads")
        return self._readonly(self._agg)

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["sharding"] = {
            "bounds": list(self.spec.bounds),
            "shard_versions": list(self.shard_versions),
            "degraded_shard_rounds": self.degraded_shard_rounds,
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        sh = state.get("sharding")
        if sh is None:
            raise ValueError(
                "checkpoint has no shard state; it was saved by an "
                "unsharded server and cannot resume a sharded run"
            )
        if list(sh["bounds"]) != list(self.spec.bounds):
            raise ValueError(
                f"shard layout mismatch: checkpoint bounds "
                f"{list(sh['bounds'])} vs server {list(self.spec.bounds)}"
            )
        versions = [int(v) for v in sh["shard_versions"]]
        if len(versions) != self.n_shards:
            raise ValueError(
                f"checkpoint has {len(versions)} shard versions, "
                f"server has {self.n_shards} shards"
            )
        self.shard_versions = versions
        self.degraded_shard_rounds = int(sh["degraded_shard_rounds"])
        self._shard_absent = {}
