"""Central parameter server.

Implements the PS side of Alg. 1 (``pushToPS`` / ``pullFromPS``) plus the
versioned asynchronous interface SSP needs (each async push advances the
global version; staleness of a worker = versions applied since it last
pulled).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class ParameterServer:
    """Holds the flat global parameter vector.

    Synchronous aggregation (BSP / FedAvg / SelSync-PA) averages pushed
    vectors; asynchronous application (SSP) applies each worker's update as
    it arrives and tracks versions.
    """

    def __init__(self, init_params: np.ndarray):
        self._params = np.asarray(init_params, dtype=np.float64).copy()
        self.version: int = 0

    @property
    def n_params(self) -> int:
        return int(self._params.size)

    # -- synchronous interface --------------------------------------------
    def pull(self) -> np.ndarray:
        """Return a copy of the current global parameters."""
        return self._params.copy()

    def aggregate_params(self, pushed: Sequence[np.ndarray]) -> np.ndarray:
        """Parameter aggregation: global ← mean of pushed replicas."""
        self._check(pushed)
        self._params = np.mean(np.stack(pushed), axis=0)
        self.version += 1
        return self._params.copy()

    def aggregate_grads(self, grads: Sequence[np.ndarray]) -> np.ndarray:
        """Gradient aggregation: return the mean gradient (global params are
        NOT moved — in GA each worker applies the mean to its own replica,
        which is exactly the divergence mechanism §III-C describes)."""
        self._check(grads)
        self.version += 1
        return np.mean(np.stack(grads), axis=0)

    # -- asynchronous (SSP) interface ------------------------------------------
    def async_apply(self, update: np.ndarray) -> int:
        """Apply one worker's update vector to the global params immediately.

        Returns the new version. ``update`` is the delta to *add* (callers
        pass ``-lr * grad``).
        """
        if update.shape != self._params.shape:
            raise ValueError(
                f"update shape {update.shape} != params {self._params.shape}"
            )
        self._params += update
        self.version += 1
        return self.version

    def _check(self, vectors: Sequence[np.ndarray]) -> None:
        if len(vectors) == 0:
            raise ValueError("nothing to aggregate")
        for v in vectors:
            if v.shape != self._params.shape:
                raise ValueError(
                    f"vector shape {v.shape} != params {self._params.shape}"
                )
