"""Elastic cluster membership: plan grammar, scale policies, controller.

Spec grammar (comma-separated clauses, in the style of
:mod:`repro.cluster.faults`)::

    join:+K@STEP          K fresh workers join at the start of STEP
    drain:wR@STEP         the worker at rank R drains at the start of STEP
    scale:MIN..MAX        world-size bounds for policy-driven autoscaling

Examples: ``"join:+2@100"``, ``"drain:w3@50"``,
``"join:+2@100,drain:w3@50,scale:4..12"``.

Two sources of membership change share one controller:

* the **plan** — explicit join/drain clauses applied at fixed steps, and
* the **policy** — a :class:`ScalePolicy` that reads the controller's live
  :class:`~repro.obs.metrics.MetricsRegistry` signal stream (goodput in
  samples per sim-second, sync ratio, communication fraction, per-rank
  compute EWMAs) and emits scale decisions. Decisions are deterministic:
  pure functions of ``(signals, world_size, step)``, with any tie-break
  randomness drawn from a stream keyed on ``(seed, step)`` — never the
  trainer RNGs — so outcomes are identical across the serial/threaded/
  process executors and across a checkpoint/resume boundary.

Worker identity: ranks are always the dense ``0..N-1`` positions of the
current worker list (drains renumber the survivors), while every worker
also carries a stable ``uid`` assigned at join time. ``membership`` trace
events record both, so a timeline can follow an individual worker across
renumberings.

The controller holds no reference to workers or trainers; the mechanics of
a membership change (joiner bootstrap, repartitioning, group/executor
rebuilds) live in :class:`repro.core.trainer.DistributedTrainer`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs.metrics import MetricsRegistry

#: Fixed boot cost charged (in sim-seconds) when one or more joiners are
#: provisioned at a step, on top of the model transfer each joiner pulls.
PROVISION_BOOT_S = 5.0

#: Steps between two policy decisions (a decision may still hold).
DEFAULT_DECIDE_EVERY = 10

#: Minimum steps between two applied membership changes — gives the signal
#: EWMAs time to reflect the new world size before the next decision.
DEFAULT_COOLDOWN = 10

#: EWMA smoothing factor for the controller's signal stream.
SIGNAL_ALPHA = 0.2

#: Default world-size bounds when no ``scale:`` clause or CLI override is
#: given; generous on purpose — the plan is explicit user intent.
DEFAULT_MIN_WORKERS = 1
DEFAULT_MAX_WORKERS = 64


class ElasticSpecError(ValueError):
    """A membership spec string could not be parsed."""


# -- plan grammar ------------------------------------------------------------

_JOIN_RE = re.compile(r"^join:\+(\d+)@(\d+)$")
_DRAIN_RE = re.compile(r"^drain:w(\d+)@(\d+)$")
_SCALE_RE = re.compile(r"^scale:(\d+)\.\.(\d+)$")

_KNOWN_KINDS = ("join", "drain", "scale")


@dataclass(frozen=True)
class JoinClause:
    """``join:+K@STEP`` — K fresh workers join at the start of STEP."""

    count: int
    step: int

    kind = "join"

    def to_spec(self) -> str:
        return f"join:+{self.count}@{self.step}"


@dataclass(frozen=True)
class DrainClause:
    """``drain:wR@STEP`` — the worker at rank R (at that time) drains."""

    worker: int
    step: int

    kind = "drain"

    def to_spec(self) -> str:
        return f"drain:w{self.worker}@{self.step}"


@dataclass(frozen=True)
class ScaleClause:
    """``scale:MIN..MAX`` — world-size bounds for the autoscaler."""

    lo: int
    hi: int

    kind = "scale"

    def to_spec(self) -> str:
        return f"scale:{self.lo}..{self.hi}"


@dataclass(frozen=True)
class ElasticPlan:
    """Parsed membership plan: join/drain clauses plus optional bounds."""

    joins: Tuple[JoinClause, ...] = ()
    drains: Tuple[DrainClause, ...] = ()
    bounds: Optional[ScaleClause] = None

    @property
    def empty(self) -> bool:
        """True when the plan schedules no membership event and sets no
        bounds — the spec was absent or blank."""
        return not self.joins and not self.drains and self.bounds is None

    def to_spec(self) -> str:
        """Canonical spec string: joins by step, drains by (step, rank),
        bounds last — ``parse_elastic_spec(p.to_spec()) == p``."""
        clauses = [c.to_spec() for c in sorted(self.joins, key=lambda c: c.step)]
        clauses += [
            c.to_spec()
            for c in sorted(self.drains, key=lambda c: (c.step, c.worker))
        ]
        if self.bounds is not None:
            clauses.append(self.bounds.to_spec())
        return ",".join(clauses)

    def validate(self, n_workers: int) -> "ElasticPlan":
        """Clause-level sanity checks.

        Drain ranks are deliberately *not* range-checked against
        ``n_workers``: a rank refers to the membership at the clause's
        step, which joins (or a policy) may have grown past the initial
        size. Out-of-range drains fail loudly when applied.
        """
        for c in self.joins:
            if c.count < 1:
                raise ElasticSpecError(
                    f"join clause {c.to_spec()!r}: count must be >= 1"
                )
        if self.bounds is not None:
            b = self.bounds
            if b.lo < 1 or b.lo > b.hi:
                raise ElasticSpecError(
                    f"scale clause {b.to_spec()!r}: need 1 <= MIN <= MAX"
                )
        return self

    def joins_at(self, step: int) -> int:
        return sum(c.count for c in self.joins if c.step == step)

    def drains_at(self, step: int) -> List[int]:
        return sorted(c.worker for c in self.drains if c.step == step)


def parse_elastic_spec(spec: Optional[str]) -> ElasticPlan:
    """Parse a membership spec string; ``None``/empty/``"off"`` gives the
    empty plan. Raises :class:`ElasticSpecError` naming the bad clause."""
    if spec is None:
        return ElasticPlan()
    text = spec.strip()
    if not text or text.lower() == "off":
        return ElasticPlan()
    joins: List[JoinClause] = []
    drains: List[DrainClause] = []
    bounds: Optional[ScaleClause] = None
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        m = _JOIN_RE.match(clause)
        if m:
            joins.append(JoinClause(count=int(m.group(1)), step=int(m.group(2))))
            continue
        m = _DRAIN_RE.match(clause)
        if m:
            drains.append(
                DrainClause(worker=int(m.group(1)), step=int(m.group(2)))
            )
            continue
        m = _SCALE_RE.match(clause)
        if m:
            if bounds is not None:
                raise ElasticSpecError(
                    f"duplicate scale clause {clause!r} (one scale:MIN..MAX "
                    "per spec)"
                )
            bounds = ScaleClause(lo=int(m.group(1)), hi=int(m.group(2)))
            continue
        kind = clause.split(":", 1)[0]
        if kind in _KNOWN_KINDS:
            raise ElasticSpecError(
                f"malformed {kind} clause {clause!r} (expected "
                f"'join:+K@STEP', 'drain:wR@STEP' or 'scale:MIN..MAX')"
            )
        raise ElasticSpecError(
            f"unknown membership clause kind {kind!r} in {clause!r}; "
            f"known kinds: {', '.join(_KNOWN_KINDS)}"
        )
    if len({(c.worker, c.step) for c in drains}) != len(drains):
        raise ElasticSpecError(f"duplicate drain clause in {spec!r}")
    plan = ElasticPlan(joins=tuple(joins), drains=tuple(drains), bounds=bounds)
    return plan.validate(0)


def canonical_elastic_spec(spec: Optional[str]) -> str:
    """Canonical form of a membership spec (parse → to_spec round-trip)."""
    return parse_elastic_spec(spec).to_spec()


# -- scale policies ----------------------------------------------------------


class ScalePolicy:
    """Deterministic world-size policy over the controller's signals.

    ``decide`` receives a read-only snapshot of the signal stream, the
    current world size, the step, a mutable ``state`` dict (checkpointed by
    the controller) and an RNG keyed on ``(seed, step)`` for tie-breaks.
    It returns the *desired* world size; the controller clamps to the
    configured bounds and converts the difference into join/drain actions.
    """

    name = "abstract"

    def decide(
        self,
        signals: Dict[str, float],
        world_size: int,
        step: int,
        state: Dict,
        rng: np.random.Generator,
    ) -> int:
        raise NotImplementedError


class NoScalePolicy(ScalePolicy):
    """Plan-only elasticity: never proposes a change."""

    name = "none"

    def decide(self, signals, world_size, step, state, rng):
        return world_size


class GoodputHillClimb(ScalePolicy):
    """Hill-climb on goodput (samples per sim-second).

    Probes upward first; after every decision compares the goodput EWMA
    against its value at the previous decision and keeps the direction
    while goodput improves, reversing when it degrades. With PS-bound
    communication this walks the cluster toward the size where adding a
    worker stops paying for its sync cost.
    """

    name = "goodput"

    #: Relative improvement below which a probe counts as a regression.
    rel_eps = 0.01

    def decide(self, signals, world_size, step, state, rng):
        goodput = signals.get("elastic.goodput", float("nan"))
        if not np.isfinite(goodput):
            return world_size
        prev = state.get("prev_goodput")
        direction = int(state.get("direction", 1))
        if prev is not None and goodput < prev * (1.0 + self.rel_eps):
            direction = -direction
        state["direction"] = direction
        state["prev_goodput"] = float(goodput)
        return world_size + direction


class CommFractionPolicy(ScalePolicy):
    """Keep the communication fraction of step time inside a band.

    Above ``hi`` the sync phase dominates (more workers only deepen the PS
    ingress collapse of Fig. 1a): shrink. Below ``lo`` compute dominates:
    grow. Stateless, so trivially deterministic.
    """

    name = "comm"

    lo = 0.15
    hi = 0.45

    def decide(self, signals, world_size, step, state, rng):
        frac = signals.get("elastic.comm_fraction", float("nan"))
        if not np.isfinite(frac):
            return world_size
        if frac > self.hi:
            return world_size - 1
        if frac < self.lo:
            return world_size + 1
        return world_size


SCALE_POLICIES: Dict[str, type] = {
    p.name: p for p in (NoScalePolicy, GoodputHillClimb, CommFractionPolicy)
}


def make_scale_policy(name: str) -> ScalePolicy:
    cls = SCALE_POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown scale policy {name!r}; valid choices: "
            f"{', '.join(sorted(SCALE_POLICIES))}"
        )
    return cls()


# -- controller --------------------------------------------------------------


@dataclass
class MembershipActions:
    """What the controller wants to happen at the start of one step."""

    drains: List[int] = field(default_factory=list)  # ranks, current numbering
    joins: int = 0
    #: ``scale_decision`` event payload (also emitted on a hold), or None.
    decision: Optional[Dict] = None

    @property
    def any_change(self) -> bool:
        return bool(self.drains) or self.joins > 0


@dataclass
class ElasticContext:
    """Everything a trainer needs to materialize membership changes.

    Carries the same factories the workload was originally built from, so
    a joiner's fresh replica and a repartitioned loader are constructed
    exactly like the initial ones. ``partition_fn(n_samples, n_workers,
    rng)`` must return a :class:`~repro.data.partition.Partition` over the
    new world size (SelDP re-rotates, DefDP re-splits).
    """

    model_factory: object
    optimizer_factory: object
    dataset: object
    batch_size: int
    partition_fn: object
    reshuffle: bool = True
    loss_factory: Optional[object] = None


class ElasticController:
    """Deterministic membership/autoscale decisions for one training run.

    Owns the plan, the policy, the stable-uid ledger and the live signal
    stream (a :class:`MetricsRegistry` — the same instrument kind the
    tracer exposes, so the policy literally reads an ``obs.metrics``
    stream; the tracer's registry is mirrored, never read, keeping traced
    and untraced runs bitwise identical).
    """

    def __init__(
        self,
        plan: ElasticPlan,
        policy: Optional[ScalePolicy] = None,
        min_workers: int = DEFAULT_MIN_WORKERS,
        max_workers: int = DEFAULT_MAX_WORKERS,
        seed: int = 0,
        decide_every: int = DEFAULT_DECIDE_EVERY,
        cooldown: int = DEFAULT_COOLDOWN,
        boot_s: float = PROVISION_BOOT_S,
    ):
        if min_workers < 1 or min_workers > max_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"[{min_workers}, {max_workers}]"
            )
        if decide_every < 1:
            raise ValueError(f"decide_every must be >= 1, got {decide_every}")
        self.plan = plan
        self.policy = policy if policy is not None else NoScalePolicy()
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.seed = int(seed)
        self.decide_every = int(decide_every)
        self.cooldown = int(cooldown)
        self.boot_s = float(boot_s)
        #: Live signal stream the policy reads (obs.metrics machinery).
        self.metrics = MetricsRegistry()
        # Stable uids, parallel to the trainer's worker list.
        self.uids: List[int] = []
        self._next_uid = 0
        # Per-rank compute-time EWMAs — the straggler signal scale-down
        # drains by; parallel to the worker list.
        self._compute_ewma: List[float] = []
        self._goodput = float("nan")
        self._sync_ewma = float("nan")
        self._comm_frac = float("nan")
        self._samples = 0.0
        self._sim_seconds = 0.0
        self._worker_seconds = 0.0
        self._last_change_step = -(10**9)
        self._policy_state: Dict = {}

    # -- lifecycle ---------------------------------------------------------
    def attach(self, n_workers: int) -> None:
        """Adopt the initial membership (called once by the trainer)."""
        if self.uids:
            return
        self.uids = list(range(n_workers))
        self._next_uid = n_workers
        self._compute_ewma = [float("nan")] * n_workers

    # -- decisions ---------------------------------------------------------
    def actions_for_step(self, step: int, world_size: int) -> MembershipActions:
        """Plan events scheduled at ``step`` plus any policy decision.

        Plan clauses win: on a step with scheduled joins/drains the policy
        sits out (its signals will reflect the new size by the next
        decision point). Policy decisions fire every ``decide_every``
        steps, respect the cooldown after any applied change, and are
        clamped to ``[min_workers, max_workers]``.
        """
        acts = MembershipActions(
            drains=self.plan.drains_at(step), joins=self.plan.joins_at(step)
        )
        if acts.any_change:
            return acts
        if (
            isinstance(self.policy, NoScalePolicy)
            or step == 0
            or step % self.decide_every != 0
            or step - self._last_change_step < self.cooldown
            or self._sim_seconds <= 0.0
        ):
            return acts
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0x5CA1E, step])
        )
        desired = self.policy.decide(
            self.signals(), world_size, step, self._policy_state, rng
        )
        desired = max(self.min_workers, min(self.max_workers, int(desired)))
        acts.decision = {
            "policy": self.policy.name,
            "current": int(world_size),
            "desired": int(desired),
            "applied": bool(desired != world_size),
        }
        g = self._goodput
        if np.isfinite(g):
            acts.decision["goodput"] = float(g)
        if desired > world_size:
            acts.joins = desired - world_size
        elif desired < world_size:
            acts.drains = self.drain_candidates(world_size - desired)
        return acts

    def drain_candidates(self, count: int) -> List[int]:
        """Ranks to drain on scale-down: worst compute-time EWMA first
        (the stragglers), deterministic tie-break on the higher rank."""
        ewma = np.asarray(self._compute_ewma, dtype=np.float64)
        # Ranks with no signal yet sort last (keep them; they are new).
        keys = np.where(np.isfinite(ewma), ewma, -np.inf)
        order = sorted(range(len(keys)), key=lambda r: (-keys[r], -r))
        return sorted(order[:count])

    # -- membership bookkeeping -------------------------------------------
    def on_drain(self, rank: int, step: int) -> int:
        """Record a drain of ``rank``; returns the departing stable uid."""
        uid = self.uids.pop(rank)
        self._compute_ewma.pop(rank)
        self._last_change_step = step
        return uid

    def on_join(self, step: int) -> int:
        """Record one joiner; returns its freshly assigned stable uid."""
        uid = self._next_uid
        self._next_uid += 1
        self.uids.append(uid)
        self._compute_ewma.append(float("nan"))
        self._last_change_step = step
        return uid

    def provision_seconds(self, joins: int, net, comm_bytes: float) -> float:
        """Sim-second cost of provisioning this step's joiners: a fixed
        boot charge plus the model pull, via the network cost model.
        Joiners provision in parallel, so one transfer is charged."""
        if joins <= 0:
            return 0.0
        return self.boot_s + net.transfer_time(comm_bytes)

    # -- signal stream -----------------------------------------------------
    def observe_step(
        self,
        step: int,
        rec,
        world_size: int,
        batch_size: int,
        compute_times: Optional[Sequence[float]],
    ) -> None:
        """Fold one completed step into the signal stream.

        Mirrors the gauges/counters into the active tracer's registry (the
        ``cluster.world_size`` gauge and goodput/cost-efficiency counters)
        — mirroring only, so tracing stays purely observational.
        """
        samples = float(world_size * batch_size)
        self._samples += samples
        self._sim_seconds += float(rec.sim_time)
        self._worker_seconds += float(world_size * rec.sim_time)
        if rec.sim_time > 0:
            inst = samples / float(rec.sim_time)
            self._goodput = _ewma(self._goodput, inst)
            self._comm_frac = _ewma(
                self._comm_frac, float(rec.comm_time) / float(rec.sim_time)
            )
        self._sync_ewma = _ewma(self._sync_ewma, 1.0 if rec.synced else 0.0)
        if compute_times is not None:
            for r, t in enumerate(compute_times[:world_size]):
                if r < len(self._compute_ewma):
                    self._compute_ewma[r] = _ewma(
                        self._compute_ewma[r], float(t)
                    )
        for name, value in self.signals().items():
            if np.isfinite(value):
                self.metrics.set(name, value)
        tr = obs.active()
        if tr is not None:
            m = tr.metrics
            m.set("cluster.world_size", float(world_size))
            if np.isfinite(self._goodput):
                m.set("elastic.goodput", float(self._goodput))
            m.inc("elastic.samples", samples)
            m.inc("elastic.worker_seconds", float(world_size * rec.sim_time))

    def signals(self) -> Dict[str, float]:
        """Snapshot of the signal stream the policy decides over."""
        ewma = np.asarray(self._compute_ewma, dtype=np.float64)
        finite = ewma[np.isfinite(ewma)]
        spread = (
            float(finite.max() / np.median(finite))
            if finite.size and np.median(finite) > 0
            else float("nan")
        )
        return {
            "elastic.goodput": float(self._goodput),
            "elastic.sync_ratio": float(self._sync_ewma),
            "elastic.comm_fraction": float(self._comm_frac),
            "elastic.straggle_spread": spread,
            "elastic.samples": float(self._samples),
            "elastic.sim_seconds": float(self._sim_seconds),
            "elastic.worker_seconds": float(self._worker_seconds),
        }

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "uids": list(self.uids),
            "next_uid": int(self._next_uid),
            "compute_ewma": [float(x) for x in self._compute_ewma],
            "goodput": float(self._goodput),
            "sync_ewma": float(self._sync_ewma),
            "comm_frac": float(self._comm_frac),
            "samples": float(self._samples),
            "sim_seconds": float(self._sim_seconds),
            "worker_seconds": float(self._worker_seconds),
            "last_change_step": int(self._last_change_step),
            "policy_state": dict(self._policy_state),
        }

    def load_state_dict(self, state: Dict) -> None:
        self.uids = [int(u) for u in state["uids"]]
        self._next_uid = int(state["next_uid"])
        self._compute_ewma = [float(x) for x in state["compute_ewma"]]
        self._goodput = float(state["goodput"])
        self._sync_ewma = float(state["sync_ewma"])
        self._comm_frac = float(state["comm_frac"])
        self._samples = float(state["samples"])
        self._sim_seconds = float(state["sim_seconds"])
        self._worker_seconds = float(state["worker_seconds"])
        self._last_change_step = int(state["last_change_step"])
        self._policy_state = dict(state.get("policy_state", {}))


def _ewma(current: float, value: float, alpha: float = SIGNAL_ALPHA) -> float:
    if not np.isfinite(current):
        return float(value)
    return float((1.0 - alpha) * current + alpha * value)


def derive_rng_seed(seed: int, salt: int, step: int) -> int:
    """Deterministic child seed keyed on ``(seed, salt, step)`` — the
    stream repartitioned loaders and resized compute models draw from."""
    return int(
        np.random.SeedSequence([int(seed), int(salt), int(step)]).generate_state(1)[0]
    )
