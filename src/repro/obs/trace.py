"""Structured run tracing: typed, schema-versioned span/event records.

Every component of the simulation — trainers, collectives, executors, the
fault injector — emits :class:`TraceEvent` records through one
:class:`Tracer`. The trace is the ground truth of a run; the per-run summary
(:class:`~repro.utils.runlog.RunLog`) is a derived view over it
(:func:`repro.obs.views.runlog_from_trace`).

Determinism contract
--------------------
In deterministic mode (the default) a trace is **byte-identical** across
the serial and threaded executors and across a checkpoint/resume boundary:

* Events are keyed by ``(step, worker, seq)``: ``seq`` is a per-(step,
  worker) counter, so two events of the same logical stream keep their
  emission order, while streams of different workers are independent of
  thread interleaving.
* The buffer is sorted by that key at flush; file order never reflects
  emission order.
* No wall-clock timestamps are recorded. Passing ``deterministic=False``
  adds a ``t_wall`` field to every event (useful for profiling real
  elapsed time, never for regression comparison).
* Only *step-scoped* events are written. Run-level aggregates live in the
  :class:`~repro.obs.metrics.MetricsRegistry`; a resumed run's event lines
  therefore concatenate with the interrupted run's to reproduce the
  uninterrupted trace exactly.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Trace file schema version; bump on any incompatible record change.
TRACE_SCHEMA_VERSION = 1

#: Known event types. Emitting an unknown type raises — the schema is the
#: contract every figure benchmark asserts against, so it must not drift
#: silently.
EVENT_TYPES = (
    "step_begin",       # coordinator opens step i
    "step_end",         # step i closed: synced/sim_time/comm_time/loss/...
    "compute_phase",    # per-worker simulated compute times for the round
    "exec_task",        # one worker's gradient task ran (executor backend)
    "delta_eval",       # SelSync: one worker's Δ(g) value and vote
    "sync_decision",    # SelSync: the cluster-wide vote outcome
    "aggregation",      # one aggregation round (PA/GA/elastic/async)
    "collective",       # one collective op: payload bytes + simulated cost
    "fault",            # injected/observed fault (crash/rejoin/straggle/...)
    "checkpoint_save",  # trainer state snapshot written
    "eval",             # periodic evaluation of the deployable model
    "aggregator_decision",  # robust aggregation: inputs kept/dropped + info
    "quarantine",       # health tracker flagged a worker (reason/score)
    "reinstate",        # quarantined worker restored after probation
    "link_fault",       # a link dropped/downed a message (src/dst/kind)
    "retry",            # enveloped message retried: attempts + wait charged
    "reroute",          # collective healed around dead links (mode/detail)
    "partition_detected",  # network partition onset: groups + majority side
    "shard_round",      # sharded PS round summary: n_shards/active/seconds
    "membership",       # elastic join/drain: action/uid/rank/size change
    "scale_decision",   # autoscaler verdict: policy/current/desired/applied
    "repartition",      # data re-split over the new world size: coverage
)

#: Aggregation kinds carried by ``aggregation`` events.
AGGREGATION_KINDS = ("PA", "GA", "elastic", "async")


@dataclass
class TraceEvent:
    """One typed trace record.

    Attributes
    ----------
    etype:
        One of :data:`EVENT_TYPES`.
    step:
        Global step index the event belongs to (-1 for pre-run events).
    worker:
        Worker id, or -1 for coordinator/cluster-scoped events.
    seq:
        Per-(step, worker) emission counter; makes the sort key total.
    data:
        Event-specific payload (JSON-safe scalars/lists only).
    """

    etype: str
    step: int
    worker: int = -1
    seq: int = 0
    data: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.etype not in EVENT_TYPES:
            raise ValueError(
                f"unknown trace event type {self.etype!r}; "
                f"expected one of {EVENT_TYPES}"
            )

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.step, self.worker, self.seq)


class Tracer:
    """Collects :class:`TraceEvent` records and derives metrics from them.

    Parameters
    ----------
    path:
        JSONL sink written by :meth:`close` (``None`` keeps the trace
        in memory only — the events remain accessible via :attr:`events`).
    name:
        Run name recorded in the trace header.
    deterministic:
        Forbid wall-clock fields (see the module docstring). Default True.
    meta:
        Extra header fields (the experiment runner stores its
        reproducibility manifest here).
    """

    def __init__(
        self,
        path=None,
        name: str = "run",
        deterministic: bool = True,
        meta: Optional[Dict] = None,
    ):
        self.path = path
        self.name = name
        self.deterministic = bool(deterministic)
        self.meta: Dict = dict(meta) if meta else {}
        self.metrics = MetricsRegistry()
        self._buffer: List[TraceEvent] = []
        self._seq: Dict[Tuple[int, int], int] = {}
        self._lock = threading.Lock()
        self._current_step: int = -1
        self._closed = False

    # -- step scoping ------------------------------------------------------
    @property
    def current_step(self) -> int:
        """Step currently in flight (set by the ``step_begin`` event)."""
        return self._current_step

    # -- emission ----------------------------------------------------------
    def emit(self, etype: str, step: Optional[int] = None, worker: int = -1, **data):
        """Record one event.

        ``step=None`` scopes the event to the step currently in flight —
        that is how components below the trainer (collectives, network,
        executor) attach their events without threading a step id through
        every call signature.
        """
        if self._closed:
            raise RuntimeError("tracer is closed")
        if step is None:
            step = self._current_step
        ev = TraceEvent(etype=etype, step=int(step), worker=int(worker), data=data)
        if not self.deterministic:
            ev.data["t_wall"] = time.monotonic()
        with self._lock:
            key = (ev.step, ev.worker)
            ev.seq = self._seq.get(key, 0)
            self._seq[key] = ev.seq + 1
            self._buffer.append(ev)
        self._derive_metrics(ev)
        if etype == "step_begin":
            self._current_step = ev.step
        return ev

    def _derive_metrics(self, ev: TraceEvent) -> None:
        """Standard metrics every run gets for free, derived per event.

        The ``comm.bytes`` counter sums exactly the ``bytes`` field of
        ``collective`` events, so the invariant *sum of per-collective
        payload bytes == run-summary bytes counter* holds by construction
        (and is still asserted by the property tests — a refactor that
        breaks it should fail loudly).
        """
        m = self.metrics
        m.inc("events.total")
        m.inc(f"events.{ev.etype}")
        d = ev.data
        if ev.etype == "collective":
            m.inc("comm.bytes", float(d.get("bytes", 0.0)))
            m.observe("comm.seconds", float(d.get("seconds", 0.0)))
        elif ev.etype == "step_end":
            m.observe("step.sim_time", float(d.get("sim_time", 0.0)))
            m.observe("step.comm_time", float(d.get("comm_time", 0.0)))
            m.inc("steps.synced" if d.get("synced") else "steps.local")
        elif ev.etype == "delta_eval":
            val = float(d.get("delta", float("nan")))
            # Non-finite Δ values (first EWMA update, corrupted gradients)
            # stay out of the histogram: sorting a list containing NaN is
            # insertion-order dependent, which would leak thread timing
            # into the summary.
            if math.isfinite(val):
                m.observe("delta.value", val)
            if d.get("vote"):
                m.inc("delta.votes")
        elif ev.etype == "fault":
            m.inc(f"faults.{d.get('fault_kind', 'unknown')}")
        elif ev.etype == "exec_task":
            m.inc("executor.tasks")
        elif ev.etype == "checkpoint_save":
            m.inc("checkpoint.saves")
        elif ev.etype == "eval":
            m.set("eval.last_metric", float(d.get("metric", float("nan"))))
        elif ev.etype == "aggregator_decision":
            m.inc("robust.rounds")
            m.inc("robust.dropped", float(d.get("n_dropped", 0) or 0))
        elif ev.etype == "quarantine":
            m.inc("health.quarantines")
        elif ev.etype == "reinstate":
            m.inc("health.reinstatements")
        elif ev.etype == "retry":
            m.inc("comm.retries", float(max(0, int(d.get("attempts", 1)) - 1)))
            m.inc("comm.retry_wait_s", float(d.get("wait_s", 0.0)))
            if not d.get("delivered", True):
                m.inc("comm.exhausted")
        elif ev.etype == "reroute":
            m.inc("comm.reroutes")
        elif ev.etype == "link_fault":
            m.inc("net.link_faults")
        elif ev.etype == "partition_detected":
            m.inc("net.partitions")
        elif ev.etype == "shard_round":
            # Round summary only — its ``bytes`` recaps the per-shard
            # ``collective`` events (which already fed ``comm.bytes``), so
            # counting it here would double the ledger.
            m.inc("comm.shard_rounds")
            m.inc(
                "comm.degraded_shard_rounds",
                float(d.get("n_degraded", 0) or 0),
            )
            m.observe("shard.round_seconds", float(d.get("seconds", 0.0)))
        elif ev.etype == "membership":
            m.inc(f"elastic.{d.get('action', 'unknown')}s")
            m.set("cluster.world_size", float(d.get("size_after", float("nan"))))
        elif ev.etype == "scale_decision":
            m.inc("elastic.scale_decisions")
            if d.get("applied"):
                m.inc("elastic.scale_applied")
        elif ev.etype == "repartition":
            m.inc("elastic.repartitions")

    # -- access / persistence ---------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """Events in canonical (step, worker, seq) order."""
        with self._lock:
            return sorted(self._buffer, key=lambda e: e.key)

    def header(self) -> Dict:
        return {
            "kind": "header",
            "schema": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "deterministic": self.deterministic,
            "meta": dict(self.meta),
        }

    def close(self) -> None:
        """Sort and write the trace to :attr:`path` (if one was given)."""
        if self._closed:
            return
        self._closed = True
        if self.path is not None:
            from repro.obs.sink import write_trace

            write_trace(self.path, self.header(), self.events)
