"""In-memory metrics: counters, gauges and histograms with summaries.

The :class:`MetricsRegistry` is the numeric companion of the event trace
(:mod:`repro.obs.trace`): while the trace records *what happened*, the
registry accumulates *how much* — bytes moved, steps synced, per-step time
distributions. Summaries are deterministic regardless of observation order
(histogram statistics are computed over the sorted sample), so a registry
filled by the threaded executor reports the same numbers as one filled
serially.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

#: Percentiles reported by histogram summaries.
HISTOGRAM_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """Monotonically increasing sum (bytes, events, syncs)."""

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount} < 0")
        self.value += amount


class Gauge:
    """Last-write-wins scalar (current staleness, live workers)."""

    def __init__(self, name: str):
        self.name = name
        self.value: float = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Sample collector with deterministic percentile summaries.

    All observations are retained (simulation runs are small — thousands of
    steps); the summary sorts before reducing so the statistics do not
    depend on the order threads happened to observe in.
    """

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        v = float(value)
        if v == 0.0:
            # Canonicalize -0.0: sorting is stable, so otherwise min/max
            # could report a signed zero that depends on observation order.
            v = 0.0
        self._values.append(v)

    @property
    def count(self) -> int:
        return len(self._values)

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0}
        arr = np.sort(np.asarray(self._values, dtype=np.float64))
        out = {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "min": float(arr[0]),
            "max": float(arr[-1]),
        }
        for p in HISTOGRAM_PERCENTILES:
            out[f"p{p:g}"] = float(np.percentile(arr, p))
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms behind one lock.

    The lock guards only the name→instrument maps (first-use creation may
    race under the threaded executor); individual updates are plain float
    adds/appends, safe under the GIL and order-insensitive by construction.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    # -- shorthands --------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def get(self, name: str) -> Optional[float]:
        """Current value of a counter or gauge; ``None`` if unknown."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return None

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """Counter values whose names start with ``prefix``, sorted by name.

        Namespaced counter families (``comm.*``, ``net.*``) are read as a
        group by the reporting layer; this keeps that read deterministic
        and independent of instrument-creation order.
        """
        with self._lock:
            names = sorted(k for k in self._counters if k.startswith(prefix))
        return {k: self._counters[k].value for k in names}

    # -- reporting ---------------------------------------------------------
    def summary(self) -> Dict[str, Dict]:
        """Deterministic snapshot: sorted names, sorted-sample statistics."""
        out: Dict[str, Dict] = {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary() for k in sorted(self._histograms)
            },
        }
        return out
