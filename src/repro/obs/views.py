"""Derived views over a trace: run logs and dashboard aggregates.

The trace is the ground truth of a run; everything the reporting layer
needs — the classic :class:`~repro.utils.runlog.RunLog` summary, sync
ratios, bytes per step, the straggler heatmap — is recomputed from the
event stream here, so any consumer can work from a persisted ``.jsonl``
trace alone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.obs.trace import TraceEvent
from repro.utils.runlog import EvalRecord, FaultRecord, IterationRecord, RunLog


def runlog_from_trace(
    events: Sequence[TraceEvent], name: str = "run", meta: Optional[Dict] = None
) -> RunLog:
    """Rebuild a :class:`RunLog` from ``step_end``/``eval``/``fault`` events.

    The result is record-for-record equal to the RunLog the trainer built
    in memory during the same run (asserted by the obs test suite) — the
    runlog summary rows are a *view* of the trace, not a second source of
    truth.
    """
    log = RunLog(name=name, meta=meta)
    for ev in events:
        d = ev.data
        if ev.etype == "step_end":
            log.record_iteration(
                IterationRecord(
                    step=ev.step,
                    synced=bool(d["synced"]),
                    sim_time=float(d["sim_time"]),
                    comm_time=float(d.get("comm_time", 0.0)),
                    loss=float(d.get("loss", float("nan"))),
                    grad_change=(
                        None if d.get("grad_change") is None
                        else float(d["grad_change"])
                    ),
                    extra={
                        k: float(v) for k, v in d.get("extra", {}).items()
                    },
                )
            )
        elif ev.etype == "eval":
            log.record_eval(
                EvalRecord(
                    step=ev.step,
                    epoch=float(d.get("epoch", 0.0)),
                    sim_time=float(d.get("sim_time", 0.0)),
                    metric=float(d["metric"]),
                    metric_name=d.get("metric_name", "metric"),
                )
            )
        elif ev.etype == "fault":
            log.record_fault(
                FaultRecord(
                    step=ev.step,
                    worker=ev.worker,
                    kind=d["fault_kind"],
                    detail={k: v for k, v in d.items() if k != "fault_kind"},
                )
            )
    return log


def events_of_type(events: Iterable[TraceEvent], etype: str) -> List[TraceEvent]:
    return [e for e in events if e.etype == etype]


def sync_ratio(events: Sequence[TraceEvent]) -> Optional[float]:
    """Fraction of completed steps that synchronized (1 - LSSR)."""
    ends = events_of_type(events, "step_end")
    if not ends:
        return None
    return sum(1 for e in ends if e.data.get("synced")) / len(ends)


def bytes_per_step(events: Sequence[TraceEvent]) -> Optional[float]:
    """Mean collective payload bytes per completed step."""
    ends = events_of_type(events, "step_end")
    if not ends:
        return None
    total = sum(
        float(e.data.get("bytes", 0.0))
        for e in events_of_type(events, "collective")
    )
    return total / len(ends)


def straggler_matrix(
    events: Sequence[TraceEvent], buckets: int = 24
) -> Optional[np.ndarray]:
    """(n_workers, buckets) mean relative compute time per time slice.

    Built from ``compute_phase`` events (per-worker simulated compute
    times each round). Each cell is the worker's mean compute time in that
    step bucket divided by the bucket's cluster-wide mean — 1.0 is
    "average speed", >1 is a straggler. NaN where a worker had no samples
    — a rank that did not exist in that bucket (elastic drain, or not yet
    joined); :func:`absence_matrix` distinguishes those from quarantine.
    """
    phases = events_of_type(events, "compute_phase")
    if not phases:
        return None
    n_workers = max(len(e.data.get("times", [])) for e in phases)
    if n_workers == 0:
        return None
    steps = [e.step for e in phases]
    lo, hi = min(steps), max(steps)
    buckets = max(1, min(buckets, hi - lo + 1))
    span = (hi - lo + 1) / buckets
    sums = np.zeros((n_workers, buckets))
    counts = np.zeros((n_workers, buckets))
    for e in phases:
        times = np.asarray(e.data.get("times", []), dtype=np.float64)
        if times.size == 0:
            continue
        # Rows are ranks; under elastic membership a round can cover fewer
        # (or more) ranks than the run's maximum, so accumulate exactly
        # the ranks that computed this round — absent ranks collect no
        # samples and surface as NaN instead of a stale zero row.
        b = min(buckets - 1, int((e.step - lo) / span))
        sums[: times.size, b] += times
        counts[: times.size, b] += 1.0
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = sums / counts
        rel = mean / np.nanmean(mean, axis=0, keepdims=True)
    return rel


def absence_matrix(
    events: Sequence[TraceEvent], buckets: int = 24
) -> Optional[np.ndarray]:
    """(n_workers, buckets) status codes aligned with
    :func:`straggler_matrix`: 0 = active, 1 = departed (the rank did not
    exist in that bucket — drained away, or not yet joined), 2 =
    quarantined for (part of) the bucket. ``None`` without
    ``compute_phase`` events.
    """
    phases = events_of_type(events, "compute_phase")
    if not phases:
        return None
    n_workers = max(len(e.data.get("times", [])) for e in phases)
    if n_workers == 0:
        return None
    steps = [e.step for e in phases]
    lo, hi = min(steps), max(steps)
    buckets = max(1, min(buckets, hi - lo + 1))
    span = (hi - lo + 1) / buckets
    present = np.zeros((n_workers, buckets), dtype=bool)
    for e in phases:
        k = len(e.data.get("times", []))
        b = min(buckets - 1, int((e.step - lo) / span))
        present[:k, b] = True
    status = np.zeros((n_workers, buckets), dtype=np.int8)
    status[~present] = 1
    for e in events_of_type(events, "quarantine"):
        w = e.worker
        if not 0 <= w < n_workers:
            continue
        until = int(e.data.get("until", e.step))
        b0 = min(buckets - 1, int((max(e.step, lo) - lo) / span))
        b1 = min(buckets - 1, int((max(min(until, hi), lo) - lo) / span))
        row = status[w, b0 : b1 + 1]
        # Quarantine marks only buckets where the rank existed; a departed
        # cell keeps its departure marker.
        row[row == 0] = 2
    return status


def membership_timeline(events: Sequence[TraceEvent]) -> List[Dict]:
    """Chronological membership changes for the dashboard timeline: one
    row per ``membership``/``repartition`` event and per applied
    ``scale_decision``. Empty for fixed-membership runs, so the dashboard
    section appears exactly when elasticity ran."""
    rows: List[Dict] = []
    for e in events:
        d = e.data
        if e.etype == "membership":
            rows.append(
                {
                    "step": e.step,
                    "action": d.get("action", "?"),
                    "worker": e.worker,
                    "uid": d.get("uid"),
                    "size_after": d.get("size_after"),
                }
            )
        elif e.etype == "scale_decision" and d.get("applied"):
            rows.append(
                {
                    "step": e.step,
                    "action": f"scale[{d.get('policy', '?')}]",
                    "worker": -1,
                    "uid": None,
                    "size_after": d.get("desired"),
                }
            )
        elif e.etype == "repartition":
            rows.append(
                {
                    "step": e.step,
                    "action": "repartition",
                    "worker": -1,
                    "uid": None,
                    "size_after": d.get("n_workers"),
                    "coverage": d.get("coverage"),
                }
            )
    rows.sort(key=lambda r: (r["step"], r["action"]))
    return rows


def _step_range(events: Sequence[TraceEvent]) -> Optional[range]:
    """Inclusive step span of the run, from ``step_end`` events."""
    ends = events_of_type(events, "step_end")
    if not ends:
        return None
    steps = [e.step for e in ends]
    return range(min(steps), max(steps) + 1)


def retry_series(events: Sequence[TraceEvent]) -> Optional[np.ndarray]:
    """Per-step count of *extra* send attempts (retries), dense over the run.

    ``retry`` events carry the total attempt count for one enveloped
    message; the series accumulates ``attempts - 1`` so a fault-free step
    reads 0. Index 0 is the run's first completed step.
    """
    span = _step_range(events)
    if span is None:
        return None
    series = np.zeros(len(span))
    for e in events_of_type(events, "retry"):
        if span.start <= e.step < span.stop:
            series[e.step - span.start] += max(
                0, int(e.data.get("attempts", 1)) - 1
            )
    return series


def reroute_series(events: Sequence[TraceEvent]) -> Optional[np.ndarray]:
    """Per-step count of healed (rerouted) collective rounds."""
    span = _step_range(events)
    if span is None:
        return None
    series = np.zeros(len(span))
    for e in events_of_type(events, "reroute"):
        if span.start <= e.step < span.stop:
            series[e.step - span.start] += 1.0
    return series


def link_health_matrix(
    events: Sequence[TraceEvent], n_ranks: Optional[int] = None
) -> Optional[np.ndarray]:
    """(n_ranks, n_ranks) symmetric count of steps each link was faulted.

    Built from ``link_fault`` events (one per link per step, deduplicated
    at the source). Rank ``n_workers`` is the parameter server when a PS
    uplink ever faulted. Cell (a, b) == 0 means the link never misbehaved.
    """
    faults = events_of_type(events, "link_fault")
    if not faults:
        return None
    pairs = [
        (int(e.data["src"]), int(e.data["dst"]))
        for e in faults
        if "src" in e.data and "dst" in e.data
    ]
    if not pairs:
        return None
    if n_ranks is None:
        n_ranks = max(max(a, b) for a, b in pairs) + 1
    mat = np.zeros((n_ranks, n_ranks))
    for a, b in pairs:
        if a < n_ranks and b < n_ranks:
            mat[a, b] += 1.0
            mat[b, a] += 1.0
    return mat


def collective_totals(events: Sequence[TraceEvent]) -> Dict[str, Dict[str, float]]:
    """Per-op totals: count, bytes, simulated seconds."""
    out: Dict[str, Dict[str, float]] = {}
    for e in events_of_type(events, "collective"):
        op = e.data.get("op", "?")
        tot = out.setdefault(op, {"count": 0.0, "bytes": 0.0, "seconds": 0.0})
        tot["count"] += 1.0
        tot["bytes"] += float(e.data.get("bytes", 0.0))
        tot["seconds"] += float(e.data.get("seconds", 0.0))
    return out


def shard_totals(events: Sequence[TraceEvent]) -> Dict[int, Dict[str, float]]:
    """Per-shard traffic over a sharded-PS run: rounds, bytes, seconds and
    degraded (reduced-contributor) rounds, keyed by shard index.

    Empty for unsharded runs — only ``collective`` events carrying a
    ``shard`` field contribute, so the dashboard's shard table appears
    exactly when sharding ran.
    """
    out: Dict[int, Dict[str, float]] = {}
    ranks_seen: Dict[int, float] = {}
    for e in events_of_type(events, "collective"):
        shard = e.data.get("shard")
        if shard is None:
            continue
        s = int(shard)
        tot = out.setdefault(
            s, {"rounds": 0.0, "bytes": 0.0, "seconds": 0.0, "degraded": 0.0}
        )
        tot["rounds"] += 1.0
        tot["bytes"] += float(e.data.get("bytes", 0.0))
        tot["seconds"] += float(e.data.get("seconds", 0.0))
        k = float(e.data.get("ranks", 0.0))
        full = ranks_seen.get(s)
        ranks_seen[s] = max(k, full if full is not None else k)
    # A round is degraded when its contributor count fell below the shard's
    # observed maximum (the full cohort for that run).
    for e in events_of_type(events, "collective"):
        shard = e.data.get("shard")
        if shard is None:
            continue
        s = int(shard)
        if float(e.data.get("ranks", 0.0)) < ranks_seen.get(s, 0.0):
            out[s]["degraded"] += 1.0
    return out


def shard_round_series(events: Sequence[TraceEvent]) -> Optional[np.ndarray]:
    """Per-step sharded round seconds (sum of ``shard_round`` events), or
    ``None`` when the run was unsharded."""
    rounds = events_of_type(events, "shard_round")
    if not rounds:
        return None
    rng = _step_range(events)
    if rng is None:
        return None
    series = np.zeros(len(rng), dtype=np.float64)
    for e in rounds:
        if e.step is not None and e.step in rng:
            series[e.step - rng.start] += float(e.data.get("seconds", 0.0))
    return series
