"""Structured run observability: tracing + metrics (``repro.obs``).

One :class:`~repro.obs.trace.Tracer` is *installed* for the duration of a
run; every instrumented component (trainers, collectives, the network
model, executors, the fault injector) asks :func:`active` for it and emits
typed events when — and only when — one is installed. With no tracer
installed every instrumentation site reduces to a single ``None`` check,
so untraced runs pay nothing and are bitwise-identical to a build without
this package.

Usage::

    tracer = Tracer(path="trace.jsonl", name="selsync")
    with use(tracer):
        trainer.run(cfg)
    tracer.close()                      # sorted, deterministic JSONL
    print(tracer.metrics.summary())
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import MetricsRegistry  # noqa: F401
from repro.obs.trace import (  # noqa: F401
    AGGREGATION_KINDS,
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    Tracer,
)

_installed: Optional[Tracer] = None
_install_lock = threading.Lock()


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (the zero-overhead common case)."""
    return _installed


def install(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` globally (``None`` uninstalls).

    The simulation is one process with one run in flight at a time, so a
    single slot suffices; nested installs are a bug and raise.
    """
    global _installed
    with _install_lock:
        if tracer is not None and _installed is not None and _installed is not tracer:
            raise RuntimeError("a different tracer is already installed")
        _installed = tracer


@contextmanager
def use(tracer: Optional[Tracer]):
    """Install ``tracer`` for the duration of the block (no-op on None)."""
    if tracer is None:
        yield None
        return
    install(tracer)
    try:
        yield tracer
    finally:
        install(None)
