"""Trace persistence: deterministic JSONL writing, reading and validation.

One header line followed by one event per line, sorted by ``(step, worker,
seq)``. Serialization is byte-deterministic: keys are emitted in a fixed
order, floats use :func:`repr`-faithful ``json.dumps`` formatting, and
non-finite values go through the tag encoding of
:mod:`repro.utils.serialization` so strict JSON parsers can read a diverged
run's trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceEvent
from repro.utils.serialization import decode_jsonable, encode_jsonable

PathLike = Union[str, Path]


def event_to_jsonable(ev: TraceEvent) -> Dict:
    """One event as a strict-JSON-safe dict with a fixed key order."""
    return {
        "etype": ev.etype,
        "step": ev.step,
        "worker": ev.worker,
        "seq": ev.seq,
        "data": encode_jsonable(ev.data),
    }


def event_from_jsonable(rec: Dict) -> TraceEvent:
    return TraceEvent(
        etype=rec["etype"],
        step=int(rec["step"]),
        worker=int(rec["worker"]),
        seq=int(rec["seq"]),
        data=decode_jsonable(rec.get("data", {})),
    )


def event_line(ev: TraceEvent) -> str:
    """The canonical serialized form of one event (no newline).

    ``sort_keys`` makes the byte layout independent of dict build order
    inside ``data`` — the trace's byte-identity guarantees rest on it.
    """
    return json.dumps(event_to_jsonable(ev), sort_keys=True, allow_nan=False)


def write_trace(path: PathLike, header: Dict, events: Iterable[TraceEvent]) -> None:
    """Write header + events as JSONL. Events must already be in canonical
    order (:attr:`repro.obs.trace.Tracer.events` returns them sorted)."""
    path = Path(path)
    with path.open("w") as f:
        f.write(json.dumps(header, sort_keys=True, allow_nan=False) + "\n")
        for ev in events:
            f.write(event_line(ev) + "\n")


def read_trace(path: PathLike) -> Tuple[Dict, List[TraceEvent]]:
    """Parse a trace file back into ``(header, events)``.

    Validates the schema version and that events arrive in canonical order
    — an out-of-order trace means some writer bypassed the sorted flush,
    which would silently break every downstream byte comparison.
    """
    path = Path(path)
    header: Dict = {}
    events: List[TraceEvent] = []
    with path.open() as f:
        for lineno, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if lineno == 0:
                if rec.get("kind") != "header":
                    raise ValueError(f"{path}: first line is not a trace header")
                if rec.get("schema") != TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: trace schema {rec.get('schema')} != "
                        f"{TRACE_SCHEMA_VERSION}"
                    )
                header = rec
                continue
            events.append(event_from_jsonable(rec))
    for prev, cur in zip(events, events[1:]):
        if cur.key < prev.key:
            raise ValueError(
                f"{path}: events out of canonical order at key {cur.key} "
                f"after {prev.key}"
            )
    return header, events


def event_lines(path: PathLike) -> List[str]:
    """Raw event lines (header excluded) — the unit of byte comparison for
    golden-trace tests: an interrupted run's lines plus its resumed run's
    lines must equal the uninterrupted run's lines exactly."""
    with Path(path).open() as f:
        lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    return lines[1:]


def roundtrip(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """parse(serialize(events)) — the property tests assert this is the
    identity on (etype, step, worker, seq, data)."""
    return [event_from_jsonable(json.loads(event_line(ev))) for ev in events]
