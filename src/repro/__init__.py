"""SelSync reproduction: selective synchronization for distributed training.

Reproduction of *Accelerating Distributed ML Training via Selective
Synchronization* (Tyagi & Swany, IEEE CLUSTER 2023) as a self-contained
numpy library: a gradient-checked NN substrate, a simulated multi-worker
cluster with an explicit communication cost model, the SelSync algorithm
(delta-thresholded relative-gradient-change synchronization, PA/GA
aggregation, SelDP partitioning, non-IID data injection) and the
BSP / FedAvg / SSP / compression baselines it is evaluated against.

Quickstart::

    from repro.experiments.workloads import get_workload
    from repro.experiments.runner import MethodSpec, run_method

    built = get_workload("resnet_cifar10").build(n_workers=4, n_steps=300)
    result = run_method(MethodSpec("selsync", {"delta": 0.3}), built, n_steps=300)
    print(result.final_metric, result.lssr, result.sim_time)
"""

__version__ = "0.1.0"

from repro.core import (
    BSPTrainer,
    ClusterConfig,
    FedAvgTrainer,
    LocalSGDTrainer,
    RelativeGradChange,
    SSPTrainer,
    SelSyncTrainer,
    TrainConfig,
)
from repro.core.trainer import TrainResult

__all__ = [
    "__version__",
    "RelativeGradChange",
    "SelSyncTrainer",
    "BSPTrainer",
    "FedAvgTrainer",
    "SSPTrainer",
    "LocalSGDTrainer",
    "ClusterConfig",
    "TrainConfig",
    "TrainResult",
]
