"""Headline metrics: throughput scaling, time-to-metric and paper-style
speedup-vs-BSP."""

from __future__ import annotations

from typing import Optional

from repro.comm.network import NetworkModel
from repro.comm.topology import build_topology
from repro.core.trainer import TrainResult
from repro.utils.runlog import RunLog


def relative_throughput(
    flops_per_sample: float,
    batch_size: int,
    n_workers: int,
    comm_bytes: float,
    net: NetworkModel = None,
    topology: str = "ps",
    device_flops: float = 2.0e12,
) -> float:
    """Fig. 1a's metric: samples/s at N workers over samples/s at 1 worker.

    ``throughput(N) = N·b / (t_c + t_s(N))`` with ``t_s(1) = 0``; linear
    scaling would give exactly N.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    net = net if net is not None else NetworkModel()
    topo = build_topology(topology)
    t_c = 3.0 * flops_per_sample * batch_size / device_flops
    t_s = topo.sync_time(comm_bytes, n_workers, net)
    single = batch_size / t_c
    return (n_workers * batch_size / (t_c + t_s)) / single


def time_to_metric(
    log: RunLog, target: float, higher_is_better: bool = True
) -> Optional[float]:
    """Simulated seconds until the eval metric first reaches ``target``."""
    for ev in log.evals:
        if (ev.metric >= target) if higher_is_better else (ev.metric <= target):
            return ev.sim_time
    return None


def speedup_vs_bsp(
    bsp: TrainResult,
    other: TrainResult,
    higher_is_better: bool = True,
    tolerance: float = 0.0,
) -> Optional[float]:
    """Table I's 'Overall speedup' column.

    Defined only when the method matches BSP's converged quality (within
    ``tolerance``); then it is the ratio of simulated end-to-end training
    times. Returns ``None`` when the method failed to reach BSP's level —
    the rows the paper leaves blank.
    """
    if bsp.best_metric is None or other.best_metric is None:
        return None
    if higher_is_better:
        reached = other.best_metric >= bsp.best_metric - tolerance
    else:
        reached = other.best_metric <= bsp.best_metric + tolerance
    if not reached:
        return None
    if other.sim_time <= 0:
        return None
    return bsp.sim_time / other.sim_time


def convergence_difference(
    bsp: TrainResult, other: TrainResult, higher_is_better: bool = True
) -> Optional[float]:
    """Table I's 'Conv. Diff.' column: method metric − BSP metric (signed so
    positive always means better-than-BSP)."""
    if bsp.best_metric is None or other.best_metric is None:
        return None
    diff = other.best_metric - bsp.best_metric
    return diff if higher_is_better else -diff
