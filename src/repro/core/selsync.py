"""SelSync: δ-thresholded selective synchronization (paper §III, Alg. 1).

Every iteration each worker computes its gradient and the relative gradient
change Δ(g_i) (Eqn. 2, EWMA-smoothed). Workers whose Δ(g_i) ≥ δ raise a
1-bit flag; an allgather shares the flags and if *any* worker raised one,
the whole cluster synchronizes this step — by parameter aggregation (PA,
the paper's recommended mode) or gradient aggregation (GA, the §III-C
comparison). Otherwise every worker applies its own update locally.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig
from repro.core.grad_tracker import RelativeGradChange
from repro.core.trainer import DistributedTrainer
from repro.data.injection import DataInjector
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import IterationRecord

#: Default simulated cost of computing Δ(g_i) with EWMA smoothing at w=25
#: (paper Fig. 8a: ≈2–17 ms depending on the model; we charge a middle value).
DEFAULT_DELTA_OVERHEAD_S = 3e-3


class SelSyncTrainer(DistributedTrainer):
    """The paper's contribution.

    Parameters
    ----------
    delta:
        Threshold δ on Δ(g_i). δ=0 degenerates to BSP; δ above the
        gradient-change extremum M degenerates to pure local-SGD (Fig. 6).
    aggregation:
        ``"params"`` (PA) or ``"grads"`` (GA). PA keeps every replica
        consistent with the global model after each sync; GA lets replicas
        drift because the averaged gradient lands on divergent parameters
        (§III-C) — implemented faithfully so Fig. 10/11 reproduce.
    ewma_alpha / ewma_window:
        Smoothing parameters of the Δ tracker. ``None`` alpha uses the
        paper's N/100 heuristic.
    injector:
        Optional non-IID data injection (§III-E); its per-iteration P2P cost
        is charged to the clock.
    sync_vote:
        ``"any"`` (Alg. 1: one raised flag syncs everyone) or ``"majority"``
        (ablation: sync only when more than half the workers vote for it).
    delta_overhead_s:
        Simulated per-step cost of the Δ(g_i) computation, charged only to
        SelSync (BSP/FedAvg/SSP do not compute it — §IV-B).
    delta_policy:
        Optional :class:`~repro.core.adaptive.DeltaPolicy` that picks the
        threshold online (extension beyond the paper); overrides ``delta``.
    """

    name = "selsync"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        delta: float = 0.3,
        aggregation: str = "params",
        ewma_alpha: Optional[float] = None,
        ewma_window: int = 25,
        injector: Optional[DataInjector] = None,
        sync_vote: str = "any",
        delta_overhead_s: float = DEFAULT_DELTA_OVERHEAD_S,
        delta_policy=None,
    ):
        super().__init__(workers, cluster, schedule)
        if delta < 0:
            raise ValueError(f"δ must be >= 0, got {delta}")
        if aggregation not in ("params", "grads"):
            raise ValueError(f"aggregation must be 'params' or 'grads', got {aggregation!r}")
        if sync_vote not in ("any", "majority"):
            raise ValueError(f"sync_vote must be 'any' or 'majority', got {sync_vote!r}")
        self.delta = float(delta)
        self.aggregation = aggregation
        self.sync_vote = sync_vote
        self.injector = injector
        self.delta_overhead_s = delta_overhead_s
        self.delta_policy = delta_policy
        alpha = ewma_alpha if ewma_alpha is not None else min(1.0, max(0.01, cluster.n_workers / 100.0))
        self.trackers = [
            RelativeGradChange(alpha=alpha, window=ewma_window) for _ in workers
        ]

    @property
    def max_observed_delta(self) -> float:
        """Cluster-wide extremum M of Δ(g_i) (Fig. 6's upper bound)."""
        return max(t.max_delta for t in self.trackers)

    def _gather_batches(self, live=None):
        """Next mini-batch per live worker, with optional data injection.

        Injection requires the full worker set (the P2P plan is built for N
        ranks), so it is skipped on degraded steps where some workers are
        down — a fault-mode limitation, not a reproduction caveat.
        """
        workers = (
            self.workers if live is None else [self.workers[w] for w in live]
        )
        batches = [w.loader.next_batch() for w in workers]
        inject_time = 0.0
        if self.injector is not None and len(workers) == len(self.workers):
            result = self.injector.inject(batches)
            batches = result.batches
            inject_time = self.group.p2p(result.bytes_transferred)
        return batches, inject_time

    def step(self, i: int) -> IterationRecord:
        sf = self.begin_faults(i)
        degraded = self.degraded_mode
        live = sf.live
        live_workers = [self.workers[w] for w in live]

        lr = self.lr(i)
        batches, inject_time = self._gather_batches(live if degraded else None)
        batch_size = len(batches[0][0])
        t_c = self.max_compute_time(batch_size, step=i, live=live)
        threshold = (
            self.delta
            if self.delta_policy is None
            else self.delta_policy.effective_delta(self, i)
        )

        losses = self.executor.compute_gradients(live_workers, batches)
        # Live workers with an intact gradient; only they update their Δ
        # tracker and vote — a NaN burst must not poison the EWMA (Eqn. 2),
        # and a health-quarantined worker loses its vote with its push.
        voters = self.apply_corruption(sf)
        voters = self.screen_updates(i, voters, observed=live)
        # A *naturally* non-finite gradient (numeric overflow on a replica
        # poisoned in an earlier round) gets the same treatment as an
        # injected NaN burst: the worker can neither update its EWMA nor
        # vote/push this round, and skips its local step until a sync
        # heals it. Fault-free runs never take this branch.
        voters = [
            w for w in voters if np.isfinite(self.workers[w].last_grad_sqnorm)
        ]
        voter_set = set(voters)
        flags = [0] * len(self.workers)
        deltas = []
        tr = obs.active()
        for wid in voters:
            d = self.trackers[wid].update(self.workers[wid].last_grad_sqnorm)
            deltas.append(d)
            flags[wid] = 1 if d >= threshold else 0
            if tr is not None:
                tr.emit(
                    "delta_eval",
                    worker=wid,
                    delta=float(d),
                    vote=bool(flags[wid]),
                    threshold=float(threshold),
                )

        gathered, t_flags = self.group.allgather_flags(flags)
        if self.sync_vote == "any":
            sync = bool(gathered.any())
        else:
            sync = int(gathered.sum()) > len(self.workers) // 2
        if tr is not None:
            tr.emit(
                "sync_decision",
                synced=bool(sync),
                n_flags=int(gathered.sum()),
                vote=self.sync_vote,
            )

        t_s = 0.0
        pushers = voters
        if sync:
            # Upload faults only bite when a sync round actually pushes.
            t_retry, lost = self.upload_penalty(voters, i)
            if lost:
                lost_set = set(lost)
                pushers = [w for w in voters if w not in lost_set]
            self.check_quorum(len(pushers), i)
        if self.aggregation == "params":
            # Alg. 1 line 9: apply local updates unconditionally... but a
            # corrupted gradient must not land on the replica; the worker
            # skips its step and (on sync) heals from the pulled average.
            for wid in live:
                if wid in voter_set:
                    self.workers[wid].local_step(lr)
            if sync:
                # ...then push w_{i+1} and pull the average (lines 14-15).
                global_params = self.server.aggregate_params(
                    self.wire_updates(
                        pushers,
                        [self.workers[w].get_params(copy=False) for w in pushers],
                    )
                )
                t_s = self.group.charge_sync(
                    self.comm_bytes,
                    n_live=len(pushers) if degraded else None,
                    rank_ids=pushers if degraded else None,
                )
                if tr is not None:
                    tr.emit("aggregation", kind="PA", n_contrib=len(pushers))
                for w in live_workers:
                    w.set_params(global_params)
        else:  # gradient aggregation
            if sync:
                mean_grad = self.server.aggregate_grads(
                    self.wire_updates(
                        pushers, [self.workers[w].get_grads() for w in pushers]
                    )
                )
                t_s = self.group.charge_sync(
                    self.comm_bytes,
                    n_live=len(pushers) if degraded else None,
                    rank_ids=pushers if degraded else None,
                )
                if tr is not None:
                    tr.emit("aggregation", kind="GA", n_contrib=len(pushers))
                # The same averaged gradient lands on *divergent* local
                # parameters — replicas are NOT re-consistent afterwards.
                # The mean replaces every live worker's gradient, healing
                # corrupted ones.
                for w in live_workers:
                    w.apply_gradient(mean_grad, lr)
            else:
                for wid in live:
                    if wid in voter_set:
                        self.workers[wid].local_step(lr)

        t_s = self.effective_sync_time(t_s, t_c)
        if sync and degraded:
            t_s += t_retry
        if self.delta_policy is not None and hasattr(self.delta_policy, "observe"):
            self.delta_policy.observe(sync)

        finite = [d for d in deltas if np.isfinite(d)]
        return IterationRecord(
            step=i,
            synced=sync,
            sim_time=t_c + t_flags + self.delta_overhead_s + t_s + inject_time,
            comm_time=t_flags + t_s + inject_time,
            loss=float(np.mean(losses)),
            grad_change=float(max(finite)) if finite else float("inf"),
            extra={"n_flags": float(int(gathered.sum()))},
        )

    # -- fault/checkpoint hooks -------------------------------------------
    def _on_worker_rejoin(self, worker_id: int, from_checkpoint: bool) -> None:
        if from_checkpoint and self._latest_checkpoint is not None:
            self.trackers[worker_id].load_state_dict(
                self._latest_checkpoint["extra"]["trackers"][worker_id]
            )
        else:
            # No checkpoint to restore from: the Δ history died with the
            # worker; restart the EWMA (first update re-seeds it).
            self.trackers[worker_id].reset()

    def _resize_per_worker_state(self, mapping):
        """Realign the per-worker Δ trackers with the new membership:
        surviving workers keep their EWMA history, joiners (and every rank
        on an elastic resume) start a fresh tracker with the original
        smoothing parameters."""
        proto = self.trackers[0]
        self.trackers = [
            self.trackers[old]
            if old is not None
            else RelativeGradChange(alpha=proto.alpha, window=proto.window)
            for old in mapping
        ]

    def _extra_state(self):
        state = {"trackers": [t.state_dict() for t in self.trackers]}
        if self.delta_policy is not None:
            state["delta_policy"] = self.delta_policy.state_dict()
        return state

    def _load_extra_state(self, state):
        for t, s in zip(self.trackers, state["trackers"]):
            t.load_state_dict(s)
        if self.delta_policy is not None:
            self.delta_policy.load_state_dict(state.get("delta_policy", {}))
