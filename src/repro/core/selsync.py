"""SelSync: δ-thresholded selective synchronization (paper §III, Alg. 1).

Every iteration each worker computes its gradient and the relative gradient
change Δ(g_i) (Eqn. 2, EWMA-smoothed). Workers whose Δ(g_i) ≥ δ raise a
1-bit flag; an allgather shares the flags and if *any* worker raised one,
the whole cluster synchronizes this step — by parameter aggregation (PA,
the paper's recommended mode) or gradient aggregation (GA, the §III-C
comparison). Otherwise every worker applies its own update locally.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig
from repro.core.grad_tracker import RelativeGradChange
from repro.core.trainer import DistributedTrainer
from repro.data.injection import DataInjector
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import IterationRecord

#: Default simulated cost of computing Δ(g_i) with EWMA smoothing at w=25
#: (paper Fig. 8a: ≈2–17 ms depending on the model; we charge a middle value).
DEFAULT_DELTA_OVERHEAD_S = 3e-3


class SelSyncTrainer(DistributedTrainer):
    """The paper's contribution.

    Parameters
    ----------
    delta:
        Threshold δ on Δ(g_i). δ=0 degenerates to BSP; δ above the
        gradient-change extremum M degenerates to pure local-SGD (Fig. 6).
    aggregation:
        ``"params"`` (PA) or ``"grads"`` (GA). PA keeps every replica
        consistent with the global model after each sync; GA lets replicas
        drift because the averaged gradient lands on divergent parameters
        (§III-C) — implemented faithfully so Fig. 10/11 reproduce.
    ewma_alpha / ewma_window:
        Smoothing parameters of the Δ tracker. ``None`` alpha uses the
        paper's N/100 heuristic.
    injector:
        Optional non-IID data injection (§III-E); its per-iteration P2P cost
        is charged to the clock.
    sync_vote:
        ``"any"`` (Alg. 1: one raised flag syncs everyone) or ``"majority"``
        (ablation: sync only when more than half the workers vote for it).
    delta_overhead_s:
        Simulated per-step cost of the Δ(g_i) computation, charged only to
        SelSync (BSP/FedAvg/SSP do not compute it — §IV-B).
    delta_policy:
        Optional :class:`~repro.core.adaptive.DeltaPolicy` that picks the
        threshold online (extension beyond the paper); overrides ``delta``.
    """

    name = "selsync"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        delta: float = 0.3,
        aggregation: str = "params",
        ewma_alpha: Optional[float] = None,
        ewma_window: int = 25,
        injector: Optional[DataInjector] = None,
        sync_vote: str = "any",
        delta_overhead_s: float = DEFAULT_DELTA_OVERHEAD_S,
        delta_policy=None,
    ):
        super().__init__(workers, cluster, schedule)
        if delta < 0:
            raise ValueError(f"δ must be >= 0, got {delta}")
        if aggregation not in ("params", "grads"):
            raise ValueError(f"aggregation must be 'params' or 'grads', got {aggregation!r}")
        if sync_vote not in ("any", "majority"):
            raise ValueError(f"sync_vote must be 'any' or 'majority', got {sync_vote!r}")
        self.delta = float(delta)
        self.aggregation = aggregation
        self.sync_vote = sync_vote
        self.injector = injector
        self.delta_overhead_s = delta_overhead_s
        self.delta_policy = delta_policy
        alpha = ewma_alpha if ewma_alpha is not None else min(1.0, max(0.01, cluster.n_workers / 100.0))
        self.trackers = [
            RelativeGradChange(alpha=alpha, window=ewma_window) for _ in workers
        ]

    @property
    def max_observed_delta(self) -> float:
        """Cluster-wide extremum M of Δ(g_i) (Fig. 6's upper bound)."""
        return max(t.max_delta for t in self.trackers)

    def _gather_batches(self):
        """Next mini-batch per worker, with optional data injection."""
        batches = [w.loader.next_batch() for w in self.workers]
        inject_time = 0.0
        if self.injector is not None:
            result = self.injector.inject(batches)
            batches = result.batches
            inject_time = self.group.p2p(result.bytes_transferred)
        return batches, inject_time

    def step(self, i: int) -> IterationRecord:
        lr = self.lr(i)
        batches, inject_time = self._gather_batches()
        batch_size = len(batches[0][0])
        t_c = self.max_compute_time(batch_size)
        threshold = (
            self.delta
            if self.delta_policy is None
            else self.delta_policy.effective_delta(self, i)
        )

        losses = self.executor.compute_gradients(self.workers, batches)
        flags = []
        deltas = []
        for w, tracker in zip(self.workers, self.trackers):
            d = tracker.update(w.last_grad_sqnorm)
            deltas.append(d)
            flags.append(1 if d >= threshold else 0)

        gathered, t_flags = self.group.allgather_flags(flags)
        if self.sync_vote == "any":
            sync = bool(gathered.any())
        else:
            sync = int(gathered.sum()) > len(self.workers) // 2

        t_s = 0.0
        if self.aggregation == "params":
            # Alg. 1 line 9: apply local updates unconditionally...
            for w in self.workers:
                w.local_step(lr)
            if sync:
                # ...then push w_{i+1} and pull the average (lines 14-15).
                global_params = self.server.aggregate_params(
                    [w.get_params(copy=False) for w in self.workers]
                )
                t_s = self.group.charge_sync(self.comm_bytes)
                for w in self.workers:
                    w.set_params(global_params)
        else:  # gradient aggregation
            if sync:
                mean_grad = self.server.aggregate_grads(
                    [w.get_grads() for w in self.workers]
                )
                t_s = self.group.charge_sync(self.comm_bytes)
                # The same averaged gradient lands on *divergent* local
                # parameters — replicas are NOT re-consistent afterwards.
                for w in self.workers:
                    w.apply_gradient(mean_grad, lr)
            else:
                for w in self.workers:
                    w.local_step(lr)

        t_s = self.effective_sync_time(t_s, t_c)
        if self.delta_policy is not None and hasattr(self.delta_policy, "observe"):
            self.delta_policy.observe(sync)

        finite = [d for d in deltas if np.isfinite(d)]
        return IterationRecord(
            step=i,
            synced=sync,
            sim_time=t_c + t_flags + self.delta_overhead_s + t_s + inject_time,
            comm_time=t_flags + t_s + inject_time,
            loss=float(np.mean(losses)),
            grad_change=float(max(finite)) if finite else float("inf"),
            extra={"n_flags": float(int(gathered.sum()))},
        )
