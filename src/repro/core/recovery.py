"""Automatic rollback recovery: a supervisor around the trainer run loop.

Fault injection makes failures *loud* — :class:`QuorumLostError` aborts a
run the moment too few workers can contribute, and unbounded replica
divergence quietly ruins a model long before any metric notices. The
:class:`RecoverySupervisor` turns both into recoverable incidents:

* **Quorum loss** — relax the quorum to the surviving contributor count
  (never below ``quorum_floor``), roll back to the latest checkpoint, and
  retry with the surviving worker set.
* **Divergence blow-up** — a step monitor (installed through
  ``TrainConfig.step_monitor``) watches the replica spread every step;
  when it stays above ``divergence_threshold`` for ``divergence_patience``
  consecutive steps the run is aborted with
  :class:`DivergenceExceededError`, rolled back, and every replica is
  re-synced to the restored consensus before the retry.

Each recovery waits an exponential backoff (simulated — recorded, never
slept), up to ``max_recoveries`` attempts. Every incident is recorded as a
typed ``recovery`` :class:`~repro.utils.runlog.FaultRecord` on the final
run's log and as a ``fault`` trace event, so the trace remains the ground
truth of everything that happened — including the aborted attempts.

The supervisor is pure orchestration: a run that never trips either
trigger executes exactly one ``trainer.run(cfg)`` with an unmodified
config (when no divergence watchdog is requested), so fault-free runs stay
bitwise identical to unsupervised ones.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Optional

from repro.cluster.faults import QuorumLostError
from repro.comm.envelope import CollectiveTimeoutError
from repro.core.config import TrainConfig
from repro.core.divergence import replica_spread
from repro.core.trainer import DistributedTrainer, TrainResult
from repro.utils.runlog import FaultRecord


class DivergenceExceededError(RuntimeError):
    """Replica spread stayed above the threshold for too many steps."""

    def __init__(self, msg: str, step: int = -1, spread: float = float("nan")):
        super().__init__(msg)
        self.step = step
        self.spread = spread


class RecoverySupervisor:
    """Run a trainer to completion through quorum-loss/divergence faults.

    Parameters
    ----------
    max_recoveries:
        Recovery attempts before giving up (the final failure re-raises).
    backoff_base_s:
        Simulated backoff before retry ``k`` is ``base × 2^(k-1)`` seconds
        — recorded in the ``recovery`` fault record, never slept for real.
    divergence_threshold:
        Replica-spread level that counts as divergence; ``None`` (default)
        installs no watchdog and leaves ``TrainConfig.step_monitor``
        untouched.
    divergence_patience:
        Consecutive above-threshold steps before the watchdog aborts.
    quorum_floor:
        Lowest quorum the supervisor will relax to after a quorum loss.
    """

    def __init__(
        self,
        max_recoveries: int = 3,
        backoff_base_s: float = 1.0,
        divergence_threshold: Optional[float] = None,
        divergence_patience: int = 3,
        quorum_floor: int = 1,
    ):
        if max_recoveries < 0:
            raise ValueError(f"max_recoveries must be >= 0, got {max_recoveries}")
        if backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {backoff_base_s}")
        if divergence_threshold is not None and divergence_threshold <= 0:
            raise ValueError(
                f"divergence_threshold must be > 0, got {divergence_threshold}"
            )
        if divergence_patience < 1:
            raise ValueError(
                f"divergence_patience must be >= 1, got {divergence_patience}"
            )
        if quorum_floor < 1:
            raise ValueError(f"quorum_floor must be >= 1, got {quorum_floor}")
        self.max_recoveries = int(max_recoveries)
        self.backoff_base_s = float(backoff_base_s)
        self.divergence_threshold = divergence_threshold
        self.divergence_patience = int(divergence_patience)
        self.quorum_floor = int(quorum_floor)
        #: ``recovery`` records of every incident handled so far (also
        #: appended to the final result's RunLog).
        self.recoveries: List[FaultRecord] = []
        self._hot_streak = 0

    # -- divergence watchdog ----------------------------------------------
    def _monitor(self, trainer: DistributedTrainer, step: int) -> None:
        spread = replica_spread(trainer.workers)
        if spread > self.divergence_threshold:
            self._hot_streak += 1
            if self._hot_streak >= self.divergence_patience:
                raise DivergenceExceededError(
                    f"step {step}: replica spread {spread:.3g} above "
                    f"{self.divergence_threshold:.3g} for "
                    f"{self._hot_streak} consecutive steps",
                    step=step,
                    spread=spread,
                )
        else:
            self._hot_streak = 0

    def _wrap(self, cfg: TrainConfig) -> TrainConfig:
        if self.divergence_threshold is None:
            return cfg
        if cfg.step_monitor is not None:
            raise ValueError(
                "TrainConfig.step_monitor is already set; the supervisor's "
                "divergence watchdog would overwrite it"
            )
        return dataclasses.replace(cfg, step_monitor=self._monitor)

    # -- rollback ----------------------------------------------------------
    def _rollback(self, trainer: DistributedTrainer, cfg: TrainConfig) -> TrainConfig:
        """Restore the latest checkpoint (or the initial snapshot) and
        return the config the retry should run with."""
        ck_path = cfg.checkpoint_path
        if ck_path is not None and os.path.exists(ck_path):
            # Resume from the on-disk checkpoint: trainer state, step
            # counter, and run log all restore inside trainer.run().
            return dataclasses.replace(cfg, resume_from=ck_path)
        # No checkpoint yet: roll back to the pre-run snapshot and retry
        # from step 0.
        trainer.load_state_dict(self._initial_state)
        return dataclasses.replace(cfg, resume_from=None)

    def _record(
        self,
        cfg: TrainConfig,
        step: int,
        attempt: int,
        reason: str,
        detail: dict,
    ) -> FaultRecord:
        backoff = self.backoff_base_s * (2.0 ** (attempt - 1))
        rec = FaultRecord(
            step=step,
            worker=-1,
            kind="recovery",
            detail={"attempt": attempt, "reason": reason, "backoff_s": backoff, **detail},
        )
        self.recoveries.append(rec)
        tr = cfg.tracer
        if tr is not None:
            # Emitted directly (the run that raised has already torn down
            # its obs context): the trace keeps the aborted attempt's
            # events *and* the incident that ended it.
            tr.emit(
                "fault",
                step=step,
                worker=-1,
                fault_kind="recovery",
                **rec.detail,
            )
        return rec

    # -- the supervised loop ----------------------------------------------
    def run(self, trainer: DistributedTrainer, cfg: TrainConfig) -> TrainResult:
        """``trainer.run(cfg)`` with rollback-and-retry around it."""
        cfg = self._wrap(cfg)
        # Pre-run snapshot: the rollback target before the first checkpoint
        # exists. state_dict() copies arrays, so later training does not
        # mutate it.
        self._initial_state = trainer.state_dict()
        attempt = 0
        while True:
            try:
                self._hot_streak = 0
                result = trainer.run(cfg)
                for rec in self.recoveries:
                    result.log.record_fault(rec)
                return result
            except QuorumLostError as e:
                attempt += 1
                survivors = max(self.quorum_floor, int(getattr(e, "contributing", 0)))
                detail = {
                    "quorum_before": trainer.quorum,
                    "quorum_after": survivors,
                    "contributing": int(getattr(e, "contributing", -1)),
                }
                self._record(
                    cfg, int(getattr(e, "step", -1)), attempt,
                    "quorum_lost", detail,
                )
                if attempt > self.max_recoveries:
                    raise
                # Degrade to the surviving worker set: demanding the old
                # quorum again would fail the same way immediately.
                trainer.quorum = survivors
                cfg = self._rollback(trainer, cfg)
            except CollectiveTimeoutError as e:
                attempt += 1
                self._record(
                    cfg, e.step, attempt,
                    "collective_timeout",
                    {
                        "op": e.op,
                        "src": e.src,
                        "dst": e.dst,
                        "attempts": e.attempts,
                    },
                )
                if attempt > self.max_recoveries:
                    raise
                # The schedule could not route around a dead link this
                # step. Roll back and retry: a flapping link may be up
                # again, and a persistent partition will have shrunk the
                # live set by then (the partition filter degrades the
                # round to the majority side before the collective runs).
                cfg = self._rollback(trainer, cfg)
            except DivergenceExceededError as e:
                attempt += 1
                self._record(
                    cfg, e.step, attempt,
                    "divergence", {"spread": float(e.spread)},
                )
                if attempt > self.max_recoveries:
                    raise
                cfg = self._rollback(trainer, cfg)
                # The checkpoint was taken mid-drift; collapse the spread
                # so the retry restarts from consensus instead of diverging
                # again from the same state.
                if cfg.resume_from is not None:
                    trainer.load_state_dict(_checkpoint_state(cfg.resume_from))
                trainer.resync_replicas()
                if cfg.checkpoint_path is not None:
                    # Re-snapshot the resynced state so the retry resumes
                    # from consensus (not the divergent checkpoint).
                    _rewrite_checkpoint(cfg, trainer)


def _checkpoint_state(path: str) -> dict:
    from repro.utils.serialization import load_checkpoint

    return load_checkpoint(path)["state"]


def _rewrite_checkpoint(cfg: TrainConfig, trainer: DistributedTrainer) -> None:
    """Overwrite the checkpoint file's trainer state with the resynced one
    (step counter / log / best metric are kept as saved)."""
    from repro.utils.serialization import load_checkpoint, save_checkpoint

    ck = load_checkpoint(cfg.checkpoint_path)
    ck["state"] = trainer.state_dict()
    save_checkpoint(ck, cfg.checkpoint_path)
