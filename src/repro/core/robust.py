"""Robust aggregation: pluggable Byzantine-tolerant reductions.

The paper's protocol (and every baseline) aggregates worker updates with a
plain mean — a single adversarial or corrupted vector moves the global model
arbitrarily far. This module provides a registry of drop-in
:class:`Aggregator` strategies with well-known robustness guarantees:

================  ==========================================================
``mean``          Plain average (the paper's protocol; breakdown point 0).
``median``        Coordinate-wise median; tolerates < k/2 arbitrary vectors
                  per coordinate.
``trimmed_mean``  Drop the ``f`` largest and ``f`` smallest values per
                  coordinate, average the rest (Yin et al., 2018).
``norm_clip``     Scale every vector down to ``factor ×`` the median norm
                  before averaging — bounds the influence of large-norm
                  outliers without discarding anyone.
``krum``          Select the single vector closest (in summed squared
                  distance) to its ``k − f − 2`` nearest neighbours
                  (Blanchard et al., 2017).
``multi_krum``    Krum's selection extended to the ``m`` best-scoring
                  vectors, averaged.
================  ==========================================================

Every strategy shares one entry point, :meth:`Aggregator.reduce`, which
pre-filters non-finite vectors (a NaN burst is dropped, not averaged),
aggregates the survivors, and emits a typed ``aggregator_decision`` trace
event when a tracer is installed. Selecting ``aggregator="mean"`` in
:class:`~repro.core.config.ClusterConfig` bypasses this layer entirely so
default runs stay byte-identical to the original mean path; the registered
``mean`` strategy exists for direct use and for the property-test surface
(its arithmetic is bitwise-identical to the legacy path).

All aggregators are deterministic pure functions of their input sequence:
the same vectors in the same (worker-id) order produce the same bytes on
every executor backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cluster.faults import NonFiniteUpdateError
from repro.utils import fastpath
from repro.utils.flatten import mean_into
from repro.utils.registry import Registry

#: name → Aggregator subclass. Construction goes through
#: :func:`make_aggregator`, which maps config knobs onto constructor args.
AGGREGATORS: Registry = Registry("aggregator")


def filter_finite(
    vectors: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], List[int]]:
    """Split ``vectors`` into (finite survivors, dropped indices).

    Order is preserved — robustness proofs and the determinism contract
    both assume the survivor sequence keeps the caller's worker order.
    """
    kept: List[np.ndarray] = []
    dropped: List[int] = []
    for i, v in enumerate(vectors):
        if np.isfinite(v).all():
            kept.append(v)
        else:
            dropped.append(i)
    return kept, dropped


class Aggregator:
    """Base class: reduce k flat update vectors to one.

    Subclasses implement :meth:`aggregate` over vectors that are already
    guaranteed finite and equally shaped; :meth:`reduce` is the public
    entry point used by the parameter server and the collectives.
    """

    name = "abstract"

    def aggregate(
        self, vectors: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, Dict]:
        """Pure reduction: ``(aggregate_vector, info)``.

        ``info`` carries JSON-safe scalars for the ``aggregator_decision``
        event (``n_used`` plus strategy-specific fields).
        """
        raise NotImplementedError

    def reduce(
        self,
        vectors: Sequence[np.ndarray],
        out: Optional[np.ndarray] = None,
        where: str = "server",
    ) -> np.ndarray:
        """Pre-filter non-finite vectors, aggregate, emit the decision.

        Raises :class:`~repro.cluster.faults.NonFiniteUpdateError` only if
        *every* vector is non-finite (nothing left to aggregate).
        """
        kept, dropped = filter_finite(vectors)
        if not kept:
            raise NonFiniteUpdateError(
                f"all {len(vectors)} update vectors are non-finite; "
                f"nothing to aggregate ({self.name})"
            )
        vec, info = self.aggregate(kept)
        if out is not None:
            np.copyto(out, vec)
            vec = out
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "aggregator_decision",
                aggregator=self.name,
                where=where,
                n_in=len(vectors),
                n_dropped=len(dropped),
                dropped=list(dropped),
                **info,
            )
        return vec

    def async_transform(self, update: np.ndarray) -> np.ndarray:
        """Hook for the asynchronous (SSP) path: transform one update
        before it is applied. Cohort statistics do not exist for a single
        vector, so only norm-based strategies override this."""
        return update

    def describe(self) -> Dict:
        return {"name": self.name}


@AGGREGATORS.register("mean")
class MeanAggregator(Aggregator):
    """Plain average — bitwise-identical to the legacy mean path."""

    name = "mean"

    def aggregate(self, vectors):
        if fastpath.is_enabled():
            return mean_into(vectors), {"n_used": len(vectors)}
        return (
            np.mean(np.stack([np.asarray(v) for v in vectors]), axis=0),
            {"n_used": len(vectors)},
        )


@AGGREGATORS.register("median")
class MedianAggregator(Aggregator):
    """Coordinate-wise median; breakdown point just under 1/2."""

    name = "median"

    def aggregate(self, vectors):
        stacked = np.stack([np.asarray(v) for v in vectors])
        return np.median(stacked, axis=0), {"n_used": len(vectors)}


@AGGREGATORS.register("trimmed_mean")
class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean: sort, drop the f extremes each side.

    ``f`` is clamped per call to ``(k − 1) // 2`` so at least one value per
    coordinate always survives; the effective f is reported in the
    decision event.
    """

    name = "trimmed_mean"

    def __init__(self, f: int = 1):
        if f < 0:
            raise ValueError(f"trim f must be >= 0, got {f}")
        self.f = int(f)

    def aggregate(self, vectors):
        k = len(vectors)
        f_eff = min(self.f, (k - 1) // 2)
        stacked = np.stack([np.asarray(v) for v in vectors])
        if f_eff == 0:
            return np.mean(stacked, axis=0), {"n_used": k, "f_eff": 0}
        stacked.sort(axis=0)
        return (
            np.mean(stacked[f_eff : k - f_eff], axis=0),
            {"n_used": k - 2 * f_eff, "f_eff": f_eff},
        )

    def describe(self):
        return {"name": self.name, "f": self.f}


@AGGREGATORS.register("norm_clip")
class NormClipAggregator(Aggregator):
    """Mean of norm-clipped vectors.

    Each vector is scaled down so its L2 norm is at most ``factor ×`` the
    cohort's median norm. Nobody is discarded; a large-norm outlier simply
    cannot dominate the average. On the asynchronous path (no cohort) the
    clip cap is ``factor ×`` an EWMA of recently applied update norms.
    """

    name = "norm_clip"

    def __init__(self, factor: float = 3.0, ewma_alpha: float = 0.1):
        if factor <= 0:
            raise ValueError(f"clip factor must be > 0, got {factor}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.factor = float(factor)
        self.ewma_alpha = float(ewma_alpha)
        # Async-path state: EWMA of applied update norms (None until the
        # first push; the first update is applied unclipped to seed it).
        self._async_norm: Optional[float] = None

    def _clipped(self, vectors, cap: float):
        out = []
        n_clipped = 0
        for v in vectors:
            v = np.asarray(v)
            n = float(np.linalg.norm(v))
            if n > cap and n > 0.0:
                out.append(v * (cap / n))
                n_clipped += 1
            else:
                out.append(v)
        return out, n_clipped

    def aggregate(self, vectors):
        norms = [float(np.linalg.norm(np.asarray(v))) for v in vectors]
        cap = self.factor * float(np.median(norms))
        clipped, n_clipped = self._clipped(vectors, cap)
        return (
            np.mean(np.stack(clipped), axis=0),
            {"n_used": len(vectors), "n_clipped": n_clipped},
        )

    def async_transform(self, update):
        n = float(np.linalg.norm(update))
        if self._async_norm is None:
            self._async_norm = n
            return update
        cap = self.factor * self._async_norm
        if n > cap and n > 0.0:
            update = update * (cap / n)
            n = cap
        self._async_norm += self.ewma_alpha * (n - self._async_norm)
        return update

    def describe(self):
        return {"name": self.name, "factor": self.factor}


@AGGREGATORS.register("krum")
class KrumAggregator(Aggregator):
    """Krum selection (Blanchard et al., 2017).

    Scores every vector by the sum of squared distances to its
    ``k − f − 2`` nearest neighbours and returns the best-scoring vector
    (``m = 1``) or the average of the ``m`` best (multi-Krum). Ties break
    on the lower worker index, keeping selection deterministic.
    """

    name = "krum"

    def __init__(self, f: int = 1, m: int = 1):
        if f < 0:
            raise ValueError(f"krum f must be >= 0, got {f}")
        if m < 1:
            raise ValueError(f"krum m must be >= 1, got {m}")
        self.f = int(f)
        self.m = int(m)

    def _scores(self, stacked: np.ndarray) -> np.ndarray:
        k = stacked.shape[0]
        sq = np.sum(stacked * stacked, axis=1)
        # Pairwise squared distances via the Gram matrix.
        d2 = sq[:, None] + sq[None, :] - 2.0 * (stacked @ stacked.T)
        np.fill_diagonal(d2, np.inf)
        d2 = np.maximum(d2, 0.0)
        f_eff = min(self.f, max(0, k - 3))
        n_neighbors = max(1, k - f_eff - 2)
        part = np.sort(d2, axis=1)[:, :n_neighbors]
        return np.sum(part, axis=1)

    def aggregate(self, vectors):
        k = len(vectors)
        if k == 1:
            v = np.asarray(vectors[0], dtype=np.float64)
            return v.copy(), {"n_used": 1, "selected": [0]}
        stacked = np.stack([np.asarray(v) for v in vectors])
        scores = self._scores(stacked)
        m = min(self.m, k)
        # Stable argsort: equal scores resolve to the lower index.
        order = np.argsort(scores, kind="stable")[:m]
        selected = sorted(int(i) for i in order)
        if m == 1:
            return stacked[selected[0]].copy(), {
                "n_used": 1,
                "selected": selected,
            }
        return (
            np.mean(stacked[selected], axis=0),
            {"n_used": m, "selected": selected},
        )

    def describe(self):
        return {"name": self.name, "f": self.f, "m": self.m}


@AGGREGATORS.register("multi_krum")
class MultiKrumAggregator(KrumAggregator):
    """Multi-Krum: average the ``m`` best Krum-scoring vectors.

    ``m=None`` sizes the selection per call as ``k − f − 2`` (clamped to
    ``[1, k]``), the choice of the original paper.
    """

    name = "multi_krum"

    def __init__(self, f: int = 1, m: Optional[int] = None):
        super().__init__(f=f, m=1 if m is None else m)
        self._auto_m = m is None

    def aggregate(self, vectors):
        if self._auto_m:
            k = len(vectors)
            self.m = max(1, min(k, k - self.f - 2))
        return super().aggregate(vectors)


def make_aggregator(
    name: str,
    trim_f: int = 1,
    clip_factor: float = 3.0,
) -> Aggregator:
    """Construct a registered aggregator from the shared config knobs.

    ``trim_f`` doubles as the Byzantine count ``f`` for trimmed-mean,
    Krum and multi-Krum; ``clip_factor`` parameterizes ``norm_clip``.
    """
    key = name.lower()
    if key not in AGGREGATORS:
        raise KeyError(
            f"unknown aggregator {name!r}; known: {', '.join(AGGREGATORS.names())}"
        )
    if key == "trimmed_mean":
        return TrimmedMeanAggregator(f=trim_f)
    if key == "norm_clip":
        return NormClipAggregator(factor=clip_factor)
    if key == "krum":
        return KrumAggregator(f=trim_f, m=1)
    if key == "multi_krum":
        return MultiKrumAggregator(f=trim_f)
    return AGGREGATORS.create(key)
