"""Elastic Averaging SGD (Zhang, Choromańska & LeCun, 2014).

The paper cites EASGD ([37]) as the evidence that local exploration improves
generalization — the very argument SelSync leans on. EASGD keeps a *center*
variable on the PS; every ``tau`` steps each worker and the center pull
toward each other with elasticity ``rho``::

    x_i ← x_i − ρ (x_i − x̃)         (worker update)
    x̃  ← x̃ + ρ Σ_i (x_i − x̃)       (center update)

Workers otherwise run pure local SGD, so the center's bound on divergence is
elastic rather than hard (contrast SelSync-PA, which snaps every replica to
the average when it synchronizes).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig
from repro.core.trainer import DistributedTrainer
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import IterationRecord


class EASGDTrainer(DistributedTrainer):
    """Synchronous EASGD over the simulated PS.

    Parameters
    ----------
    rho:
        Elasticity in (0, 1). The center-update uses the same ρ; stability
        requires ``N·ρ ≤ 1`` (checked).
    tau:
        Communication period in steps (τ=1 is the classic synchronous form).
    """

    name = "easgd"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        rho: float = 0.1,
        tau: int = 4,
    ):
        super().__init__(workers, cluster, schedule)
        if not 0.0 < rho < 1.0:
            raise ValueError(f"rho must be in (0, 1), got {rho}")
        if rho * len(workers) > 1.0:
            raise ValueError(
                f"unstable elasticity: N*rho = {rho * len(workers):.2f} > 1"
            )
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self.rho = rho
        self.tau = tau
        self.center = workers[0].get_params()

    def _resize_per_worker_state(self, mapping):
        # The center variable is parameter-shaped (membership-independent);
        # only the stability bound N*rho <= 1 must re-hold at the new size.
        n = len(mapping)
        if self.rho * n > 1.0:
            raise ValueError(
                f"elastic scale-up breaks EASGD stability: N*rho = "
                f"{self.rho * n:.2f} > 1 at world size {n}"
            )

    def step(self, i: int) -> IterationRecord:
        sf = self.begin_faults(i)
        degraded = self.degraded_mode
        live = sf.live

        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch, step=i, live=live)
        lr = self.lr(i)
        losses = self.executor.compute_gradients([self.workers[w] for w in live])
        # Corrupted gradients are dropped, not applied (the worker loses
        # one local step but stays elastically coupled); a freshly
        # quarantined worker loses its step the same way.
        stepping = set(self.apply_corruption(sf))
        stepping = set(self.screen_updates(i, sorted(stepping), observed=live))
        for wid in live:
            if wid in stepping:
                self.workers[wid].local_step(lr)

        synced = (i + 1) % self.tau == 0
        t_s = 0.0
        if synced:
            # The elastic exchange is symmetric: a worker whose push is
            # lost neither moves the center nor is pulled toward it. A
            # quarantined worker sits the exchange out entirely.
            t_retry, lost = self.upload_penalty(live, i)
            exchangers = [w for w in live if w not in set(lost)]
            if self.health is not None:
                exchangers = [
                    w for w in exchangers if not self.health.quarantined(w)
                ]
            self.check_quorum(len(exchangers), i)
            diffs = []
            for wid in exchangers:
                w = self.workers[wid]
                # Live view is safe: the subtraction materializes ``d``
                # before ``set_params`` writes the buffer.
                p = w.get_params(copy=False)
                d = p - self.center
                w.set_params(p - self.rho * d)
                diffs.append(d)
            # A Byzantine exchanger pulls toward the center honestly (its
            # replica is its own business) but lies about the difference
            # it reports, so only the center update sees the hostile push.
            diffs = self.wire_updates(exchangers, diffs)
            if self.aggregator is not None:
                # Robust center update: ρ · k · robust-mean of the elastic
                # differences (for the mean strategy this equals the sum,
                # so the classic update is the aggregator=None special
                # case — kept verbatim below for byte-identity).
                agg = np.asarray(
                    self.aggregator.reduce(diffs, where="elastic")
                )
                self.center = self.center + self.rho * len(diffs) * agg
            else:
                self.center = self.center + self.rho * np.sum(diffs, axis=0)
            tr = obs.active()
            if tr is not None:
                tr.emit("aggregation", kind="elastic", n_contrib=len(exchangers))
            t_s = self.effective_sync_time(
                self.group.charge_sync(
                    self.comm_bytes,
                    n_live=len(exchangers) if degraded else None,
                    rank_ids=exchangers if degraded else None,
                ),
                t_c,
            ) + t_retry
        return IterationRecord(
            step=i,
            synced=synced,
            sim_time=t_c + t_s,
            comm_time=t_s,
            loss=float(np.mean(losses)),
        )

    def mean_params(self) -> np.ndarray:
        """EASGD's deployable model is the center variable."""
        return self.center.copy()

    def _extra_state(self):
        return {"center": self.center.copy()}

    def _load_extra_state(self, state):
        self.center = np.asarray(state["center"], dtype=np.float64).copy()
