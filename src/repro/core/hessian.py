"""Top Hessian eigenvalue via power iteration on Hessian-vector products.

The paper (Fig. 4, citing [27], [51]) validates that the largest eigenvalue
of the loss Hessian — an indicator of critical learning periods — tracks the
variance of first-order gradients, which is what makes Δ(g_i) a cheap proxy.
HVPs are computed by central finite differences of the gradient, the standard
matrix-free approach when only first-order oracles exist.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng


def _grad_at(model: Module, w: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    model.set_flat_params(w)
    model.zero_grad()
    loss = CrossEntropyLoss()
    out = model.forward(x)
    loss.forward(out, y)
    model.backward(loss.backward())
    # Copy: the caller differences two of these, and the arena view would be
    # overwritten by the second backward pass.
    return model.get_flat_grads(copy=True)


def hessian_vector_product(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    v: np.ndarray,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference HVP: ``Hv ≈ (∇F(w+εv) − ∇F(w−εv)) / 2ε``.

    The model's parameters are restored on exit. Evaluation mode is used so
    dropout/batch-norm sampling does not corrupt the finite difference.
    """
    w0 = model.get_flat_params(copy=True)
    was_training = model.training
    model.eval()
    try:
        norm = float(np.linalg.norm(v))
        if norm == 0.0:
            raise ValueError("HVP direction vector is zero")
        step = eps / norm
        g_plus = _grad_at(model, w0 + step * v, x, y)
        g_minus = _grad_at(model, w0 - step * v, x, y)
        return (g_plus - g_minus) / (2.0 * step)
    finally:
        model.set_flat_params(w0)
        if was_training:
            model.train()


def hessian_top_eigenvalue(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    n_iters: int = 12,
    tol: float = 1e-3,
    rng: RngLike = None,
) -> Tuple[float, np.ndarray]:
    """Power iteration for the dominant Hessian eigenpair at the current
    parameters, on the fixed batch ``(x, y)``.

    Returns ``(eigenvalue, eigenvector)``. Converges when the Rayleigh
    quotient stabilizes within ``tol`` (relative).
    """
    if n_iters < 1:
        raise ValueError(f"n_iters must be >= 1, got {n_iters}")
    rng = as_rng(rng)
    n = model.get_flat_params().size
    v = rng.normal(size=n)
    v /= np.linalg.norm(v)
    lam_prev = 0.0
    lam = 0.0
    for _ in range(n_iters):
        hv = hessian_vector_product(model, x, y, v)
        lam = float(v @ hv)
        norm = float(np.linalg.norm(hv))
        if norm == 0.0:
            return 0.0, v
        v = hv / norm
        if abs(lam - lam_prev) <= tol * max(1.0, abs(lam)):
            break
        lam_prev = lam
    return lam, v
