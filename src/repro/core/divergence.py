"""Replica-divergence diagnostics.

§III-C's whole argument is about how far local replicas drift from the
global model under different aggregation rules; these helpers quantify that
drift so experiments (and users) can watch it instead of inferring it from
final accuracy.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cluster.worker import SimWorker


def replica_spread(workers: Sequence[SimWorker]) -> float:
    """Mean L2 distance of each replica from the replica average.

    0 for perfectly consistent replicas (BSP, or SelSync-PA right after a
    sync); grows as workers train locally.
    """
    if len(workers) == 0:
        raise ValueError("no workers")
    params = np.stack([w.get_params() for w in workers])
    center = params.mean(axis=0)
    return float(np.linalg.norm(params - center, axis=1).mean())


def divergence_from(workers: Sequence[SimWorker], reference: np.ndarray) -> float:
    """Mean L2 distance of each replica from an external reference (e.g. the
    PS's global parameters) — the local↔global divergence SelSync bounds."""
    dists = [float(np.linalg.norm(w.get_params() - reference)) for w in workers]
    return float(np.mean(dists))


class DivergenceTracker:
    """Records replica spread over training for post-hoc analysis.

    Attach by calling :meth:`snapshot` wherever the training loop has all
    workers in hand (e.g. after each trainer ``step``).
    """

    def __init__(self):
        self.steps: List[int] = []
        self.spreads: List[float] = []

    def snapshot(self, step: int, workers: Sequence[SimWorker]) -> float:
        s = replica_spread(workers)
        self.steps.append(step)
        self.spreads.append(s)
        return s

    @property
    def max_spread(self) -> float:
        if not self.spreads:
            raise ValueError("no snapshots recorded")
        return max(self.spreads)

    @property
    def final_spread(self) -> float:
        if not self.spreads:
            raise ValueError("no snapshots recorded")
        return self.spreads[-1]

    def as_arrays(self):
        return np.array(self.steps), np.array(self.spreads)
