"""Distributed-trainer base class and result container.

Concrete trainers (BSP, FedAvg, SSP, SelSync, local-SGD) implement a single
``step`` and inherit the shared loop: per-step time accounting, periodic
evaluation of the deployable model, the paper's until-no-improvement stopping
rule, and RunLog assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.server import ParameterServer
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig, TrainConfig
from repro.optim.schedules import ConstantLR, LRSchedule
from repro.utils import fastpath
from repro.utils.flatten import mean_into
from repro.utils.runlog import EvalRecord, IterationRecord, RunLog


@dataclass
class TrainResult:
    """Outcome of one training run."""

    log: RunLog
    final_metric: Optional[float]
    best_metric: Optional[float]
    steps: int
    sim_time: float
    lssr: Optional[float]

    def summary_row(self) -> dict:
        return {
            "steps": self.steps,
            "lssr": self.lssr,
            "metric": self.final_metric,
            "best_metric": self.best_metric,
            "sim_time": self.sim_time,
        }


class DistributedTrainer:
    """Shared machinery for the lock-step trainers.

    Subclasses implement :meth:`step`, returning an
    :class:`~repro.utils.runlog.IterationRecord`; everything else (clock,
    evaluation cadence, early stopping) lives here so all methods are
    compared under identical protocols.
    """

    name = "abstract"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
    ):
        if len(workers) != cluster.n_workers:
            raise ValueError(
                f"got {len(workers)} workers for cluster of {cluster.n_workers}"
            )
        self.workers = workers
        self.cluster = cluster
        self.group = cluster.make_group()
        self.compute = cluster.make_compute()
        self.executor = cluster.make_executor()
        self.server = ParameterServer(workers[0].get_params(copy=False))
        self.schedule = schedule if schedule is not None else ConstantLR(0.01)
        model = workers[0].model
        self.comm_bytes = (
            float(model.nbytes) if cluster.comm_bytes is None else float(cluster.comm_bytes)
        )
        self.flops_per_sample = (
            float(getattr(model, "flops_per_sample", 2 * model.n_parameters))
            if cluster.flops_per_sample is None
            else float(cluster.flops_per_sample)
        )

    # -- subclass interface -----------------------------------------------
    def step(self, i: int) -> IterationRecord:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------
    def lr(self, i: int) -> float:
        return self.schedule(i)

    def max_compute_time(self, batch_size: int) -> float:
        """Lock-step compute phase: all workers run concurrently, the round
        takes as long as the slowest (the straggler effect of §II-A)."""
        return float(self.compute.sample_all(self.flops_per_sample, batch_size).max())

    def effective_sync_time(self, t_s: float, t_c: float) -> float:
        """Apply the configured compute/communication overlap.

        With ``overlap_fraction = f``, up to ``f·t_c`` of the sync can hide
        behind the compute phase (backward-pass overlap as in GradientFlow /
        ByteScheduler, §II-D); the remainder is serialized.
        """
        return max(0.0, t_s - self.cluster.overlap_fraction * t_c)

    def mean_params(self) -> np.ndarray:
        if fastpath.is_enabled():
            # Arena views in, fresh vector out — bitwise-identical to the
            # stack reduce (see mean_into's contract).
            return mean_into([w.get_params(copy=False) for w in self.workers])
        return np.mean(np.stack([w.get_params() for w in self.workers]), axis=0)

    def deploy_model(self):
        """Model carrying the deployable parameters (worker average).

        For consistent-replica trainers this equals any worker's replica; for
        semi-synchronous ones it is the natural serving model. Worker 0's
        module is borrowed and restored by the caller via the returned token.
        ``saved`` must be a snapshot, never a live view — the very next line
        overwrites worker 0's buffer.
        """
        w0 = self.workers[0]
        saved = w0.get_params(copy=True)
        w0.set_params(self.mean_params())
        return w0.model, saved

    def restore_model(self, saved: np.ndarray) -> None:
        self.workers[0].set_params(saved)

    def evaluate(self, cfg: TrainConfig) -> Optional[float]:
        if cfg.eval_fn is None:
            return None
        model, saved = self.deploy_model()
        model.eval()
        try:
            return float(cfg.eval_fn(model))
        finally:
            model.train()
            self.restore_model(saved)

    # -- the run loop ---------------------------------------------------------
    def run(self, cfg: TrainConfig) -> TrainResult:
        log = RunLog(name=self.name)
        best: Optional[float] = None
        stale_evals = 0
        clock = 0.0
        for i in range(cfg.n_steps):
            rec = self.step(i)
            clock += rec.sim_time
            log.record_iteration(rec)
            last = i == cfg.n_steps - 1
            if cfg.eval_fn is not None and ((i + 1) % cfg.eval_every == 0 or last):
                metric = self.evaluate(cfg)
                log.record_eval(
                    EvalRecord(
                        step=i,
                        epoch=self.workers[0].epoch,
                        sim_time=clock,
                        metric=metric,
                        metric_name="metric",
                    )
                )
                if best is None:
                    improved = True
                elif cfg.higher_is_better:
                    improved = metric > best + cfg.min_improvement
                else:
                    improved = metric < best - cfg.min_improvement
                if improved:
                    best = metric
                    stale_evals = 0
                else:
                    stale_evals += 1
                    if cfg.patience is not None and stale_evals >= cfg.patience:
                        break
        final = log.final_metric() if log.evals else None
        return TrainResult(
            log=log,
            final_metric=final,
            best_metric=best,
            steps=log.n_steps,
            sim_time=log.total_sim_time,
            lssr=log.lssr() if log.n_steps else None,
        )
