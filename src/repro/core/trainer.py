"""Distributed-trainer base class and result container.

Concrete trainers (BSP, FedAvg, SSP, SelSync, local-SGD) implement a single
``step`` and inherit the shared loop: per-step time accounting, periodic
evaluation of the deployable model, the paper's until-no-improvement stopping
rule, RunLog assembly — and, beyond the paper, the fault/recovery machinery:
deterministic fault injection (:mod:`repro.cluster.faults`), degraded-mode
aggregation over the live worker subset with a configurable quorum, and
checkpoint/resume with bitwise-identical continuation.

Fault-free runs are bitwise-identical to a build without the fault
subsystem: every fault hook short-circuits when no ``fault_spec`` is set,
and the compute-jitter RNG is always drawn for the full worker set so the
stream never shifts.

When ``TrainConfig.tracer`` carries a :class:`repro.obs.Tracer`, the run
loop emits the step/eval/checkpoint/fault spine of the event trace
(``step_begin``/``step_end``/``compute_phase``/``eval``/
``checkpoint_save``/``fault``); trainers and the comm/cluster layers add
their own events through the same installed tracer. Tracing is purely
observational — a traced run's arithmetic is bitwise-identical to an
untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cluster.compute import ComputeModel
from repro.cluster.elastic import ElasticContext, derive_rng_seed
from repro.cluster.faults import QuorumLostError, StepFaults
from repro.data.loader import BatchLoader
from repro.cluster.server import ParameterServer, ShardedParameterServer
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig, TrainConfig
from repro.optim.schedules import ConstantLR, LRSchedule
from repro.utils import fastpath
from repro.utils.flatten import mean_into
from repro.utils.runlog import EvalRecord, FaultRecord, IterationRecord, RunLog
from repro.utils.serialization import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    runlog_from_jsonable,
    runlog_to_jsonable,
    save_checkpoint,
)

# Salts for the (seed, salt, step)-keyed RNG streams a membership change
# draws from — never the trainer streams, so elastic decisions and the
# post-resize jitter/partition draws are executor- and resume-independent.
_REPART_SALT = 0x9E1A57
_LOADER_SALT = 0x10ADE5
_COMPUTE_SALT = 0xC03B17


@dataclass
class TrainResult:
    """Outcome of one training run."""

    log: RunLog
    final_metric: Optional[float]
    best_metric: Optional[float]
    steps: int
    sim_time: float
    lssr: Optional[float]

    def summary_row(self) -> dict:
        return {
            "steps": self.steps,
            "lssr": self.lssr,
            "metric": self.final_metric,
            "best_metric": self.best_metric,
            "sim_time": self.sim_time,
        }


class DistributedTrainer:
    """Shared machinery for the lock-step trainers.

    Subclasses implement :meth:`step`, returning an
    :class:`~repro.utils.runlog.IterationRecord`; everything else (clock,
    evaluation cadence, early stopping, fault handling, checkpointing)
    lives here so all methods are compared under identical protocols.
    """

    name = "abstract"
    #: Whether this protocol moves data between workers at all. LocalSGD
    #: sets this False: a network partition cannot hurt a protocol that
    #: never communicates, so partition liveness filtering skips it.
    communicates = True

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
    ):
        if len(workers) != cluster.n_workers:
            raise ValueError(
                f"got {len(workers)} workers for cluster of {cluster.n_workers}"
            )
        self.workers = workers
        self.cluster = cluster
        # One robust-aggregation strategy instance shared by the collectives
        # and the PS; ``None`` (aggregator="mean") keeps both on the exact
        # legacy mean arithmetic.
        self.aggregator = cluster.make_aggregator()
        # Shard geometry over the model's tensor sizes (registration order
        # matches the flat arena layout); ``None`` with ps_shards == 1 —
        # the unsharded fast path every default run takes.
        self.shard_spec = cluster.make_shard_spec(
            [int(p.data.size) for p in workers[0].model.parameters()]
        )
        self.group = cluster.make_group(self.aggregator, shard_spec=self.shard_spec)
        self.compute = cluster.make_compute()
        self.executor = cluster.make_executor()
        # Stateful backends need the full group before the first compute
        # call — trainers routinely hand them subsets (live workers, SSP's
        # per-worker events). The process backend also rebinds the arenas
        # to shared memory here, so do it before anything else takes views.
        self.executor.bind(self.workers)
        if self.shard_spec is not None:
            self.server = ShardedParameterServer(
                workers[0].get_params(copy=False),
                self.shard_spec,
                aggregator=self.aggregator,
            )
        else:
            self.server = ParameterServer(
                workers[0].get_params(copy=False), aggregator=self.aggregator
            )
        self.schedule = schedule if schedule is not None else ConstantLR(0.01)
        model = workers[0].model
        self.comm_bytes = (
            float(model.nbytes) if cluster.comm_bytes is None else float(cluster.comm_bytes)
        )
        self.flops_per_sample = (
            float(getattr(model, "flops_per_sample", 2 * model.n_parameters))
            if cluster.flops_per_sample is None
            else float(cluster.flops_per_sample)
        )
        self.faults = cluster.make_fault_injector()
        self.health = cluster.make_health()
        # Link-level fault oracle shared with the collectives; ``None``
        # whenever no net-fault spec is set (the fault-free fast path).
        self.net_faults = self.group.link_faults
        self.quorum = cluster.effective_quorum
        # Partition bookkeeping: records the onset fault exactly once and
        # remembers who was cut so the heal can rebase them.
        self._partitioned = False
        self._partition_cut: List[int] = []
        if self.degraded_mode:
            # PS-side ledger of partial-information rounds; armed only in
            # degraded-capable runs so fault-free checkpoints never grow
            # the counter key.
            self.server.expected_contributors = cluster.n_workers
        # Live set of the step in flight; None outside fault/health runs so
        # the deployable mean covers every worker (the fault-free fast path).
        self._current_live: Optional[List[int]] = None
        # Per-worker simulated compute seconds of the latest round; the
        # health tracker's straggle signal.
        self._last_compute_times: Optional[np.ndarray] = None
        self._wire_lies: Dict[int, np.ndarray] = {}
        # Sharded push losses of the step in flight: shard -> worker ids
        # whose uplink message for that shard was terminally lost. Set by
        # :meth:`upload_penalty`, converted to round positions and handed
        # to the group/server by :meth:`wire_updates`.
        self._pending_shard_lost: Dict[int, set] = {}
        # In-memory copy of the latest checkpoint; rejoining workers
        # restore their rank state from it (crash-recovery semantics).
        self._latest_checkpoint: Optional[Dict] = None
        self._log: Optional[RunLog] = None
        # Elastic membership controller; ``None`` (the default) keeps the
        # fixed-membership fast path — no elastic code runs anywhere, and
        # checkpoints never grow the "elastic" key.
        self.elastic = cluster.make_elastic()
        if self.elastic is not None:
            self.elastic.attach(cluster.n_workers)
        # Workload factories membership changes are materialized from
        # (joiner replicas, repartitioned loaders); see :meth:`bind_elastic`.
        self.elastic_ctx: Optional[ElasticContext] = None

    # -- subclass interface -----------------------------------------------
    def step(self, i: int) -> IterationRecord:
        raise NotImplementedError

    def _extra_state(self) -> Dict:
        """Trainer-specific checkpoint state (tracker/center/RNG...)."""
        return {}

    def _load_extra_state(self, state: Dict) -> None:
        pass

    def _on_worker_rejoin(self, worker_id: int, from_checkpoint: bool) -> None:
        """Hook for trainer-local per-worker state on rejoin (e.g. SelSync
        restores or resets the worker's Δ tracker)."""

    def _resize_per_worker_state(self, mapping: Sequence[Optional[int]]) -> None:
        """Hook for trainer-local per-worker state across an elastic
        membership change. ``mapping[new_rank]`` is the worker's rank
        before the change, or ``None`` for a fresh joiner (and for every
        rank on an elastic resume, where the checkpointed state is loaded
        immediately after). Trainers holding per-worker lists (SelSync's Δ
        trackers, BSP's compressors) realign them here."""

    # -- shared helpers --------------------------------------------------------
    def lr(self, i: int) -> float:
        return self.schedule(i)

    @property
    def degraded_mode(self) -> bool:
        """True when aggregation rounds may cover a strict subset of the
        cluster — under an active fault plan, with health quarantine
        enabled, or with link faults injected (a partition or a terminally
        lost upload shrinks the round). With all three idle every round
        still covers all N workers, so degraded-mode accounting is
        byte-identical to the plain path."""
        return (
            self.faults.active
            or self.health is not None
            or self.net_faults is not None
        )

    def max_compute_time(
        self,
        batch_size: int,
        step: Optional[int] = None,
        live: Optional[Sequence[int]] = None,
    ) -> float:
        """Lock-step compute phase: all workers run concurrently, the round
        takes as long as the slowest (the straggler effect of §II-A).

        The jitter RNG is always drawn for the *full* worker set so the
        stream is identical with and without faults; injected straggle
        factors then scale per-worker times and the max is taken over the
        live subset only (a dead worker delays nobody).
        """
        times = self.compute.sample_all(self.flops_per_sample, batch_size)
        if self.faults.active and step is not None:
            factors = np.array(
                [self.faults.straggle_factor(w, step) for w in range(len(self.workers))]
            )
            times = times * factors
        full_times = times
        # Keep the full round's per-worker times around: the health
        # tracker's straggle signal (pure observation, no RNG effect).
        self._last_compute_times = full_times
        if (
            self.degraded_mode
            and step is not None
            and live is not None
            and len(live) < len(self.workers)
        ):
            times = times[np.asarray(live, dtype=np.intp)]
        t_max = float(times.max())
        tr = obs.active()
        if tr is not None and step is not None:
            # Per-worker compute times of this round — the straggler
            # heatmap's raw data (see repro.obs.views.straggler_matrix).
            tr.emit(
                "compute_phase",
                step=step,
                times=[float(x) for x in full_times],
                max=t_max,
            )
        return t_max

    def effective_sync_time(self, t_s: float, t_c: float) -> float:
        """Apply the configured compute/communication overlap.

        With ``overlap_fraction = f``, up to ``f·t_c`` of the sync can hide
        behind the compute phase (backward-pass overlap as in GradientFlow /
        ByteScheduler, §II-D); the remainder is serialized.
        """
        return max(0.0, t_s - self.cluster.overlap_fraction * t_c)

    # -- fault machinery --------------------------------------------------
    def begin_faults(self, i: int) -> StepFaults:
        """Open step ``i`` under the fault plan.

        Records crash/rejoin/straggle transitions as typed RunLog records,
        restores rejoining workers from the latest checkpoint, reinstates
        workers whose quarantine probation has elapsed, filters
        still-quarantined workers out of the live set, and raises
        :class:`QuorumLostError` if fewer live workers remain than the
        configured quorum. A no-op returning the full live set when both
        fault injection and health tracking are disabled.
        """
        self.group.begin_step(i)
        sf = self.faults.begin_step(i)
        if (
            not self.faults.active
            and self.health is None
            and self.net_faults is None
        ):
            self._current_live = None
            return sf
        for c in self.faults.plan.crashes:
            if c.start == i and c.worker in sf.crashed:
                self._record_fault(
                    FaultRecord(
                        step=i,
                        worker=c.worker,
                        kind="crash",
                        detail={"until": -1 if c.end is None else c.end},
                    )
                )
        for wid in sf.rejoined:
            self._restore_rejoined_worker(wid, i)
        for s in self.faults.plan.straggles:
            if s.start == i:
                self._record_fault(
                    FaultRecord(
                        step=i,
                        worker=s.worker,
                        kind="straggle",
                        detail={
                            "factor": s.factor,
                            "until": -1 if s.end is None else s.end,
                        },
                    )
                )
        if self.health is not None:
            for wid in self.health.due_reinstatements(i):
                self._reinstate_worker(wid, i, sf.live)
            quarantined = set(self.health.quarantined_workers)
            if quarantined:
                sf.live = [w for w in sf.live if w not in quarantined]
        if self.net_faults is not None and self.communicates:
            majority = self.net_faults.majority_side(i)
            if majority is not None:
                if not self._partitioned:
                    self._partitioned = True
                    self._partition_cut = [
                        w for w in sf.live if w not in set(majority)
                    ]
                    self._record_fault(
                        FaultRecord(
                            step=i,
                            worker=-1,
                            kind="partition",
                            detail={
                                "majority": list(majority),
                                "cut": list(self._partition_cut),
                            },
                        )
                    )
                # Minority-side workers are unreachable (their links to
                # both the PS and the majority are severed): training
                # continues on the majority side only.
                sf.live = [w for w in sf.live if w in set(majority)]
            else:
                if self._partitioned:
                    self._heal_partition(i, sf.live)
                self._partitioned = False
        self._current_live = sf.live
        self.check_quorum(len(sf.live), i)
        return sf

    def _heal_partition(self, step: int, live: Sequence[int]) -> None:
        """A network partition ended: rebase the formerly-cut workers.

        Gradient-aggregating protocols never re-ship parameters, so a
        replica that sat out the partition would stay permanently offset
        from the majority's trajectory. Re-entry therefore goes through
        :meth:`~repro.cluster.worker.SimWorker.resync` — majority-consensus
        parameters, fresh optimizer state — exactly like a crash rejoin
        without a checkpoint.
        """
        cut = set(self._partition_cut)
        self._partition_cut = []
        donors = [w for w in live if w not in cut]
        if not donors:
            return
        consensus = np.mean(
            np.stack([self.workers[j].get_params() for j in donors]), axis=0
        )
        for wid in sorted(cut):
            self.workers[wid].resync(consensus)
            self._record_fault(
                FaultRecord(
                    step=step,
                    worker=wid,
                    kind="rejoin",
                    detail={"healed_partition": True},
                )
            )

    def _reinstate_worker(self, wid: int, step: int, live: Sequence[int]) -> None:
        """Probation elapsed: restore the worker from the current consensus
        model (mean of the non-quarantined live replicas — the server's
        globals are stale for non-PA trainers) with fresh optimizer state,
        and lift its quarantine."""
        self.health.release(wid)
        w = self.workers[wid]
        donors = [
            j
            for j in live
            if j != wid and not self.health.quarantined(j)
        ]
        if donors:
            w.resync(
                np.mean(
                    np.stack([self.workers[j].get_params() for j in donors]),
                    axis=0,
                )
            )
        else:
            w.optimizer.reset_state()
        self._on_worker_rejoin(wid, False)
        self._record_fault(
            FaultRecord(step=step, worker=wid, kind="reinstate", detail={})
        )
        tr = obs.active()
        if tr is not None:
            tr.emit("reinstate", step=step, worker=wid)

    def screen_updates(
        self,
        step: int,
        candidates: Sequence[int],
        observed: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Health-screen this round's contributing workers.

        Feeds each observed worker's update norm (NaN for a poisoned
        gradient) and simulated compute time to the
        :class:`HealthTracker`; newly flagged workers are quarantined —
        recorded as typed RunLog faults plus ``quarantine`` trace events —
        and excluded from the returned contributing set. ``observed``
        widens the scored set beyond the contributors (a NaN-poisoned
        worker already fell out of ``candidates`` but must still collect
        its strike). Identity when health tracking is disabled.
        """
        if self.health is None:
            return list(candidates)
        observed = candidates if observed is None else observed
        norms: Dict[int, float] = {}
        for wid in observed:
            sq = float(self.workers[wid].last_grad_sqnorm)
            norms[wid] = float(np.sqrt(sq)) if sq >= 0.0 else float("nan")
        times: Optional[Dict[int, float]] = None
        if self._last_compute_times is not None:
            times = {
                wid: float(self._last_compute_times[wid]) for wid in observed
            }
        flagged = self.health.observe(step, norms, times)
        if not flagged:
            return list(candidates)
        tr = obs.active()
        for d in flagged:
            self._record_fault(
                FaultRecord(
                    step=step,
                    worker=d.worker,
                    kind="quarantine",
                    detail={
                        "reason": d.reason,
                        "score": float(d.score),
                        "until": d.until,
                    },
                )
            )
            if tr is not None:
                tr.emit(
                    "quarantine",
                    step=step,
                    worker=d.worker,
                    reason=d.reason,
                    score=float(d.score),
                    until=d.until,
                )
        bad = {d.worker for d in flagged}
        return [w for w in candidates if w not in bad]

    def check_quorum(self, n_contributing: int, step: int) -> None:
        """Raise loudly when fewer than ``quorum`` workers can contribute.

        The raised :class:`QuorumLostError` carries ``step`` /
        ``contributing`` / ``quorum`` so the recovery supervisor can relax
        the quorum to the surviving count before retrying.
        """
        if n_contributing >= self.quorum:
            return
        self._record_fault(
            FaultRecord(
                step=step,
                worker=-1,
                kind="quorum_lost",
                detail={"contributing": n_contributing, "quorum": self.quorum},
            )
        )
        err = QuorumLostError(
            f"step {step}: only {n_contributing} worker(s) can contribute "
            f"but min_quorum={self.quorum}; refusing to aggregate a "
            "partial mean"
        )
        err.step = step
        err.contributing = n_contributing
        err.quorum = self.quorum
        raise err

    def apply_corruption(self, sf: StepFaults) -> List[int]:
        """Poison the gradients of this step's corrupt-targeted workers.

        Returns the contributing subset of ``sf.live`` — live workers whose
        gradient survived. A NaN-poisoned worker's ``last_grad_sqnorm`` is
        NaN'd so no tracker can silently smooth it, and it drops out of the
        contributing set.

        An *adversarially* corrupted worker is a Byzantine liar, not a sick
        node: its local replica and gradient stay honest, but whatever it
        puts on the wire this step — the vector a trainer later routes
        through :meth:`wire_updates`, and the ``last_grad_sqnorm`` any
        tracker or health screen reads — is a finite hostile fabrication.
        It stays in the contributing set (it looks healthy to every
        finiteness check); only robust aggregation or health screening can
        defuse it.
        """
        self._wire_lies = {}
        if not sf.corrupted and not sf.adversarial:
            return list(sf.live)
        for wid in sf.corrupted:
            w = self.workers[wid]
            w.model.set_flat_grads(
                self.faults.corrupt_gradient(wid, sf.step, w.get_grads(copy=False))
            )
            w.last_grad_sqnorm = float("nan")
            self._record_fault(
                FaultRecord(step=sf.step, worker=wid, kind="corrupt", detail={})
            )
        for wid in sf.adversarial:
            w = self.workers[wid]
            hostile = self.faults.adversarial_gradient(
                wid, sf.step, w.get_grads(copy=False)
            )
            self._wire_lies[wid] = hostile
            # The lie extends to the reported norm: Δ trackers and the
            # health screen see the hostile magnitude, which is exactly
            # the signal quarantine keys on.
            w.last_grad_sqnorm = float(np.dot(hostile, hostile))
            self._record_fault(
                FaultRecord(
                    step=sf.step,
                    worker=wid,
                    kind="corrupt",
                    detail={"adversarial": 1},
                )
            )
        corrupted = set(sf.corrupted)
        return [wid for wid in sf.live if wid not in corrupted]

    def wire_updates(
        self, wids: Sequence[int], vectors: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Apply this step's Byzantine lies at the wire.

        ``vectors[j]`` is what worker ``wids[j]`` is about to push
        (gradient, parameters, or elastic difference — a liar sends
        garbage regardless of protocol phase); adversarially corrupted
        workers' entries are replaced with the hostile vector fabricated
        in :meth:`apply_corruption`. Identity when no lies are active.

        This is also where sharded push losses land: every trainer calls
        ``wire_updates`` with the round's final uploader list immediately
        before aggregating, so worker ids recorded by
        :meth:`upload_penalty` are converted to positions in ``wids`` here
        and installed on the group and the sharded server for the round
        about to run.
        """
        if self.shard_spec is not None and self._pending_shard_lost:
            absences = {}
            for s, gone in self._pending_shard_lost.items():
                positions = {i for i, w in enumerate(wids) if w in gone}
                if positions:
                    absences[s] = positions
            self._pending_shard_lost = {}
            self.group.set_shard_absences(absences)
            if isinstance(self.server, ShardedParameterServer):
                self.server.set_shard_absences(absences)
        if not self._wire_lies:
            return list(vectors)
        return [self._wire_lies.get(wid, v) for wid, v in zip(wids, vectors)]

    def upload_penalty(
        self, uploaders: Sequence[int], step: int
    ) -> Tuple[float, List[int]]:
        """Retry cost and abandoned uploads for this step's push phase.

        Uploads proceed in parallel, so the charged penalty is the *max*
        over workers (each retry costs one straggle-scaled retransfer plus
        exponential backoff). Workers whose upload was abandoned after
        :data:`~repro.cluster.faults.MAX_UPLOAD_RETRIES` are returned so
        the caller excludes them from the aggregation round.

        With link faults active and a PS topology, each uploader's push
        also travels through the collectives' retrying envelope: retry
        latency is charged the same parallel-max way, and a push that
        exhausts its attempts drops that worker from the round — the same
        degradation path worker-level drop faults take. (Ring/tree
        schedules handle link faults inside the collective itself, where a
        dead link heals or raises ``CollectiveTimeoutError``.)

        With a **sharded** PS, each uploader sends one enveloped message
        per shard (independent loss fates via the envelope's ``msg`` key).
        A terminally lost shard message drops the worker from *that
        shard's* round only — recorded in :attr:`_pending_shard_lost` and
        consumed by :meth:`wire_updates` — never from the whole sync, so
        ``lost`` stays empty on that path. Per-worker retry waits are the
        max over its parallel shard streams.
        """
        self._pending_shard_lost = {}
        if not self.faults.active and self.net_faults is None:
            return 0.0, []
        extra = 0.0
        lost: List[int] = []
        if self.faults.active:
            transfer_s = self.cluster.net.transfer_time(self.comm_bytes)
            for wid in uploaders:
                penalty, retries, abandoned = self.faults.upload_penalty_seconds(
                    wid, step, transfer_s
                )
                if retries:
                    self._record_fault(
                        FaultRecord(
                            step=step,
                            worker=wid,
                            kind="drop",
                            detail={"retries": retries, "lost": int(abandoned)},
                        )
                    )
                if abandoned:
                    lost.append(wid)
                else:
                    extra = max(extra, penalty)
        if self.net_faults is not None and self.group.topology.name == "ps":
            net_extra = 0.0
            already = set(lost)
            if self.shard_spec is not None:
                shard_bytes = self.shard_spec.int_payloads(self.comm_bytes)
                for wid in uploaders:
                    if wid in already:
                        continue
                    worker_wait = 0.0
                    for s, b in enumerate(shard_bytes):
                        wait_s, delivered = self.group.push_outcome(
                            wid, b, shard=s
                        )
                        if not delivered:
                            self._pending_shard_lost.setdefault(s, set()).add(wid)
                            self._record_fault(
                                FaultRecord(
                                    step=step,
                                    worker=wid,
                                    kind="link_drop",
                                    detail={
                                        "shard": s,
                                        "wait_s": float(wait_s),
                                    },
                                )
                            )
                        else:
                            # Shard streams run in parallel; the worker's
                            # push phase ends with its slowest stream.
                            worker_wait = max(worker_wait, wait_s)
                    net_extra = max(net_extra, worker_wait)
            else:
                for wid in uploaders:
                    if wid in already:
                        continue
                    wait_s, delivered = self.group.push_outcome(wid, self.comm_bytes)
                    if not delivered:
                        lost.append(wid)
                        self._record_fault(
                            FaultRecord(
                                step=step,
                                worker=wid,
                                kind="link_drop",
                                detail={"wait_s": float(wait_s)},
                            )
                        )
                    else:
                        net_extra = max(net_extra, wait_s)
            extra += net_extra
        return extra, lost

    def _record_fault(self, rec: FaultRecord) -> None:
        if self._log is not None:
            self._log.record_fault(rec)
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "fault",
                step=rec.step,
                worker=rec.worker,
                fault_kind=rec.kind,
                **rec.detail,
            )

    def _restore_rejoined_worker(self, wid: int, step: int) -> None:
        """Crash-recovery: a rejoining worker restores its rank state from
        the latest checkpoint; with no checkpoint it re-syncs from the
        current deployable model with fresh optimizer state."""
        w = self.workers[wid]
        ck = self._latest_checkpoint
        from_checkpoint = ck is not None
        if from_checkpoint:
            w.load_state_dict(ck["workers"][wid])
        else:
            live_others = [
                j for j in self.faults.live_workers(step) if j != wid
            ]
            if live_others:
                w.resync(
                    np.mean(
                        np.stack([self.workers[j].get_params() for j in live_others]),
                        axis=0,
                    )
                )
            else:
                w.optimizer.reset_state()
        self._on_worker_rejoin(wid, from_checkpoint)
        self._record_fault(
            FaultRecord(
                step=step,
                worker=wid,
                kind="rejoin",
                detail={"from_checkpoint": int(from_checkpoint)},
            )
        )

    def live_worker_objs(self, live: Sequence[int]) -> List[SimWorker]:
        return [self.workers[w] for w in live]

    # -- parameter views --------------------------------------------------
    def mean_params(self) -> np.ndarray:
        """Aggregate of the (live) worker replicas — the deployable params.

        Under an active fault plan or health quarantine the aggregate
        covers the current live, non-quarantined subset only; a crashed or
        quarantined worker's stale replica must not drag the serving model
        backwards. With a robust aggregator configured, deployment uses
        the same strategy as training rounds.
        """
        workers = (
            self.workers
            if self._current_live is None
            else [self.workers[w] for w in self._current_live]
        )
        if self.aggregator is not None:
            return np.array(
                self.aggregator.reduce(
                    [w.get_params(copy=False) for w in workers], where="deploy"
                ),
                copy=True,
            )
        if fastpath.is_enabled():
            # Arena views in, fresh vector out — bitwise-identical to the
            # stack reduce (see mean_into's contract).
            return mean_into([w.get_params(copy=False) for w in workers])
        return np.mean(np.stack([w.get_params() for w in workers]), axis=0)

    def resync_replicas(self) -> None:
        """Force every worker replica back to the deployable aggregate —
        the divergence-recovery reset the supervisor applies after rolling
        back to a checkpoint (replicas legitimately drift apart in GA /
        local-SGD regimes; a rollback restores them mid-drift, and resync
        collapses the spread so the retry starts from consensus)."""
        consensus = np.array(self.mean_params(), dtype=np.float64, copy=True)
        for w in self.workers:
            w.set_params(consensus)
            w.optimizer.reset_state()

    def deploy_model(self):
        """Model carrying the deployable parameters (worker average).

        For consistent-replica trainers this equals any worker's replica; for
        semi-synchronous ones it is the natural serving model. Worker 0's
        module is borrowed and restored by the caller via the returned token.
        ``saved`` must be a snapshot, never a live view — the very next line
        overwrites worker 0's buffer.
        """
        w0 = self.workers[0]
        saved = w0.get_params(copy=True)
        w0.set_params(self.mean_params())
        return w0.model, saved

    def restore_model(self, saved: np.ndarray) -> None:
        self.workers[0].set_params(saved)

    def evaluate(self, cfg: TrainConfig) -> Optional[float]:
        if cfg.eval_fn is None:
            return None
        model, saved = self.deploy_model()
        model.eval()
        try:
            return float(cfg.eval_fn(model))
        finally:
            model.train()
            self.restore_model(saved)

    # -- elastic membership ------------------------------------------------
    def bind_elastic(self, ctx: ElasticContext) -> None:
        """Install the workload factories membership changes are built
        from. Required before any join or repartition can materialize; the
        experiment runner and CLI bind it automatically whenever the
        elastic subsystem is enabled."""
        self.elastic_ctx = ctx

    def _apply_membership(self, i: int) -> float:
        """Open step ``i`` under the membership plan/autoscale policy.

        Applies scheduled drains (descending rank so indices stay valid;
        survivors are renumbered densely), bootstraps joiners from the
        donor-consensus parameters via :meth:`SimWorker.resync`,
        re-partitions the dataset over the new world size, rebuilds every
        size-dependent runtime piece, and returns the provisioning delay
        (sim-seconds) charged to the step that admitted the joiners.
        """
        acts = self.elastic.actions_for_step(i, len(self.workers))
        tr = obs.active()
        if acts.decision is not None and tr is not None:
            tr.emit("scale_decision", step=i, **acts.decision)
        if not acts.any_change:
            return 0.0
        ctx = self.elastic_ctx
        if ctx is None:
            raise RuntimeError(
                f"step {i}: elastic membership change scheduled but no "
                "ElasticContext is bound; call bind_elastic(...) before run()"
            )
        size_before = len(self.workers)
        for rank in acts.drains:
            if not 0 <= rank < size_before:
                raise ValueError(
                    f"step {i}: drain of rank {rank} out of range for "
                    f"world size {size_before}"
                )
        if size_before - len(acts.drains) < 1:
            raise ValueError(
                f"step {i}: draining {len(acts.drains)} of {size_before} "
                "workers would empty the cluster"
            )
        mapping: List[Optional[int]] = list(range(size_before))
        for rank in sorted(set(acts.drains), reverse=True):
            uid = self.elastic.on_drain(rank, i)
            self.workers.pop(rank)
            mapping.pop(rank)
            if tr is not None:
                tr.emit(
                    "membership",
                    step=i,
                    worker=rank,
                    action="drain",
                    uid=uid,
                    size_before=size_before,
                    size_after=len(self.workers),
                )
        if acts.joins:
            consensus = np.array(
                self.mean_params(), dtype=np.float64, copy=True
            )
            # Placeholder order only — _repartition below hands every
            # worker (joiners included) its real order for the new size.
            placeholder = np.arange(len(ctx.dataset))
            extra_kwargs = (
                {} if ctx.loss_factory is None
                else {"loss_factory": ctx.loss_factory}
            )
            for _ in range(acts.joins):
                uid = self.elastic.on_join(i)
                model = ctx.model_factory()
                loader = BatchLoader(
                    ctx.dataset,
                    placeholder,
                    batch_size=ctx.batch_size,
                    reshuffle=ctx.reshuffle,
                    rng=0,
                )
                w = SimWorker(
                    len(self.workers),
                    model,
                    ctx.optimizer_factory(model),
                    loader,
                    **extra_kwargs,
                )
                w.resync(consensus)
                self.workers.append(w)
                mapping.append(None)
                if tr is not None:
                    tr.emit(
                        "membership",
                        step=i,
                        worker=w.worker_id,
                        action="join",
                        uid=uid,
                        bootstrap="donor_consensus",
                        size_before=size_before,
                        size_after=len(self.workers),
                    )
        for rank, w in enumerate(self.workers):
            w.worker_id = rank
        self._repartition(i)
        self._resize_runtime(i)
        self._resize_per_worker_state(mapping)
        return self.elastic.provision_seconds(
            acts.joins, self.cluster.net, self.comm_bytes
        )

    def _repartition(self, i: int) -> None:
        """Re-split the dataset over the current world size.

        The partition and loader RNGs are keyed on ``(seed, step)`` — never
        a trainer stream — so the new orders are identical across executors
        and across a resume boundary. SelDP's chunk rotation reruns over
        the new N, so every worker's order still covers the full dataset.
        """
        ctx = self.elastic_ctx
        n = len(self.workers)
        part = ctx.partition_fn(
            len(ctx.dataset),
            n,
            np.random.default_rng(
                np.random.SeedSequence([self.cluster.seed, _REPART_SALT, i])
            ),
        )
        loaders = BatchLoader.for_workers(
            ctx.dataset,
            part,
            batch_size=ctx.batch_size,
            reshuffle=ctx.reshuffle,
            seed=derive_rng_seed(self.cluster.seed, _LOADER_SALT, i),
        )
        for w, loader in zip(self.workers, loaders):
            w.loader = loader
        covered = set()
        for r in range(n):
            covered.update(int(x) for x in part[r])
        tr = obs.active()
        if tr is not None:
            tr.emit(
                "repartition",
                step=i,
                scheme=getattr(part, "scheme", "unknown"),
                n_workers=n,
                n_samples=int(len(ctx.dataset)),
                coverage=len(covered) / max(1, len(ctx.dataset)),
            )

    def _resize_runtime(self, i: int) -> None:
        """Rebuild every size-dependent runtime piece for the new world
        size: the cluster config is re-derived (quorum floors clamp to the
        new membership), the jitter stream restarts from a ``(seed,
        step)``-keyed draw, the group/topology and PS shard geometry adopt
        the new count, health tracking restarts over the new cohort
        (outlier scores against a different cohort are not comparable),
        and the executor re-pins to the new worker group — the process
        pool re-forks its shared-memory arenas at the next compute call.
        """
        n = len(self.workers)
        min_quorum = self.cluster.min_quorum
        if min_quorum is not None:
            min_quorum = min(min_quorum, n)
        self.cluster = dataclass_replace(
            self.cluster, n_workers=n, min_quorum=min_quorum
        )
        self.quorum = self.cluster.effective_quorum
        self.faults = self.cluster.make_fault_injector()
        self.compute = ComputeModel(
            n,
            device_flops=self.cluster.device_flops,
            jitter_sigma=self.cluster.jitter_sigma,
            rng=derive_rng_seed(self.cluster.seed, _COMPUTE_SALT, i),
        )
        self.group.resize(n, shard_spec=self.shard_spec)
        if self.health is not None:
            self.health = self.cluster.make_health()
        if self.degraded_mode:
            self.server.expected_contributors = n
        self._last_compute_times = None
        self._current_live = None
        self.executor.shutdown()
        self.executor.bind(self.workers)

    def _rebuild_for_resume(self, state: Dict) -> None:
        """Adopt a checkpoint taken at a different world size.

        Only reachable with the elastic subsystem on: fresh replicas are
        built from the bound factories, each loader starts from the
        checkpointed order (the state load right after makes it exact),
        and the runtime resizes before the regular restore proceeds.
        """
        ctx = self.elastic_ctx
        if ctx is None:
            raise RuntimeError(
                "resuming across a membership change requires an "
                "ElasticContext; call bind_elastic(...) before run()"
            )
        extra_kwargs = (
            {} if ctx.loss_factory is None
            else {"loss_factory": ctx.loss_factory}
        )
        workers: List[SimWorker] = []
        for rank, ws in enumerate(state["workers"]):
            model = ctx.model_factory()
            loader = BatchLoader(
                ctx.dataset,
                np.asarray(ws["loader"]["order"]),
                batch_size=ctx.batch_size,
                reshuffle=ctx.reshuffle,
                rng=0,
            )
            workers.append(
                SimWorker(
                    rank, model, ctx.optimizer_factory(model), loader,
                    **extra_kwargs,
                )
            )
        # In-place so external holders of the worker list (the built
        # workload, a bound executor) observe the new membership too.
        self.workers[:] = workers
        # The compute RNG seed here is irrelevant — its bit-generator
        # state is restored from the checkpoint immediately after.
        self._resize_runtime(0)
        self._resize_per_worker_state([None] * len(workers))

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict:
        """Snapshot of everything that evolves during training: server,
        every worker's rank state, the jitter RNG, traffic counters, and
        trainer-specific extras."""
        state = {
            "server": self.server.state_dict(),
            "workers": [w.state_dict() for w in self.workers],
            "compute_rng": self.compute.rng.bit_generator.state,
            "group": self.group.state_dict(),
            "extra": self._extra_state(),
        }
        # Only present when health tracking is on — keeps health-off
        # checkpoints byte-identical to builds without the subsystem.
        if self.health is not None:
            state["health"] = self.health.state_dict()
        # Same contract for the elastic subsystem: fixed-membership
        # checkpoints never carry the key.
        if self.elastic is not None:
            state["elastic"] = {
                "world_size": len(self.workers),
                "controller": self.elastic.state_dict(),
            }
        return state

    def load_state_dict(self, state: Dict) -> None:
        if len(state["workers"]) != len(self.workers):
            if self.elastic is not None and "elastic" in state:
                self._rebuild_for_resume(state)
            else:
                raise ValueError(
                    f"checkpoint has {len(state['workers'])} workers, "
                    f"trainer has {len(self.workers)}"
                )
        self.server.load_state_dict(state["server"])
        for w, ws in zip(self.workers, state["workers"]):
            w.load_state_dict(ws)
        self.compute.rng.bit_generator.state = state["compute_rng"]
        self.group.load_state_dict(state["group"])
        if self.health is not None and "health" in state:
            self.health.load_state_dict(state["health"])
        if self.elastic is not None and "elastic" in state:
            self.elastic.load_state_dict(state["elastic"]["controller"])
        self._load_extra_state(state.get("extra", {}))

    def _write_checkpoint(
        self,
        cfg: TrainConfig,
        next_step: int,
        log: RunLog,
        best: Optional[float],
        stale_evals: int,
        clock: float,
    ) -> None:
        tr = obs.active()
        if tr is not None:
            # The path stays out of the event: a trace must not differ just
            # because two otherwise-identical runs checkpoint to different
            # files (golden-trace byte comparisons depend on this).
            tr.emit("checkpoint_save", step=next_step - 1, next_step=next_step)
        state = self.state_dict()
        self._latest_checkpoint = state
        save_checkpoint(
            {
                "version": CHECKPOINT_VERSION,
                "trainer": self.name,
                "step": next_step,
                "clock": clock,
                "best": best,
                "stale_evals": stale_evals,
                "state": state,
                "log": runlog_to_jsonable(log),
            },
            cfg.checkpoint_path,
        )

    def _resume(self, cfg: TrainConfig) -> Tuple[int, RunLog, Optional[float], int, float]:
        ck = load_checkpoint(cfg.resume_from)
        if ck.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {ck.get('version')} != "
                f"{CHECKPOINT_VERSION} ({cfg.resume_from})"
            )
        if ck.get("trainer") != self.name:
            raise ValueError(
                f"checkpoint was written by trainer {ck.get('trainer')!r}, "
                f"cannot resume with {self.name!r}"
            )
        self.load_state_dict(ck["state"])
        self._latest_checkpoint = ck["state"]
        log = runlog_from_jsonable(ck["log"])
        return int(ck["step"]), log, ck["best"], int(ck["stale_evals"]), float(ck["clock"])

    # -- the run loop ---------------------------------------------------------
    def run(self, cfg: TrainConfig) -> TrainResult:
        log = RunLog(name=self.name)
        best: Optional[float] = None
        stale_evals = 0
        clock = 0.0
        start_step = 0
        if cfg.resume_from is not None:
            start_step, log, best, stale_evals, clock = self._resume(cfg)
        self._log = log
        try:
            with obs.use(cfg.tracer):
                tr = obs.active()
                for i in range(start_step, cfg.n_steps):
                    provision_s = 0.0
                    if self.elastic is not None:
                        provision_s = self._apply_membership(i)
                    if tr is not None:
                        tr.emit("step_begin", step=i)
                    rec = self.step(i)
                    if provision_s > 0.0:
                        # Joiner provisioning (boot + model pull) is charged
                        # in sim-seconds to the step that admitted them.
                        rec.sim_time += provision_s
                        rec.extra["provision_s"] = provision_s
                    clock += rec.sim_time
                    log.record_iteration(rec)
                    if tr is not None:
                        tr.emit(
                            "step_end",
                            step=i,
                            synced=rec.synced,
                            sim_time=rec.sim_time,
                            comm_time=rec.comm_time,
                            loss=rec.loss,
                            grad_change=rec.grad_change,
                            extra=dict(rec.extra),
                        )
                    if self.elastic is not None:
                        self.elastic.observe_step(
                            i,
                            rec,
                            len(self.workers),
                            self.workers[0].loader.batch_size,
                            self._last_compute_times,
                        )
                    if cfg.step_monitor is not None:
                        cfg.step_monitor(self, i)
                    last = i == cfg.n_steps - 1
                    if cfg.eval_fn is not None and ((i + 1) % cfg.eval_every == 0 or last):
                        metric = self.evaluate(cfg)
                        log.record_eval(
                            EvalRecord(
                                step=i,
                                epoch=self.workers[0].epoch,
                                sim_time=clock,
                                metric=metric,
                                metric_name="metric",
                            )
                        )
                        if tr is not None:
                            tr.emit(
                                "eval",
                                step=i,
                                metric=metric,
                                epoch=self.workers[0].epoch,
                                sim_time=clock,
                                metric_name="metric",
                            )
                        if best is None:
                            improved = True
                        elif cfg.higher_is_better:
                            improved = metric > best + cfg.min_improvement
                        else:
                            improved = metric < best - cfg.min_improvement
                        if improved:
                            best = metric
                            stale_evals = 0
                        else:
                            stale_evals += 1
                            if cfg.patience is not None and stale_evals >= cfg.patience:
                                break
                    if (
                        cfg.checkpoint_every is not None
                        and (i + 1) % cfg.checkpoint_every == 0
                    ):
                        self._write_checkpoint(cfg, i + 1, log, best, stale_evals, clock)
                    if cfg.stop_after is not None and (i + 1) >= cfg.stop_after:
                        break  # simulated kill; the checkpoint is the survivor
        finally:
            self._log = None
        final = log.final_metric() if log.evals else None
        return TrainResult(
            log=log,
            final_metric=final,
            best_metric=best,
            steps=log.n_steps,
            sim_time=log.total_sim_time,
            lssr=log.lssr() if log.n_steps else None,
        )
