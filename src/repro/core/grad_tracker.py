"""Relative gradient change tracking — the heart of SelSync (paper §III-A).

Implements Eqn. (2):

    Δ(g_i) = | (E[||∇F_i||²] − E[||∇F_{i−1}||²]) / E[||∇F_{i−1}||²] |

where ``E[·]`` is an EWMA over a sliding window (noise smoothing, §III-B's
``RelativeGradChange`` routine). The tracker also remembers the running
extremum ``M = max_i Δ(g_i)`` which bounds the useful range of the δ
threshold (Fig. 6: δ=0 ⇒ pure BSP, δ>M ⇒ pure local-SGD).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.ewma import Ewma


class RelativeGradChange:
    """Streaming Δ(g_i) estimator over squared gradient norms.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor; the paper uses ``N/100`` (0.16 at N=16).
    window:
        EWMA window size; the paper finds w=25 sufficient (Fig. 8a shows
        the overhead of larger windows).
    """

    def __init__(self, alpha: float = 0.16, window: int = 25):
        self._ewma = Ewma(alpha=alpha, window=window)
        self._prev_smoothed: Optional[float] = None
        self._last_delta: Optional[float] = None
        self._max_delta: float = 0.0
        self._n_updates: int = 0

    @property
    def window(self) -> int:
        return self._ewma.window

    @property
    def alpha(self) -> float:
        return self._ewma.alpha

    def update(self, grad_sqnorm: float) -> float:
        """Ingest ``||∇F_i||²`` and return Δ(g_i).

        The very first iteration has no predecessor; we return ``inf`` so
        that any finite δ classifies it as a synchronization step — workers
        must agree on an initial state before local training means anything.
        """
        if grad_sqnorm < 0:
            raise ValueError(f"squared norm cannot be negative: {grad_sqnorm}")
        smoothed = self._ewma.update(grad_sqnorm)
        if self._prev_smoothed is None:
            delta = float("inf")
        elif self._prev_smoothed == 0.0:
            # A zero smoothed norm means the model stopped moving entirely;
            # any nonzero gradient afterwards is an infinite relative change.
            delta = 0.0 if smoothed == 0.0 else float("inf")
        else:
            delta = abs((smoothed - self._prev_smoothed) / self._prev_smoothed)
        self._prev_smoothed = smoothed
        self._last_delta = delta
        if np.isfinite(delta):
            self._max_delta = max(self._max_delta, delta)
        self._n_updates += 1
        return delta

    @property
    def last_delta(self) -> Optional[float]:
        return self._last_delta

    @property
    def max_delta(self) -> float:
        """Running extremum M of finite Δ(g_i) values (paper §III-B)."""
        return self._max_delta

    @property
    def n_updates(self) -> int:
        return self._n_updates

    def exceeds(self, delta_threshold: float) -> bool:
        """Alg. 1 line 10: does the latest Δ(g_i) call for synchronization?"""
        if delta_threshold < 0:
            raise ValueError(f"δ must be >= 0, got {delta_threshold}")
        if self._last_delta is None:
            raise RuntimeError("exceeds() called before any update()")
        return self._last_delta >= delta_threshold

    def reset(self) -> None:
        self._ewma.reset()
        self._prev_smoothed = None
        self._last_delta = None
        self._n_updates = 0

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict:
        """Checkpointable snapshot (``last_delta`` may be ``inf``; the
        checkpoint encoder handles non-finite floats)."""
        return {
            "ewma": self._ewma.state_dict(),
            "prev_smoothed": self._prev_smoothed,
            "last_delta": self._last_delta,
            "max_delta": self._max_delta,
            "n_updates": self._n_updates,
        }

    def load_state_dict(self, state: Dict) -> None:
        self._ewma.load_state_dict(state["ewma"])
        self._prev_smoothed = (
            None if state["prev_smoothed"] is None else float(state["prev_smoothed"])
        )
        self._last_delta = (
            None if state["last_delta"] is None else float(state["last_delta"])
        )
        self._max_delta = float(state["max_delta"])
        self._n_updates = int(state["n_updates"])
