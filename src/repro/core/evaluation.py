"""Evaluation callbacks for the trainers' ``eval_fn`` hook."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module


def accuracy_eval(dataset: Dataset, batch_size: int = 256, top_k: int = 1) -> Callable:
    """Top-k test accuracy over a held-out dataset (top-1 for CIFAR-like,
    top-5 for the ImageNet-like workload, matching the paper)."""
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")

    def evaluate(model: Module) -> float:
        n = len(dataset)
        correct = 0
        for start in range(0, n, batch_size):
            idx = np.arange(start, min(start + batch_size, n))
            x, y = dataset.get_batch(idx)
            logits = model.forward(x)
            if top_k == 1:
                correct += int((logits.argmax(axis=-1) == y).sum())
            else:
                top = np.argpartition(logits, -top_k, axis=-1)[:, -top_k:]
                correct += int((top == y[:, None]).any(axis=1).sum())
        return correct / n

    return evaluate


def perplexity_eval(dataset: Dataset, batch_size: int = 64) -> Callable:
    """Test perplexity = exp(mean NLL) over a token dataset (Transformer)."""

    def evaluate(model: Module) -> float:
        n = len(dataset)
        total_nll = 0.0
        total_tokens = 0
        for start in range(0, n, batch_size):
            idx = np.arange(start, min(start + batch_size, n))
            x, y = dataset.get_batch(idx)
            logits = model.forward(x)
            logp = F.log_softmax(logits.reshape(-1, logits.shape[-1]), axis=-1)
            flat_y = y.reshape(-1)
            total_nll += float(-logp[np.arange(flat_y.size), flat_y].sum())
            total_tokens += flat_y.size
        return float(np.exp(total_nll / total_tokens))

    return evaluate


def loss_eval(dataset: Dataset, batch_size: int = 256) -> Callable:
    """Mean test cross-entropy (lower is better)."""

    def evaluate(model: Module) -> float:
        n = len(dataset)
        total = 0.0
        for start in range(0, n, batch_size):
            idx = np.arange(start, min(start + batch_size, n))
            x, y = dataset.get_batch(idx)
            loss = CrossEntropyLoss()
            total += loss.forward(model.forward(x), y) * len(idx)
        return total / n

    return evaluate
