"""Stale-Synchronous Parallel training (paper §II-C), event-driven.

Each worker asynchronously pulls the global parameters, computes a gradient
on its own shard, and pushes ``-lr·g`` to the PS, which applies updates in
arrival order. A worker may run ahead of the slowest worker by at most ``s``
iterations; beyond that it blocks until the laggard catches up. Staleness is
*real* in this simulation: between a worker's pull and its push, other
workers' updates land on the PS, so the pushed gradient was computed at
stale parameters — exactly the mechanism that stalls deep models in Table I.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.simclock import EventQueue
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig, TrainConfig
from repro.core.trainer import DistributedTrainer, TrainResult
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import EvalRecord, IterationRecord, RunLog


class SSPTrainer(DistributedTrainer):
    """SSP with staleness threshold ``s``.

    ``n_steps`` in the run config is interpreted per worker, matching
    Table I's iteration counts (lock-step trainers advance all workers
    together, so the convention is consistent across methods).
    """

    name = "ssp"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        staleness: int = 100,
    ):
        super().__init__(workers, cluster, schedule)
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.staleness = staleness

    def _push_pull_time(self) -> float:
        """Asynchronous point-to-point exchange with the PS (pull + push).

        No barrier: the cost is a single worker's link, not the cluster-wide
        ingress collapse that synchronous PS rounds pay.
        """
        bits = 8.0 * self.comm_bytes
        net = self.cluster.net
        one_way = net.latency_s + bits / net.bandwidth_bps
        return 2.0 * one_way

    # The event-driven loop replaces the lock-step run().
    def run(self, cfg: TrainConfig) -> TrainResult:
        n = len(self.workers)
        log = RunLog(name=self.name)
        queue = EventQueue()
        iters = np.zeros(n, dtype=np.int64)
        blocked: List[int] = []
        batch = self.workers[0].loader.batch_size
        lr_of = self.lr
        comm_t = self._push_pull_time()
        best: Optional[float] = None
        stale_evals = 0
        stop = False
        last_time = 0.0
        total_eval_interval = cfg.eval_every * n  # worker-steps between evals
        completed = 0

        def start(worker_id: int, now: float) -> None:
            """Pull, compute, and schedule the push completion."""
            w = self.workers[worker_id]
            w.set_params(self.server.pull(copy=False))
            self.executor.compute_gradients([w])
            t_c = self.compute.sample_time(self.flops_per_sample, batch, worker_id)
            queue.push(now + t_c + comm_t, worker=worker_id)

        for wid in range(n):
            start(wid, 0.0)

        while queue and not stop:
            ev = queue.pop()
            wid = ev.worker
            w = self.workers[wid]
            # Push: apply this worker's (possibly stale) update at the PS.
            k = int(iters[wid])
            self.server.async_apply(-lr_of(k) * w.get_grads())
            iters[wid] += 1
            completed += 1
            log.record_iteration(
                IterationRecord(
                    step=completed - 1,
                    synced=False,
                    sim_time=ev.time - last_time,
                    comm_time=comm_t,
                    loss=w.last_loss,
                    extra={"worker": float(wid), "staleness": float(iters[wid] - iters.min())},
                )
            )
            last_time = ev.time

            # Periodic evaluation of the global model.
            if cfg.eval_fn is not None and completed % total_eval_interval == 0:
                metric = self._eval_global(cfg)
                log.record_eval(
                    EvalRecord(
                        step=completed - 1,
                        epoch=float(np.mean([ww.epoch for ww in self.workers])),
                        sim_time=ev.time,
                        metric=metric,
                    )
                )
                if best is None:
                    best = metric
                else:
                    better = (
                        metric > best + cfg.min_improvement
                        if cfg.higher_is_better
                        else metric < best - cfg.min_improvement
                    )
                    if better:
                        best, stale_evals = metric, 0
                    else:
                        stale_evals += 1
                        if cfg.patience is not None and stale_evals >= cfg.patience:
                            stop = True

            if iters[wid] >= cfg.n_steps:
                pass  # this worker is done
            elif iters[wid] - iters.min() > self.staleness:
                blocked.append(wid)  # too far ahead: wait for stragglers
            else:
                start(wid, ev.time)

            # Unblock fast workers whose lead shrank back under the bound.
            still_blocked = []
            for b in blocked:
                if iters[b] - iters.min() <= self.staleness and iters[b] < cfg.n_steps:
                    start(b, ev.time)
                else:
                    still_blocked.append(b)
            blocked = still_blocked

        final_metric = None
        if cfg.eval_fn is not None:
            final_metric = self._eval_global(cfg)
            log.record_eval(
                EvalRecord(
                    step=completed - 1,
                    epoch=float(np.mean([ww.epoch for ww in self.workers])),
                    sim_time=last_time,
                    metric=final_metric,
                )
            )
            if best is None or (
                final_metric > best if cfg.higher_is_better else final_metric < best
            ):
                best = final_metric

        return TrainResult(
            log=log,
            final_metric=final_metric,
            best_metric=best,
            # Per-worker iterations, comparable with the lock-step trainers.
            steps=int(iters.max()),
            sim_time=last_time,
            lssr=None,  # paper: LSSR does not apply to SSP
        )

    def _eval_global(self, cfg: TrainConfig) -> float:
        w0 = self.workers[0]
        saved = w0.get_params(copy=True)
        w0.set_params(self.server.pull(copy=False))
        w0.model.eval()
        try:
            return float(cfg.eval_fn(w0.model))
        finally:
            w0.model.train()
            w0.set_params(saved)
