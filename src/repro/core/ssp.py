"""Stale-Synchronous Parallel training (paper §II-C), event-driven.

Each worker asynchronously pulls the global parameters, computes a gradient
on its own shard, and pushes ``-lr·g`` to the PS, which applies updates in
arrival order. A worker may run ahead of the slowest worker by at most ``s``
iterations; beyond that it blocks until the laggard catches up. Staleness is
*real* in this simulation: between a worker's pull and its push, other
workers' updates land on the PS, so the pushed gradient was computed at
stale parameters — exactly the mechanism that stalls deep models in Table I.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.cluster.simclock import EventQueue
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig, TrainConfig
from repro.core.trainer import DistributedTrainer, TrainResult
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import EvalRecord, FaultRecord, IterationRecord, RunLog


class SSPTrainer(DistributedTrainer):
    """SSP with staleness threshold ``s``.

    ``n_steps`` in the run config is interpreted per worker, matching
    Table I's iteration counts (lock-step trainers advance all workers
    together, so the convention is consistent across methods).
    """

    name = "ssp"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        staleness: int = 100,
    ):
        super().__init__(workers, cluster, schedule)
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        if self.health is not None:
            raise NotImplementedError(
                "SSP's event-driven loop has no lock-step aggregation "
                "rounds to screen; worker-health quarantine is not "
                "supported here (the PS-side non-finite guard and the "
                "norm_clip async transform still protect the globals)"
            )
        if self.elastic is not None:
            raise NotImplementedError(
                "SSP's event-driven loop has no step boundary at which to "
                "apply a membership change; elastic scaling is not "
                "supported here"
            )
        self.staleness = staleness

    def _push_pull_time(self) -> float:
        """Asynchronous point-to-point exchange with the PS (pull + push).

        No barrier: the cost is a single worker's link, not the cluster-wide
        ingress collapse that synchronous PS rounds pay.
        """
        bits = 8.0 * self.comm_bytes
        net = self.cluster.net
        one_way = net.latency_s + bits / net.bandwidth_bps
        return 2.0 * one_way

    # The event-driven loop replaces the lock-step run().
    def run(self, cfg: TrainConfig) -> TrainResult:
        if cfg.checkpoint_every is not None or cfg.resume_from is not None:
            raise NotImplementedError(
                "SSP's event-driven loop does not support checkpoint/resume: "
                "its in-flight event queue (one pending push per worker) is "
                "not at a step boundary at any wall-clock instant; use a "
                "lock-step trainer for checkpointed runs"
            )
        n = len(self.workers)
        log = RunLog(name=self.name)
        self._log = log
        try:
            with obs.use(cfg.tracer):
                return self._run_events(cfg, log)
        finally:
            self._log = None

    def _run_events(self, cfg: TrainConfig, log: RunLog) -> TrainResult:
        n = len(self.workers)
        queue = EventQueue()
        iters = np.zeros(n, dtype=np.int64)
        blocked: List[int] = []
        batch = self.workers[0].loader.batch_size
        lr_of = self.lr
        comm_t = self._push_pull_time()
        best: Optional[float] = None
        stale_evals = 0
        stop = False
        last_time = 0.0
        total_eval_interval = cfg.eval_every * n  # worker-steps between evals
        completed = 0
        # Fault bookkeeping. SSP has no global step, so fault windows are
        # interpreted in each worker's own iteration space: ``crash:w1@40-60``
        # downs worker 1 from its 40th to its 60th iteration. A crashed
        # worker recovers by pulling the current globals from the PS — the
        # asynchronous analogue of the lock-step checkpoint restore.
        dead: set = set()  # permanently crashed (open-ended window)
        alive = np.ones(n, dtype=bool)
        # Crash windows already served: a worker's iteration counter does
        # not advance while it is down, so after the rejoin the same window
        # still covers its iteration — each (worker, window) fires once.
        served_crashes: set = set()

        def live_min() -> int:
            """Staleness floor over workers that can still make progress."""
            return int(iters[alive].min()) if alive.any() else int(iters.min())

        def start(worker_id: int, now: float) -> None:
            """Pull, compute, and schedule the push completion."""
            k = int(iters[worker_id])
            crash = next(
                (
                    c
                    for c in self.faults.plan.crashes
                    if c.worker == worker_id
                    and c.covers(k)
                    and (worker_id, c.start, c.end) not in served_crashes
                ),
                None,
            ) if self.faults.active else None
            if crash is not None:
                served_crashes.add((worker_id, crash.start, crash.end))
                self._record_fault(
                    FaultRecord(
                        step=k,
                        worker=worker_id,
                        kind="crash",
                        detail={"until": -1 if crash.end is None else crash.end},
                    )
                )
                if crash.end is None:
                    dead.add(worker_id)
                    alive[worker_id] = False
                    self.check_quorum(int(alive.sum()), k)
                    return
                # Downtime estimate: the remaining window, at this worker's
                # nominal (unstraggled, no-jitter) step duration.
                t_step = (
                    self.compute.mean_time(self.flops_per_sample, batch, worker_id)
                    + comm_t
                )
                queue.push(now + (crash.end - k) * t_step, worker=worker_id,
                           payload="rejoin")
                return
            w = self.workers[worker_id]
            w.set_params(self.server.pull(copy=False))
            self.executor.compute_gradients([w])
            t_c = self.compute.sample_time(self.flops_per_sample, batch, worker_id)
            if self.faults.active:
                t_c *= self.faults.straggle_factor(worker_id, k)
            queue.push(now + t_c + comm_t, worker=worker_id)

        for wid in range(n):
            start(wid, 0.0)

        while queue and not stop:
            ev = queue.pop()
            wid = ev.worker
            w = self.workers[wid]
            if ev.payload == "rejoin":
                self._record_fault(
                    FaultRecord(
                        step=int(iters[wid]), worker=wid, kind="rejoin",
                        detail={"from_checkpoint": 0},
                    )
                )
                start(wid, ev.time)
                continue
            # Push: apply this worker's (possibly stale) update at the PS.
            k = int(iters[wid])
            push_delay = 0.0
            apply_update = True
            if self.faults.active:
                if self.faults.corrupts(wid, k):
                    # The PS rejects a NaN/inf burst instead of poisoning
                    # the globals; the worker's iteration still counts.
                    self._record_fault(
                        FaultRecord(step=k, worker=wid, kind="corrupt", detail={})
                    )
                    apply_update = False
                else:
                    push_delay, retries, lost = self.faults.upload_penalty_seconds(
                        wid, k, comm_t / 2.0
                    )
                    if retries:
                        self._record_fault(
                            FaultRecord(
                                step=k, worker=wid, kind="drop",
                                detail={"retries": retries, "lost": int(lost)},
                            )
                        )
                    if lost:
                        apply_update = False
                        push_delay = 0.0
            if apply_update and self.net_faults is not None:
                # SSP's fault windows live in each worker's own iteration
                # space, so the link draws are keyed on (worker, PS, k) —
                # begin_step installs k for this one push. A severed or
                # lossy PS uplink retries through the envelope; a terminal
                # loss drops this push (the worker keeps iterating and its
                # next successful push lands the newer gradient).
                self.group.begin_step(k)
                wait_s, delivered = self.group.push_outcome(wid, self.comm_bytes)
                if not delivered:
                    self._record_fault(
                        FaultRecord(
                            step=k, worker=wid, kind="link_drop",
                            detail={"wait_s": float(wait_s)},
                        )
                    )
                    apply_update = False
                else:
                    push_delay += wait_s
            if apply_update:
                grad = w.get_grads()
                if self.faults.active and self.faults.adversarial_corrupts(wid, k):
                    # Finite hostile push: passes the PS finiteness guard
                    # by design; only norm clipping can blunt it here.
                    grad = self.faults.adversarial_gradient(wid, k, grad)
                    self._record_fault(
                        FaultRecord(
                            step=k,
                            worker=wid,
                            kind="corrupt",
                            detail={"adversarial": 1},
                        )
                    )
                self.server.async_apply(-lr_of(k) * grad)
            iters[wid] += 1
            completed += 1
            log.record_iteration(
                IterationRecord(
                    step=completed - 1,
                    synced=False,
                    sim_time=ev.time - last_time,
                    comm_time=comm_t,
                    loss=w.last_loss,
                    extra={"worker": float(wid), "staleness": float(iters[wid] - live_min())},
                )
            )
            tr = obs.active()
            if tr is not None:
                # SSP has no lock-step rounds: the trace's step axis is the
                # global completion index, each event owned by the worker
                # whose push landed. The async pull+push is latency traffic
                # outside the full-model ``bytes_synced`` ledger, hence
                # ``bytes=0`` (same convention as allgather_flags/p2p).
                tr.emit(
                    "collective",
                    step=completed - 1,
                    worker=wid,
                    op="async_pushpull",
                    payload=float(self.comm_bytes),
                    bytes=0.0,
                    ranks=2,
                    seconds=comm_t,
                )
                if apply_update:
                    tr.emit(
                        "aggregation",
                        step=completed - 1,
                        worker=wid,
                        kind="async",
                        n_contrib=1,
                    )
                tr.emit(
                    "step_end",
                    step=completed - 1,
                    worker=wid,
                    synced=False,
                    sim_time=ev.time - last_time,
                    comm_time=comm_t,
                    loss=float(w.last_loss),
                    extra={"staleness": float(iters[wid] - live_min())},
                )
            last_time = ev.time

            # Periodic evaluation of the global model.
            if cfg.eval_fn is not None and completed % total_eval_interval == 0:
                metric = self._eval_global(cfg)
                log.record_eval(
                    EvalRecord(
                        step=completed - 1,
                        epoch=float(np.mean([ww.epoch for ww in self.workers])),
                        sim_time=ev.time,
                        metric=metric,
                    )
                )
                if tr is not None:
                    tr.emit(
                        "eval",
                        step=completed - 1,
                        metric=metric,
                        epoch=float(np.mean([ww.epoch for ww in self.workers])),
                        sim_time=ev.time,
                        metric_name="metric",
                    )
                if best is None:
                    best = metric
                else:
                    better = (
                        metric > best + cfg.min_improvement
                        if cfg.higher_is_better
                        else metric < best - cfg.min_improvement
                    )
                    if better:
                        best, stale_evals = metric, 0
                    else:
                        stale_evals += 1
                        if cfg.patience is not None and stale_evals >= cfg.patience:
                            stop = True

            if iters[wid] >= cfg.n_steps:
                pass  # this worker is done
            elif iters[wid] - live_min() > self.staleness:
                blocked.append(wid)  # too far ahead: wait for stragglers
            else:
                # Retry traffic delays only this worker's next pull.
                start(wid, ev.time + push_delay)

            # Unblock fast workers whose lead shrank back under the bound.
            # The staleness floor ignores permanently dead workers — they
            # would otherwise deadlock every survivor after s iterations.
            still_blocked = []
            for b in blocked:
                if iters[b] - live_min() <= self.staleness and iters[b] < cfg.n_steps:
                    start(b, ev.time)
                else:
                    still_blocked.append(b)
            blocked = still_blocked

        final_metric = None
        if cfg.eval_fn is not None:
            final_metric = self._eval_global(cfg)
            log.record_eval(
                EvalRecord(
                    step=completed - 1,
                    epoch=float(np.mean([ww.epoch for ww in self.workers])),
                    sim_time=last_time,
                    metric=final_metric,
                )
            )
            tr = obs.active()
            if tr is not None:
                tr.emit(
                    "eval",
                    step=completed - 1,
                    metric=final_metric,
                    epoch=float(np.mean([ww.epoch for ww in self.workers])),
                    sim_time=last_time,
                    metric_name="metric",
                )
            if best is None or (
                final_metric > best if cfg.higher_is_better else final_metric < best
            ):
                best = final_metric

        return TrainResult(
            log=log,
            final_metric=final_metric,
            best_metric=best,
            # Per-worker iterations, comparable with the lock-step trainers.
            steps=int(iters.max()),
            sim_time=last_time,
            lssr=None,  # paper: LSSR does not apply to SSP
        )

    def _eval_global(self, cfg: TrainConfig) -> float:
        w0 = self.workers[0]
        saved = w0.get_params(copy=True)
        w0.set_params(self.server.pull(copy=False))
        w0.model.eval()
        try:
            return float(cfg.eval_fn(w0.model))
        finally:
            w0.model.train()
            w0.set_params(saved)
