"""Pure local-SGD: never communicate (SelSync's δ→∞ limit, Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.core.trainer import DistributedTrainer
from repro.utils.runlog import IterationRecord


class LocalSGDTrainer(DistributedTrainer):
    """Every worker descends its own loss surface; replicas never exchange
    anything, so each explores only its local minimum (paper §III-B)."""

    name = "localsgd"
    # No data ever crosses a link, so link faults (including a full
    # network partition) cannot take a worker out of the round.
    communicates = False

    def step(self, i: int) -> IterationRecord:
        sf = self.begin_faults(i)
        live = sf.live
        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch, step=i, live=live)
        lr = self.lr(i)
        losses = self.executor.compute_gradients([self.workers[w] for w in live])
        # No communication, so no healing pull exists: a corrupted gradient
        # is simply dropped and that worker loses the step. Health
        # screening still runs so a sick worker is quarantined here too.
        stepping = set(self.apply_corruption(sf))
        stepping = set(self.screen_updates(i, sorted(stepping), observed=live))
        for wid in live:
            if wid in stepping:
                self.workers[wid].local_step(lr)
        return IterationRecord(
            step=i,
            synced=False,
            sim_time=t_c,
            comm_time=0.0,
            loss=float(np.mean(losses)),
        )
