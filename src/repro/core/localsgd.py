"""Pure local-SGD: never communicate (SelSync's δ→∞ limit, Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.core.trainer import DistributedTrainer
from repro.utils.runlog import IterationRecord


class LocalSGDTrainer(DistributedTrainer):
    """Every worker descends its own loss surface; replicas never exchange
    anything, so each explores only its local minimum (paper §III-B)."""

    name = "localsgd"

    def step(self, i: int) -> IterationRecord:
        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch)
        lr = self.lr(i)
        losses = self.executor.compute_gradients(self.workers)
        for w in self.workers:
            w.local_step(lr)
        return IterationRecord(
            step=i,
            synced=False,
            sim_time=t_c,
            comm_time=0.0,
            loss=float(np.mean(losses)),
        )
