"""Federated Averaging (paper §II-B).

FedAvg is configured as ``(C, E)``: every ``E``-th of an epoch, a random
``C``-fraction of workers pushes parameters; their average becomes the new
global model which all workers then pull. Between rounds every worker runs
pure local SGD — the low-frequency/high-volume strategy whose accuracy
penalty Table I documents.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.worker import SimWorker
from repro.comm.topology import build_topology
from repro.core.config import ClusterConfig
from repro.core.trainer import DistributedTrainer
from repro.optim.schedules import LRSchedule
from repro.utils.rng import as_rng
from repro.utils.runlog import IterationRecord


class FedAvgTrainer(DistributedTrainer):
    """FedAvg over the simulated PS.

    Parameters
    ----------
    c_fraction:
        Fraction C of workers whose updates are aggregated each round.
    e_factor:
        Synchronization factor E = 1/x where x is rounds per epoch
        (E=0.25 ⇒ 4 uniformly spaced aggregations per epoch).
    """

    name = "fedavg"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        c_fraction: float = 1.0,
        e_factor: float = 0.25,
    ):
        super().__init__(workers, cluster, schedule)
        if not 0.0 < c_fraction <= 1.0:
            raise ValueError(f"C must be in (0, 1], got {c_fraction}")
        if not 0.0 < e_factor <= 1.0:
            raise ValueError(f"E must be in (0, 1], got {e_factor}")
        self.c_fraction = c_fraction
        self.e_factor = e_factor
        steps_per_epoch = workers[0].loader.steps_per_epoch
        self.sync_interval = max(1, int(round(e_factor * steps_per_epoch)))
        self._rng = as_rng(cluster.seed + 7919)
        self._topology = build_topology(cluster.topology)

    def n_participants(self) -> int:
        return max(1, int(np.ceil(self.c_fraction * len(self.workers))))

    def step(self, i: int) -> IterationRecord:
        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch)
        lr = self.lr(i)
        losses = self.executor.compute_gradients(self.workers)
        for w in self.workers:
            w.local_step(lr)

        synced = (i + 1) % self.sync_interval == 0
        t_s = 0.0
        if synced:
            k = self.n_participants()
            chosen = self._rng.choice(len(self.workers), size=k, replace=False)
            pushed = [self.workers[int(c)].get_params(copy=False) for c in chosen]
            global_params = self.server.aggregate_params(pushed)
            # Aggregation involves the C-fraction; the pull-back reaches all.
            t_s = self._topology.sync_time(self.comm_bytes, k, self.cluster.net)
            if k < len(self.workers):
                t_s += self._topology.sync_time(
                    self.comm_bytes, len(self.workers), self.cluster.net
                ) / 2.0
            for w in self.workers:
                w.set_params(global_params)
            t_s = self.effective_sync_time(t_s, t_c)
        return IterationRecord(
            step=i,
            synced=synced,
            sim_time=t_c + t_s,
            comm_time=t_s,
            loss=float(np.mean(losses)),
        )
