"""Federated Averaging (paper §II-B).

FedAvg is configured as ``(C, E)``: every ``E``-th of an epoch, a random
``C``-fraction of workers pushes parameters; their average becomes the new
global model which all workers then pull. Between rounds every worker runs
pure local SGD — the low-frequency/high-volume strategy whose accuracy
penalty Table I documents.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig
from repro.core.trainer import DistributedTrainer
from repro.optim.schedules import LRSchedule
from repro.utils.rng import as_rng
from repro.utils.runlog import IterationRecord


class FedAvgTrainer(DistributedTrainer):
    """FedAvg over the simulated PS.

    Parameters
    ----------
    c_fraction:
        Fraction C of workers whose updates are aggregated each round.
    e_factor:
        Synchronization factor E = 1/x where x is rounds per epoch
        (E=0.25 ⇒ 4 uniformly spaced aggregations per epoch).
    """

    name = "fedavg"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        c_fraction: float = 1.0,
        e_factor: float = 0.25,
    ):
        super().__init__(workers, cluster, schedule)
        if not 0.0 < c_fraction <= 1.0:
            raise ValueError(f"C must be in (0, 1], got {c_fraction}")
        if not 0.0 < e_factor <= 1.0:
            raise ValueError(f"E must be in (0, 1], got {e_factor}")
        self.c_fraction = c_fraction
        self.e_factor = e_factor
        steps_per_epoch = workers[0].loader.steps_per_epoch
        self.sync_interval = max(1, int(round(e_factor * steps_per_epoch)))
        self._rng = as_rng(cluster.seed + 7919)

    def n_participants(self) -> int:
        return max(1, int(np.ceil(self.c_fraction * len(self.workers))))

    def step(self, i: int) -> IterationRecord:
        sf = self.begin_faults(i)
        degraded = self.degraded_mode
        live = sf.live
        live_workers = [self.workers[w] for w in live]

        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch, step=i, live=live)
        lr = self.lr(i)
        losses = self.executor.compute_gradients(live_workers)
        # A corrupted gradient must not land on the replica FedAvg will
        # later average in; that worker skips this local step. Health
        # screening removes freshly quarantined workers the same way.
        stepping = set(self.apply_corruption(sf))
        stepping = set(self.screen_updates(i, sorted(stepping), observed=live))
        for wid in live:
            if wid in stepping:
                self.workers[wid].local_step(lr)

        synced = (i + 1) % self.sync_interval == 0
        t_s = 0.0
        if synced:
            k = self.n_participants()
            if degraded:
                # Sample the C-fraction from the live pool. The quorum is
                # capped at the planned participant count: a C=0.25 round
                # never involves more than k workers, so demanding more
                # than k contributors would always fail.
                quorum_k = min(self.quorum, k)
                pool = sorted(stepping)
                k = min(k, len(pool))
                if k < quorum_k:
                    self.check_quorum(k, i)
                chosen = [
                    pool[int(c)]
                    for c in self._rng.choice(len(pool), size=k, replace=False)
                ]
                t_retry, lost = self.upload_penalty(chosen, i)
                if lost:
                    chosen = [w for w in chosen if w not in set(lost)]
                if len(chosen) < quorum_k:
                    self.check_quorum(len(chosen), i)
            else:
                chosen = [
                    int(c)
                    for c in self._rng.choice(len(self.workers), size=k, replace=False)
                ]
                t_retry = 0.0
            pushed = self.wire_updates(
                chosen, [self.workers[c].get_params(copy=False) for c in chosen]
            )
            global_params = self.server.aggregate_params(pushed)
            tr = obs.active()
            if tr is not None:
                tr.emit("aggregation", kind="PA", n_contrib=len(chosen))
            # Aggregation involves the C-fraction; the pull-back reaches all
            # (live) workers. FedAvg charges its clock outside the group's
            # byte ledger (the PS aggregation above moved the data), so use
            # the timing-only path — identical to the raw topology formula
            # without link faults, healed/enveloped with them.
            t_s = self.group.sync_time_only(
                self.comm_bytes,
                n_live=len(chosen),
                rank_ids=chosen if degraded else None,
            )
            if len(chosen) < len(self.workers):
                t_s += self.group.sync_time_only(self.comm_bytes) / 2.0
            for w in live_workers:
                w.set_params(global_params)
            t_s = self.effective_sync_time(t_s, t_c) + t_retry
        return IterationRecord(
            step=i,
            synced=synced,
            sim_time=t_c + t_s,
            comm_time=t_s,
            loss=float(np.mean(losses)),
        )

    def _extra_state(self):
        return {"rng": self._rng.bit_generator.state}

    def _load_extra_state(self, state):
        self._rng.bit_generator.state = state["rng"]
