"""Adaptive δ policies — an extension beyond the paper.

The paper sets δ once before launch (§III-B) and notes that the useful range
``[0, M]`` depends on the model, dataset and hyperparameters — which makes a
good δ a per-workload tuning burden. These policies pick the threshold
online from the observed Δ(g) stream, removing that knob:

* :class:`FixedDelta` — the paper's behaviour, wrapped in the policy API.
* :class:`FractionOfMaxDelta` — δ_i = fraction × M_i where M_i is the
  running extremum of finite Δ(g) across workers; syncs during a warmup
  prefix while M_i is still unreliable.
* :class:`TargetLSSRDelta` — a feedback controller that nudges δ to hit a
  user-chosen LSSR (communication budget) regardless of workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.selsync import SelSyncTrainer


class DeltaPolicy:
    """Maps trainer state to the δ threshold used this iteration."""

    def effective_delta(self, trainer: "SelSyncTrainer", step: int) -> float:
        raise NotImplementedError

    # Stateless policies checkpoint as nothing; stateful ones override both.
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class FixedDelta(DeltaPolicy):
    """The paper's pre-launch constant δ."""

    def __init__(self, delta: float):
        if delta < 0:
            raise ValueError(f"δ must be >= 0, got {delta}")
        self.delta = float(delta)

    def effective_delta(self, trainer, step: int) -> float:
        return self.delta


class FractionOfMaxDelta(DeltaPolicy):
    """δ tracks a fraction of the observed gradient-change extremum M.

    During ``warmup`` steps the policy returns 0 (pure BSP) so M is
    estimated on honestly-synchronized dynamics; afterwards
    ``δ = fraction × M`` adapts automatically to the workload's Δ(g) scale
    (Fig. 6's ``[0, M]`` range, chosen online instead of by hand).
    """

    def __init__(self, fraction: float = 0.05, warmup: int = 20):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.fraction = fraction
        self.warmup = warmup

    def effective_delta(self, trainer, step: int) -> float:
        if step < self.warmup:
            return 0.0
        return self.fraction * trainer.max_observed_delta


class TargetLSSRDelta(DeltaPolicy):
    """Feedback controller steering δ toward a target LSSR.

    After each step, compare the realized LSSR so far with the target and
    scale δ multiplicatively: too much syncing ⇒ raise δ, too little ⇒
    lower it. Converges to whatever threshold delivers the requested
    communication budget on this workload.
    """

    def __init__(
        self,
        target_lssr: float = 0.9,
        initial_delta: float = 0.1,
        gain: float = 0.05,
        warmup: int = 10,
    ):
        if not 0.0 < target_lssr < 1.0:
            raise ValueError(f"target LSSR must be in (0, 1), got {target_lssr}")
        if initial_delta <= 0:
            raise ValueError(f"initial δ must be positive, got {initial_delta}")
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.target = target_lssr
        self.delta = initial_delta
        self.gain = gain
        self.warmup = warmup
        self._local = 0
        self._total = 0

    def observe(self, synced: bool) -> None:
        """Feed back the realized decision of the last step."""
        self._total += 1
        if not synced:
            self._local += 1
        if self._total <= self.warmup:
            return
        realized = self._local / self._total
        # Multiplicative update: undersyncing the budget lowers δ and vice
        # versa. Clamped to stay strictly positive.
        self.delta = max(1e-12, self.delta * (1.0 + self.gain * (self.target - realized)))

    @property
    def realized_lssr(self) -> float:
        return self._local / self._total if self._total else 0.0

    def effective_delta(self, trainer, step: int) -> float:
        if step < self.warmup:
            return 0.0
        return self.delta

    def state_dict(self) -> dict:
        return {"delta": self.delta, "local": self._local, "total": self._total}

    def load_state_dict(self, state: dict) -> None:
        self.delta = float(state["delta"])
        self._local = int(state["local"])
        self._total = int(state["total"])
