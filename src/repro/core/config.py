"""Configuration dataclasses shared by all trainers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.compute import ComputeModel
from repro.cluster.executor import EXECUTOR_KINDS, WorkerExecutor, make_executor
from repro.comm.collectives import SimGroup
from repro.comm.network import NetworkModel


@dataclass
class ClusterConfig:
    """Simulated cluster shape and timing sources.

    Attributes
    ----------
    n_workers:
        Cluster size N (the paper evaluates N=16 plus a PS).
    net / topology:
        Interconnect parameters and synchronization strategy.
    comm_bytes:
        Payload of one full-model synchronization. ``None`` uses the actual
        in-memory model size; experiments override with the paper-scale
        model size (e.g. 507 MB for VGG11) so communication/compute ratios
        match the testbed.
    flops_per_sample:
        Compute cost per sample. ``None`` uses the model's own estimate;
        experiments override with the paper-scale figure.
    device_flops / jitter_sigma / speeds:
        Passed through to :class:`ComputeModel`.
    """

    n_workers: int = 4
    net: NetworkModel = field(default_factory=NetworkModel)
    topology: str = "ps"
    comm_bytes: Optional[float] = None
    flops_per_sample: Optional[float] = None
    device_flops: float = 2.0e12
    jitter_sigma: float = 0.02
    speeds: Optional[list] = None
    seed: int = 0
    #: Fraction of the compute phase that synchronization can hide behind
    #: (PipeDream/GradientFlow/ByteScheduler-style overlap, §II-D). 0 means
    #: strictly sequential compute-then-communicate; 1 means communication
    #: can fully hide under compute.
    overlap_fraction: float = 0.0
    #: Backend for the per-worker gradient phase: ``"serial"`` (reference)
    #: or ``"threaded"`` (thread pool; byte-identical results, see
    #: :mod:`repro.cluster.executor`).
    executor: str = "serial"
    #: Thread-pool width for the threaded executor; ``None`` sizes it to the
    #: worker count. Ignored by the serial backend.
    executor_threads: Optional[int] = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError(
                f"overlap_fraction must be in [0, 1], got {self.overlap_fraction}"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.executor_threads is not None and self.executor_threads < 1:
            raise ValueError(
                f"executor_threads must be >= 1, got {self.executor_threads}"
            )

    def make_group(self) -> SimGroup:
        return SimGroup(self.n_workers, net=self.net, topology=self.topology)

    def make_executor(self) -> WorkerExecutor:
        return make_executor(self.executor, threads=self.executor_threads)

    def make_compute(self) -> ComputeModel:
        return ComputeModel(
            self.n_workers,
            device_flops=self.device_flops,
            speeds=self.speeds,
            jitter_sigma=self.jitter_sigma,
            rng=self.seed,
        )


@dataclass
class TrainConfig:
    """Run-control parameters common to every trainer.

    Attributes
    ----------
    n_steps:
        Hard iteration cap.
    eval_every:
        Evaluate the deployable model every this many steps (and at the end).
    eval_fn:
        ``model -> float`` metric callback; higher_is_better tells the
        harness how to compare (accuracy vs perplexity).
    patience:
        Stop after this many consecutive evaluations without improvement;
        ``None`` disables early stopping (fixed-step runs). This implements
        the paper's "run until accuracy/perplexity does not improve further"
        protocol for Table I.
    min_improvement:
        Smallest metric delta that counts as progress for the patience rule.
    """

    n_steps: int = 200
    eval_every: int = 50
    eval_fn: Optional[Callable] = None
    higher_is_better: bool = True
    patience: Optional[int] = None
    min_improvement: float = 1e-4

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.patience is not None and self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
