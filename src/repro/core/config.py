"""Configuration dataclasses shared by all trainers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.compute import ComputeModel
from repro.cluster.elastic import (
    DEFAULT_MAX_WORKERS,
    DEFAULT_MIN_WORKERS,
    SCALE_POLICIES,
    ElasticController,
    make_scale_policy,
    parse_elastic_spec,
)
from repro.cluster.executor import EXECUTOR_KINDS, WorkerExecutor, make_executor
from repro.cluster.faults import (
    FaultInjector,
    parse_fault_spec,
    parse_net_fault_spec,
)
from repro.comm.envelope import RetryPolicy
from repro.cluster.health import HealthTracker
from repro.comm.collectives import SimGroup
from repro.comm.network import LinkFaultModel, NetworkModel, make_link_faults
from repro.comm.sharding import ShardSpec
from repro.core.robust import AGGREGATORS, Aggregator, make_aggregator


@dataclass
class ClusterConfig:
    """Simulated cluster shape and timing sources.

    Attributes
    ----------
    n_workers:
        Cluster size N (the paper evaluates N=16 plus a PS).
    net / topology:
        Interconnect parameters and synchronization strategy.
    comm_bytes:
        Payload of one full-model synchronization. ``None`` uses the actual
        in-memory model size; experiments override with the paper-scale
        model size (e.g. 507 MB for VGG11) so communication/compute ratios
        match the testbed.
    flops_per_sample:
        Compute cost per sample. ``None`` uses the model's own estimate;
        experiments override with the paper-scale figure.
    device_flops / jitter_sigma / speeds:
        Passed through to :class:`ComputeModel`.
    """

    n_workers: int = 4
    net: NetworkModel = field(default_factory=NetworkModel)
    topology: str = "ps"
    comm_bytes: Optional[float] = None
    flops_per_sample: Optional[float] = None
    device_flops: float = 2.0e12
    jitter_sigma: float = 0.02
    speeds: Optional[list] = None
    seed: int = 0
    #: Fraction of the compute phase that synchronization can hide behind
    #: (PipeDream/GradientFlow/ByteScheduler-style overlap, §II-D). 0 means
    #: strictly sequential compute-then-communicate; 1 means communication
    #: can fully hide under compute.
    overlap_fraction: float = 0.0
    #: Backend for the per-worker gradient phase: ``"serial"`` (reference),
    #: ``"threaded"`` (thread pool) or ``"process"`` (persistent process
    #: pool over shared-memory arenas) — all byte-identical, see
    #: :mod:`repro.cluster.executor`. The ``REPRO_EXECUTOR`` environment
    #: variable overrides the default, so a whole test/CI run can be
    #: switched to another backend without touching call sites.
    executor: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXECUTOR", "serial")
    )
    #: Thread-pool width for the threaded executor; ``None`` sizes it to the
    #: worker count. Ignored by the other backends.
    executor_threads: Optional[int] = None
    #: Process-pool width for the process executor; ``None`` sizes it to
    #: ``min(n_workers, cpu_count)``. Ignored by the other backends.
    executor_procs: Optional[int] = None
    #: Fault-injection spec (see :mod:`repro.cluster.faults`), e.g.
    #: ``"crash:w2@50-120,straggle:w0x4@30+,drop:p=0.05"``. ``None``/empty
    #: disables injection — the simulation is then bitwise-identical to a
    #: cluster without the fault subsystem.
    fault_spec: Optional[str] = None
    #: Link-level fault spec (see :mod:`repro.cluster.faults`), e.g.
    #: ``"partition:{w0,w1|w2..w7}@100-200,loss:p=0.02"``. ``None``/empty
    #: disables the resilient-collectives layer entirely — runs are then
    #: bitwise-identical to builds without it.
    net_fault_spec: Optional[str] = None
    #: Retries per enveloped message after the first attempt (0 = fail
    #: fast). Only consulted when ``net_fault_spec`` is set.
    retry_max: int = 4
    #: Backoff before the first retry, in milliseconds; doubles per retry
    #: up to ``retry_cap_ms`` with ±``retry_jitter`` seeded jitter.
    retry_base_ms: float = 25.0
    retry_cap_ms: float = 2000.0
    retry_jitter: float = 0.5
    #: Minimum number of workers that must contribute to an aggregation
    #: round; dropping below it raises
    #: :class:`~repro.cluster.faults.QuorumLostError` instead of silently
    #: averaging a partial mean. ``None`` means *all* workers (any loss of
    #: a contribution is loud); set lower to opt in to degraded-mode
    #: aggregation over the live subset. With health quarantine enabled,
    #: ``None`` falls back to a floor of 1 instead — quarantining any
    #: worker would otherwise always violate the all-workers quorum.
    min_quorum: Optional[int] = None
    #: Aggregation strategy for every synchronous round (see
    #: :mod:`repro.core.robust`): ``"mean"`` (the paper's protocol, exact
    #: legacy arithmetic — byte-identical to builds without the robust
    #: layer), ``"median"``, ``"trimmed_mean"``, ``"norm_clip"``,
    #: ``"krum"`` or ``"multi_krum"``.
    aggregator: str = "mean"
    #: Trim/Byzantine count f for ``trimmed_mean``/``krum``/``multi_krum``.
    trim_f: int = 1
    #: Norm cap multiplier for ``norm_clip`` (cap = factor × median norm).
    clip_factor: float = 3.0
    #: Number of parameter-server shards. 1 (the default) disables sharding
    #: entirely — runs are byte-identical to builds without the subsystem.
    #: With ``S > 1`` the flat parameter vector is partitioned into ``S``
    #: contiguous layer-aligned shards (see :mod:`repro.comm.sharding`)
    #: served by independent shard servers in parallel; requires the
    #: ``"ps"`` topology. The ``REPRO_PS_SHARDS`` environment variable
    #: overrides the default, so a whole test/CI run can be switched to a
    #: sharded server without touching call sites.
    ps_shards: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_PS_SHARDS", "1"))
    )
    #: Enable per-worker health tracking and quarantine
    #: (:class:`repro.cluster.health.HealthTracker`). Off by default —
    #: health-off runs are byte-identical to builds without the subsystem.
    health: bool = False
    #: Quarantine when a worker's EWMA outlier score exceeds this.
    health_threshold: float = 3.0
    #: Steps a quarantined worker sits out before reinstatement.
    probation: int = 20
    #: Elastic membership plan spec (see :mod:`repro.cluster.elastic`),
    #: e.g. ``"join:+2@100,drain:w3@50,scale:4..12"``. ``None``/empty/
    #: ``"off"`` (the default) disables the elastic subsystem entirely —
    #: runs are then bitwise-identical to builds without it.
    elastic_spec: Optional[str] = None
    #: Metrics-driven autoscale policy (see
    #: :data:`repro.cluster.elastic.SCALE_POLICIES`): ``"none"`` (plan-only
    #: elasticity, the default), ``"goodput"`` or ``"comm"``. Any value
    #: other than ``"none"`` enables the elastic subsystem.
    scale_policy: str = "none"
    #: World-size bounds for the autoscaler. ``None`` defers to the plan's
    #: ``scale:MIN..MAX`` clause (or wide defaults). Explicit values win
    #: over the clause.
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError(
                f"overlap_fraction must be in [0, 1], got {self.overlap_fraction}"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.executor_threads is not None and self.executor_threads < 1:
            raise ValueError(
                f"executor_threads must be >= 1, got {self.executor_threads}"
            )
        if self.executor_procs is not None and self.executor_procs < 1:
            raise ValueError(
                f"executor_procs must be >= 1, got {self.executor_procs}"
            )
        # Parse eagerly so a bad spec fails at configuration time, not at
        # step 50 of a long run; worker ids are range-checked too.
        parse_fault_spec(self.fault_spec).validate(self.n_workers)
        parse_net_fault_spec(self.net_fault_spec).validate(self.n_workers)
        if self.retry_max < 0:
            raise ValueError(f"retry_max must be >= 0, got {self.retry_max}")
        if self.retry_base_ms < 0:
            raise ValueError(
                f"retry_base_ms must be >= 0, got {self.retry_base_ms}"
            )
        if self.retry_cap_ms < self.retry_base_ms:
            raise ValueError(
                f"retry_cap_ms ({self.retry_cap_ms}) must be >= "
                f"retry_base_ms ({self.retry_base_ms})"
            )
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError(
                f"retry_jitter must be in [0, 1), got {self.retry_jitter}"
            )
        if self.min_quorum is not None and not 1 <= self.min_quorum <= self.n_workers:
            raise ValueError(
                f"min_quorum must be in [1, {self.n_workers}], got {self.min_quorum}"
            )
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {AGGREGATORS.names()}, "
                f"got {self.aggregator!r}"
            )
        if self.trim_f < 0:
            raise ValueError(f"trim_f must be >= 0, got {self.trim_f}")
        if self.clip_factor <= 0:
            raise ValueError(f"clip_factor must be > 0, got {self.clip_factor}")
        if self.ps_shards < 1:
            raise ValueError(f"ps_shards must be >= 1, got {self.ps_shards}")
        if self.ps_shards > 1 and self.topology != "ps":
            raise ValueError(
                f"ps_shards > 1 requires the 'ps' topology (shards are "
                f"parameter-server endpoints), got topology={self.topology!r}"
            )
        if self.health_threshold <= 0:
            raise ValueError(
                f"health_threshold must be > 0, got {self.health_threshold}"
            )
        if self.probation < 1:
            raise ValueError(f"probation must be >= 1, got {self.probation}")
        # Elastic membership: parse eagerly (bad clauses fail loudly at
        # configuration time) and keep validation lenient about ranks —
        # membership changes resize n_workers mid-run via replace(), which
        # reruns this hook against the *current* size.
        parse_elastic_spec(self.elastic_spec).validate(self.n_workers)
        if self.scale_policy not in SCALE_POLICIES:
            raise ValueError(
                f"scale_policy must be one of "
                f"{sorted(SCALE_POLICIES)}, got {self.scale_policy!r}"
            )
        if self.min_workers is not None and self.min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if (
            self.min_workers is not None
            and self.max_workers is not None
            and self.min_workers > self.max_workers
        ):
            raise ValueError(
                f"min_workers ({self.min_workers}) must be <= "
                f"max_workers ({self.max_workers})"
            )
        if self.elastic_enabled:
            if self.fault_spec:
                raise ValueError(
                    "elastic membership cannot be combined with fault_spec "
                    "(fault windows are keyed to fixed worker ids)"
                )
            if self.net_fault_spec:
                raise ValueError(
                    "elastic membership cannot be combined with "
                    "net_fault_spec (link faults are keyed to fixed ranks)"
                )
            if self.speeds is not None:
                raise ValueError(
                    "elastic membership cannot be combined with explicit "
                    "per-worker speeds (the speed vector is fixed-size)"
                )

    @property
    def elastic_enabled(self) -> bool:
        """True when any membership clause is scheduled or an autoscale
        policy is active — the opt-in gate for the elastic subsystem."""
        return (
            not parse_elastic_spec(self.elastic_spec).empty
            or self.scale_policy != "none"
        )

    def make_elastic(self) -> Optional[ElasticController]:
        """Elastic membership controller, or ``None`` when the subsystem is
        off — callers short-circuit on ``None`` so fixed-membership runs
        never touch the elastic code path at all."""
        if not self.elastic_enabled:
            return None
        plan = parse_elastic_spec(self.elastic_spec)
        lo = plan.bounds.lo if plan.bounds is not None else DEFAULT_MIN_WORKERS
        hi = plan.bounds.hi if plan.bounds is not None else DEFAULT_MAX_WORKERS
        if self.min_workers is not None:
            lo = self.min_workers
        if self.max_workers is not None:
            hi = self.max_workers
        return ElasticController(
            plan,
            policy=make_scale_policy(self.scale_policy),
            min_workers=lo,
            max_workers=hi,
            seed=self.seed,
        )

    @property
    def effective_quorum(self) -> int:
        """Quorum actually enforced: ``min_quorum``, or all workers — except
        under health quarantine, where the all-workers default collapses to
        1 (excluding a flagged worker must not instantly kill the run)."""
        if self.min_quorum is not None:
            return self.min_quorum
        return 1 if self.health else self.n_workers

    def make_aggregator(self) -> Optional[Aggregator]:
        """Robust aggregator instance, or ``None`` for the plain mean.

        ``"mean"`` maps to ``None`` so default runs bypass the robust layer
        entirely — no pre-filter pass, no decision events, bit-for-bit the
        original arithmetic. The registered mean strategy remains available
        for direct use and property tests.
        """
        if self.aggregator == "mean":
            return None
        return make_aggregator(
            self.aggregator, trim_f=self.trim_f, clip_factor=self.clip_factor
        )

    def make_health(self) -> Optional[HealthTracker]:
        if not self.health:
            return None
        # Quarantine floor: at least a strict majority stays active (and
        # never below the quorum). Isolating half the cluster or more means
        # the "consensus" the outlier scores compare against is itself
        # suspect — and coordinate-wise robust aggregators lose their
        # breakdown guarantee as the cohort shrinks.
        floor = max(self.effective_quorum, self.n_workers // 2 + 1)
        return HealthTracker(
            self.n_workers,
            threshold=self.health_threshold,
            probation=self.probation,
            min_active=min(floor, self.n_workers),
        )

    def make_fault_injector(self) -> FaultInjector:
        return FaultInjector(
            parse_fault_spec(self.fault_spec), self.n_workers, seed=self.seed
        )

    def make_link_faults(self) -> Optional[LinkFaultModel]:
        """Link-fault oracle, or ``None`` with no ``net_fault_spec`` —
        callers short-circuit on ``None`` so fault-free runs never touch
        the resilient layer."""
        return make_link_faults(self.net_fault_spec, self.n_workers, seed=self.seed)

    def make_retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.retry_max,
            base_s=self.retry_base_ms / 1000.0,
            cap_s=self.retry_cap_ms / 1000.0,
            jitter=self.retry_jitter,
        )

    def make_shard_spec(self, layer_sizes) -> Optional[ShardSpec]:
        """Shard geometry over the model's tensor sizes, or ``None`` with
        ``ps_shards == 1`` — callers short-circuit on ``None`` so unsharded
        runs never touch the sharding code path at all."""
        if self.ps_shards <= 1:
            return None
        return ShardSpec.from_layers(layer_sizes, self.ps_shards)

    def make_group(
        self,
        aggregator: Optional[Aggregator] = None,
        shard_spec: Optional[ShardSpec] = None,
    ) -> SimGroup:
        link_faults = self.make_link_faults()
        return SimGroup(
            self.n_workers,
            net=self.net,
            topology=self.topology,
            aggregator=aggregator,
            link_faults=link_faults,
            retry_policy=self.make_retry_policy() if link_faults else None,
            shard_spec=shard_spec,
        )

    def make_executor(self) -> WorkerExecutor:
        return make_executor(
            self.executor,
            threads=self.executor_threads,
            procs=self.executor_procs,
        )

    def make_compute(self) -> ComputeModel:
        return ComputeModel(
            self.n_workers,
            device_flops=self.device_flops,
            speeds=self.speeds,
            jitter_sigma=self.jitter_sigma,
            rng=self.seed,
        )


@dataclass
class TrainConfig:
    """Run-control parameters common to every trainer.

    Attributes
    ----------
    n_steps:
        Hard iteration cap.
    eval_every:
        Evaluate the deployable model every this many steps (and at the end).
    eval_fn:
        ``model -> float`` metric callback; higher_is_better tells the
        harness how to compare (accuracy vs perplexity).
    patience:
        Stop after this many consecutive evaluations without improvement;
        ``None`` disables early stopping (fixed-step runs). This implements
        the paper's "run until accuracy/perplexity does not improve further"
        protocol for Table I.
    min_improvement:
        Smallest metric delta that counts as progress for the patience rule.
    checkpoint_every / checkpoint_path:
        Snapshot the full trainer state (global params, per-worker
        optimizer + loader RNG state, tracker state, step counter, run log)
        every this many steps into ``checkpoint_path``. The file is written
        atomically and overwritten each time (it is a resume point, not an
        archive).
    resume_from:
        Path of a checkpoint to restore before training; the run continues
        from the saved step and is bitwise-identical to one that was never
        interrupted.
    stop_after:
        Deterministic kill simulation: abort the run right after this many
        steps (post-checkpoint, without the final-step evaluation), as if
        the process died there. Everything else — LR schedule, data order,
        jitter stream — is configured exactly as the full run, which is
        what makes a later ``resume_from`` continuation bitwise-identical.
    tracer:
        Optional :class:`repro.obs.Tracer` installed for the duration of
        the run; every instrumented layer (trainers, collectives, network,
        executor, faults) emits typed events into it. ``None`` (the
        default) disables tracing entirely — traced-off runs are
        bitwise-identical to untraced ones.
    step_monitor:
        Optional ``(trainer, step) -> None`` callback invoked after every
        completed step. The recovery supervisor installs its divergence
        watchdog here (raising aborts the run and triggers rollback);
        ``None`` (the default) changes nothing — monitored-off runs are
        bitwise-identical.
    """

    n_steps: int = 200
    eval_every: int = 50
    eval_fn: Optional[Callable] = None
    higher_is_better: bool = True
    patience: Optional[int] = None
    min_improvement: float = 1e-4
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    resume_from: Optional[str] = None
    stop_after: Optional[int] = None
    tracer: Optional[object] = None
    step_monitor: Optional[Callable] = None

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.patience is not None and self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.checkpoint_every is not None and self.checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if self.stop_after is not None and self.stop_after < 1:
            raise ValueError(f"stop_after must be >= 1, got {self.stop_after}")
