"""TernGrad (Wen et al. 2017): stochastic ternary quantization."""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor
from repro.utils.rng import RngLike, as_rng


@COMPRESSORS.register("terngrad")
class TernGradCompressor(Compressor):
    """Quantize to ``s·{-1, 0, +1}`` with ``s = max|g|``; each coordinate is
    ±1 with probability ``|g_i|/s`` (unbiased), else 0. 2 bits/element."""

    overhead_seconds = 5e-4

    def __init__(self, rng: RngLike = None):
        super().__init__(error_feedback=False)  # unbiased; EF unnecessary
        self.rng = as_rng(rng)

    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        n = grad.size
        s = float(np.max(np.abs(grad))) if n else 0.0
        if s == 0.0:
            tern = np.zeros(n, dtype=np.int8)
        else:
            prob = np.abs(grad) / s
            keep = self.rng.random(n) < prob
            tern = (np.sign(grad) * keep).astype(np.int8)
        return CompressedMessage(
            payload=(tern, s),
            nbytes=int(np.ceil(n / 4)) + 4,  # 2 bits per element + scale
            n_elements=n,
        )

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        tern, s = msg.payload
        return s * tern.astype(np.float64)
