"""Accordion-style adaptive compression (Agarwal et al. 2020, paper cite [27]).

Accordion is the work SelSync leans on for the Δ(g)-tracks-criticality
claim: it switches between a *low* and a *high* compression ratio depending
on whether training is in a critical regime, detected from relative gradient
change. This implementation reuses the same
:class:`~repro.core.grad_tracker.RelativeGradChange` tracker SelSync uses —
making the conceptual link executable: SelSync skips rounds in non-critical
regimes, Accordion shrinks them.
"""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor
from repro.core.compression.topk import TopKCompressor
from repro.core.grad_tracker import RelativeGradChange


@COMPRESSORS.register("accordion")
class AccordionCompressor(Compressor):
    """Top-k with a criticality-controlled ratio.

    Parameters
    ----------
    low_ratio / high_ratio:
        Kept-fraction outside / inside critical regimes (Accordion's
        ``k_low``/``k_high``; high_ratio > low_ratio).
    delta:
        Criticality threshold on Δ(‖g‖²), same semantics as SelSync's δ.
    ewma_alpha / ewma_window:
        Smoothing of the gradient-change tracker.
    """

    overhead_seconds = 1.5e-3

    def __init__(
        self,
        low_ratio: float = 0.01,
        high_ratio: float = 0.1,
        delta: float = 0.1,
        ewma_alpha: float = 0.16,
        ewma_window: int = 25,
        error_feedback: bool = True,
    ):
        super().__init__(error_feedback=error_feedback)
        if not 0.0 < low_ratio < high_ratio <= 1.0:
            raise ValueError(
                f"need 0 < low_ratio < high_ratio <= 1, got {low_ratio}, {high_ratio}"
            )
        if delta < 0:
            raise ValueError(f"δ must be >= 0, got {delta}")
        self.low = TopKCompressor(ratio=low_ratio, error_feedback=False)
        self.high = TopKCompressor(ratio=high_ratio, error_feedback=False)
        self.delta = delta
        self.tracker = RelativeGradChange(alpha=ewma_alpha, window=ewma_window)
        self.n_critical = 0
        self.n_total = 0

    @property
    def critical_fraction(self) -> float:
        """Fraction of compressed gradients judged critical so far."""
        return self.n_critical / self.n_total if self.n_total else 0.0

    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        sqnorm = float(grad @ grad)
        d = self.tracker.update(sqnorm)
        critical = d >= self.delta
        self.n_total += 1
        if critical:
            self.n_critical += 1
        inner = self.high if critical else self.low
        return inner._encode(grad)

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        # Both inner codecs share the (indices, values) wire format.
        return self.low._decode(msg)
