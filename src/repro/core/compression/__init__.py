"""Gradient-compression comparators (paper §II-D related work).

Sparsification (Top-k, Random-k, DGC), quantization (signSGD, TernGrad) and
low-rank approximation (PowerSGD) — the communication-reduction family
SelSync is positioned against. Each compressor maps a flat gradient to a
compact message plus a reconstruction, so the BSP trainer can aggregate
compressed gradients and the benches can compare bytes-on-the-wire and
converged accuracy.
"""

from repro.core.compression.base import CompressedMessage, Compressor, COMPRESSORS, build_compressor
from repro.core.compression.topk import TopKCompressor
from repro.core.compression.randomk import RandomKCompressor
from repro.core.compression.dgc import DGCCompressor
from repro.core.compression.signsgd import SignSGDCompressor
from repro.core.compression.terngrad import TernGradCompressor
from repro.core.compression.powersgd import PowerSGDCompressor
from repro.core.compression.accordion import AccordionCompressor

__all__ = [
    "AccordionCompressor",
    "CompressedMessage",
    "Compressor",
    "COMPRESSORS",
    "build_compressor",
    "TopKCompressor",
    "RandomKCompressor",
    "DGCCompressor",
    "SignSGDCompressor",
    "TernGradCompressor",
    "PowerSGDCompressor",
]
