"""Deep Gradient Compression (Lin et al. 2017), simplified faithfully.

DGC = Top-k sparsification + *momentum correction*: local momentum
accumulates dense gradients; only the entries whose accumulated magnitude
crosses the Top-k bar are sent, and sent coordinates have their local
accumulation cleared (the error feedback is in the accumulators).
"""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor


@COMPRESSORS.register("dgc")
class DGCCompressor(Compressor):
    """Momentum-corrected Top-k sparsifier."""

    overhead_seconds = 2e-3  # heavier bookkeeping than plain Top-k

    def __init__(self, ratio: float = 0.01, momentum: float = 0.9):
        # Error feedback is built into the accumulators, not the base hook.
        super().__init__(error_feedback=False)
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.ratio = ratio
        self.momentum = momentum
        self._u: np.ndarray = np.zeros(0)  # momentum buffer
        self._v: np.ndarray = np.zeros(0)  # accumulated (velocity) buffer

    def compress(self, grad: np.ndarray) -> CompressedMessage:
        grad = np.asarray(grad, dtype=np.float64).ravel()
        n = grad.size
        if self._u.size != n:
            self._u = np.zeros(n)
            self._v = np.zeros(n)
        self._u = self.momentum * self._u + grad
        self._v = self._v + self._u
        k = max(1, int(round(self.ratio * n)))
        idx = np.argpartition(np.abs(self._v), n - k)[n - k:]
        vals = self._v[idx].copy()
        # Sent coordinates clear both accumulators (DGC's correction rule).
        self._v[idx] = 0.0
        self._u[idx] = 0.0
        return CompressedMessage(
            payload=(idx.astype(np.int64), vals), nbytes=8 * k, n_elements=n
        )

    def _encode(self, grad: np.ndarray) -> CompressedMessage:  # pragma: no cover
        raise RuntimeError("DGC overrides compress() directly")

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        idx, vals = msg.payload
        out = np.zeros(msg.n_elements)
        out[idx] = vals
        return out
