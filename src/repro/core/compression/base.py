"""Compressor interface.

``compress`` produces a :class:`CompressedMessage` whose ``nbytes`` is what
the wire would carry; ``decompress`` reconstructs a dense gradient. The
paper stresses that compression is not zero-cost (§II-D, citing GraVAC);
``overhead_seconds`` is the modelled compress+decompress latency the BSP
trainer charges per step.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.utils.registry import Registry

COMPRESSORS: Registry = Registry("compressor")


@dataclass
class CompressedMessage:
    """A compressed gradient as it would cross the network."""

    payload: Any
    nbytes: int
    n_elements: int

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")


class Compressor:
    """Base gradient compressor with optional error feedback.

    Error feedback accumulates the residual (what compression dropped) into
    the next step's input — required for Top-k-style sparsifiers to converge
    (Alistarh et al. 2018) and used by DGC.
    """

    #: modelled compress+decompress latency in seconds
    overhead_seconds: float = 1e-3

    def __init__(self, error_feedback: bool = False):
        self.error_feedback = error_feedback
        self._residual: np.ndarray = np.zeros(0)

    def clone(self) -> "Compressor":
        """Independent copy (per-worker state such as residuals/momentum)."""
        return copy.deepcopy(self)

    def compress(self, grad: np.ndarray) -> CompressedMessage:
        grad = np.asarray(grad, dtype=np.float64).ravel()
        if self.error_feedback:
            if self._residual.size != grad.size:
                self._residual = np.zeros_like(grad)
            grad = grad + self._residual
        msg = self._encode(grad)
        if self.error_feedback:
            self._residual = grad - self._decode(msg)
        return msg

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        return self._decode(msg)

    def compression_ratio(self, n_elements: int) -> float:
        """Dense bytes / compressed bytes for an ``n_elements`` gradient."""
        dense = 8 * n_elements
        msg = self._encode(np.ones(n_elements))
        return dense / max(1, msg.nbytes)

    # checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Error-feedback residual — the only state that evolves per step."""
        return {"residual": self._residual.copy()}

    def load_state_dict(self, state: dict) -> None:
        self._residual = np.asarray(state["residual"], dtype=np.float64).copy()

    # subclass hooks ------------------------------------------------------
    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        raise NotImplementedError

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        raise NotImplementedError


def build_compressor(name: str, **kwargs) -> Compressor:
    return COMPRESSORS.create(name, **kwargs)
