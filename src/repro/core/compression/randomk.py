"""Random-k sparsification — the unbiased baseline Top-k is compared to."""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor
from repro.utils.rng import RngLike, as_rng


@COMPRESSORS.register("randomk")
class RandomKCompressor(Compressor):
    """Keep a uniformly random ``ratio`` fraction, rescaled by ``1/ratio`` so
    the estimate stays unbiased."""

    def __init__(
        self, ratio: float = 0.01, error_feedback: bool = True, rng: RngLike = None
    ):
        super().__init__(error_feedback=error_feedback)
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.rng = as_rng(rng)

    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        n = grad.size
        k = max(1, int(round(self.ratio * n)))
        idx = self.rng.choice(n, size=k, replace=False)
        return CompressedMessage(
            payload=(idx.astype(np.int64), grad[idx] / self.ratio),
            nbytes=8 * k,
            n_elements=n,
        )

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        idx, vals = msg.payload
        out = np.zeros(msg.n_elements)
        out[idx] = vals
        return out
