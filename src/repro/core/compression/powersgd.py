"""PowerSGD (Vogels et al. 2019): low-rank gradient approximation.

The flat gradient is reshaped to a near-square matrix ``M`` and approximated
as ``P Qᵀ`` with rank ``r`` via one subspace (power) iteration, warm-starting
``Q`` from the previous step — the trick that makes a single iteration per
step sufficient in the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor
from repro.utils.rng import RngLike, as_rng


@COMPRESSORS.register("powersgd")
class PowerSGDCompressor(Compressor):
    """Rank-``r`` power-iteration compressor with warm start and error
    feedback (both present in the original algorithm)."""

    overhead_seconds = 2e-3

    def __init__(self, rank: int = 2, error_feedback: bool = True, rng: RngLike = None):
        super().__init__(error_feedback=error_feedback)
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.rng = as_rng(rng)
        self._q: np.ndarray = np.zeros(0)

    @staticmethod
    def _matrix_shape(n: int) -> tuple:
        rows = int(np.sqrt(n))
        while n % rows != 0:
            rows -= 1
        return rows, n // rows

    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        n = grad.size
        rows, cols = self._matrix_shape(n)
        m = grad.reshape(rows, cols)
        r = min(self.rank, rows, cols)
        if self._q.shape != (cols, r):
            self._q = self.rng.normal(size=(cols, r))
        # One power iteration with orthogonalized P (Gram-Schmidt via QR).
        p = m @ self._q
        p, _ = np.linalg.qr(p)
        q = m.T @ p
        self._q = q  # warm start for the next step
        return CompressedMessage(
            payload=(p, q, (rows, cols)),
            nbytes=4 * (p.size + q.size),
            n_elements=n,
        )

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        p, q, (rows, cols) = msg.payload
        return (p @ q.T).ravel()
