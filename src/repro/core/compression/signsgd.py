"""signSGD (Bernstein et al. 2018): 1 bit per coordinate plus a scale."""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor


@COMPRESSORS.register("signsgd")
class SignSGDCompressor(Compressor):
    """Transmit ``sign(g)`` packed to 1 bit/element, scaled by mean |g| so
    the reconstruction preserves gradient magnitude on average."""

    overhead_seconds = 5e-4

    def __init__(self, error_feedback: bool = True):
        super().__init__(error_feedback=error_feedback)

    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        n = grad.size
        scale = float(np.mean(np.abs(grad))) if n else 0.0
        bits = np.packbits(grad >= 0)
        return CompressedMessage(
            payload=(bits, scale),
            nbytes=int(bits.nbytes) + 4,
            n_elements=n,
        )

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        bits, scale = msg.payload
        signs = np.unpackbits(bits)[: msg.n_elements].astype(np.float64)
        return scale * (2.0 * signs - 1.0)
