"""Top-k magnitude sparsification (Alistarh et al. 2018)."""

from __future__ import annotations

import numpy as np

from repro.core.compression.base import COMPRESSORS, CompressedMessage, Compressor


@COMPRESSORS.register("topk")
class TopKCompressor(Compressor):
    """Keep the ``ratio`` fraction of entries with largest magnitude.

    The wire format is (indices, values): 4 bytes of index + 4 bytes of
    fp32 value per kept element.
    """

    def __init__(self, ratio: float = 0.01, error_feedback: bool = True):
        super().__init__(error_feedback=error_feedback)
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio

    def _k(self, n: int) -> int:
        return max(1, int(round(self.ratio * n)))

    def _encode(self, grad: np.ndarray) -> CompressedMessage:
        n = grad.size
        k = self._k(n)
        idx = np.argpartition(np.abs(grad), n - k)[n - k:]
        return CompressedMessage(
            payload=(idx.astype(np.int64), grad[idx].copy()),
            nbytes=8 * k,  # 4B index + 4B fp32 value
            n_elements=n,
        )

    def _decode(self, msg: CompressedMessage) -> np.ndarray:
        idx, vals = msg.payload
        out = np.zeros(msg.n_elements)
        out[idx] = vals
        return out
