"""Core algorithms: SelSync and the baselines it is evaluated against."""

from repro.core.grad_tracker import RelativeGradChange
from repro.core.config import ClusterConfig, TrainConfig
from repro.core.trainer import DistributedTrainer, TrainResult
from repro.core.bsp import BSPTrainer
from repro.core.localsgd import LocalSGDTrainer
from repro.core.fedavg import FedAvgTrainer
from repro.core.ssp import SSPTrainer
from repro.core.selsync import SelSyncTrainer
from repro.core.easgd import EASGDTrainer
from repro.core.adaptive import (
    DeltaPolicy,
    FixedDelta,
    FractionOfMaxDelta,
    TargetLSSRDelta,
)
from repro.core.metrics import (
    relative_throughput,
    speedup_vs_bsp,
    time_to_metric,
)
from repro.core.hessian import hessian_top_eigenvalue
from repro.core.divergence import (
    DivergenceTracker,
    divergence_from,
    replica_spread,
)
from repro.core.robust import (
    AGGREGATORS,
    Aggregator,
    KrumAggregator,
    MeanAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormClipAggregator,
    TrimmedMeanAggregator,
    make_aggregator,
)
from repro.core.recovery import DivergenceExceededError, RecoverySupervisor
from repro.core import compression

__all__ = [
    "RelativeGradChange",
    "ClusterConfig",
    "TrainConfig",
    "DistributedTrainer",
    "TrainResult",
    "BSPTrainer",
    "LocalSGDTrainer",
    "FedAvgTrainer",
    "SSPTrainer",
    "SelSyncTrainer",
    "EASGDTrainer",
    "DeltaPolicy",
    "FixedDelta",
    "FractionOfMaxDelta",
    "TargetLSSRDelta",
    "relative_throughput",
    "speedup_vs_bsp",
    "time_to_metric",
    "hessian_top_eigenvalue",
    "DivergenceTracker",
    "divergence_from",
    "replica_spread",
    "AGGREGATORS",
    "Aggregator",
    "KrumAggregator",
    "MeanAggregator",
    "MedianAggregator",
    "MultiKrumAggregator",
    "NormClipAggregator",
    "TrimmedMeanAggregator",
    "make_aggregator",
    "DivergenceExceededError",
    "RecoverySupervisor",
    "compression",
]
