"""Bulk-synchronous parallel training (paper §II-A) with optional gradient
compression (§II-D comparators)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig
from repro.core.trainer import DistributedTrainer
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import IterationRecord


class BSPTrainer(DistributedTrainer):
    """Classic BSP: aggregate every step, all replicas stay identical.

    Aggregation is gradient averaging (the BSP default; with lock-step
    identical replicas it is equivalent to parameter averaging, §III-C).
    An optional :class:`~repro.core.compression.base.Compressor` reduces the
    payload per sync, reproducing the sparsification/quantization baselines.
    """

    name = "bsp"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        compressor=None,
    ):
        super().__init__(workers, cluster, schedule)
        self.compressor = compressor
        self._compressors = None
        if compressor is not None:
            # Per-worker clones so error-feedback state stays rank-local.
            self._compressors = [compressor.clone() for _ in workers]

    def _resize_per_worker_state(self, mapping):
        """Realign per-worker compressor clones (error-feedback residuals
        are rank-local); joiners start from a fresh clone."""
        if self._compressors is None:
            return
        self._compressors = [
            self._compressors[old] if old is not None else self.compressor.clone()
            for old in mapping
        ]

    def _extra_state(self):
        if self._compressors is None:
            return {}
        return {"compressors": [c.state_dict() for c in self._compressors]}

    def _load_extra_state(self, state):
        if self._compressors is not None:
            for c, s in zip(self._compressors, state["compressors"]):
                c.load_state_dict(s)

    def step(self, i: int) -> IterationRecord:
        sf = self.begin_faults(i)
        degraded = self.degraded_mode
        live = sf.live
        live_workers = [self.workers[w] for w in live]

        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch, step=i, live=live)
        losses = self.executor.compute_gradients(live_workers)

        # Live workers whose gradient survived corruption push this round;
        # health-flagged workers and workers whose upload is abandoned
        # after retries drop out too.
        pushers = self.apply_corruption(sf)
        pushers = self.screen_updates(i, pushers, observed=live)
        t_retry, lost = self.upload_penalty(pushers, i)
        if lost:
            lost_set = set(lost)
            pushers = [w for w in pushers if w not in lost_set]
        self.check_quorum(len(pushers), i)

        if self._compressors is None:
            grads = self.wire_updates(
                pushers, [self.workers[w].get_grads() for w in pushers]
            )
            payload = self.comm_bytes
            overhead = 0.0
        else:
            grads, payloads, overheads = [], [], []
            scale = self.comm_bytes / max(1.0, float(self.workers[0].model.nbytes))
            for wid in pushers:
                comp = self._compressors[wid]
                msg = comp.compress(self.workers[wid].get_grads())
                grads.append(comp.decompress(msg))
                payloads.append(msg.nbytes * scale)
                overheads.append(comp.overhead_seconds)
            payload = float(np.mean(payloads))
            overhead = float(np.max(overheads))
            # A Byzantine worker's lie is what arrives after decompression.
            grads = self.wire_updates(pushers, grads)

        mean_grad, t_s = self.group.allreduce_mean(
            grads,
            nbytes=payload,
            n_live=len(pushers) if degraded else None,
            rank_ids=pushers if degraded else None,
        )
        tr = obs.active()
        if tr is not None:
            tr.emit("aggregation", kind="GA", n_contrib=len(pushers))
        # Retry traffic serializes after the sync (it cannot overlap compute).
        t_s = self.effective_sync_time(t_s, t_c) + t_retry
        lr = self.lr(i)
        # Every *live* worker applies the mean — a corrupted or upload-lost
        # worker still receives the pull, which heals its replica.
        for w in live_workers:
            w.apply_gradient(mean_grad, lr)
        return IterationRecord(
            step=i,
            synced=True,
            sim_time=t_c + t_s + overhead,
            comm_time=t_s,
            loss=float(np.mean(losses)),
        )
