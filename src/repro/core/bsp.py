"""Bulk-synchronous parallel training (paper §II-A) with optional gradient
compression (§II-D comparators)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.worker import SimWorker
from repro.core.config import ClusterConfig
from repro.core.trainer import DistributedTrainer
from repro.optim.schedules import LRSchedule
from repro.utils.runlog import IterationRecord


class BSPTrainer(DistributedTrainer):
    """Classic BSP: aggregate every step, all replicas stay identical.

    Aggregation is gradient averaging (the BSP default; with lock-step
    identical replicas it is equivalent to parameter averaging, §III-C).
    An optional :class:`~repro.core.compression.base.Compressor` reduces the
    payload per sync, reproducing the sparsification/quantization baselines.
    """

    name = "bsp"

    def __init__(
        self,
        workers: List[SimWorker],
        cluster: ClusterConfig,
        schedule: Optional[LRSchedule] = None,
        compressor=None,
    ):
        super().__init__(workers, cluster, schedule)
        self.compressor = compressor
        self._compressors = None
        if compressor is not None:
            # Per-worker clones so error-feedback state stays rank-local.
            self._compressors = [compressor.clone() for _ in workers]

    def step(self, i: int) -> IterationRecord:
        batch = self.workers[0].loader.batch_size
        t_c = self.max_compute_time(batch)
        losses = self.executor.compute_gradients(self.workers)

        if self._compressors is None:
            grads = [w.get_grads() for w in self.workers]
            payload = self.comm_bytes
            overhead = 0.0
        else:
            grads, payloads, overheads = [], [], []
            scale = self.comm_bytes / max(1.0, float(self.workers[0].model.nbytes))
            for w, comp in zip(self.workers, self._compressors):
                msg = comp.compress(w.get_grads())
                grads.append(comp.decompress(msg))
                payloads.append(msg.nbytes * scale)
                overheads.append(comp.overhead_seconds)
            payload = float(np.mean(payloads))
            overhead = float(np.max(overheads))

        mean_grad, t_s = self.group.allreduce_mean(grads, nbytes=payload)
        t_s = self.effective_sync_time(t_s, t_c)
        lr = self.lr(i)
        for w in self.workers:
            w.apply_gradient(mean_grad, lr)
        return IterationRecord(
            step=i,
            synced=True,
            sim_time=t_c + t_s + overhead,
            comm_time=t_s,
            loss=float(np.mean(losses)),
        )
