"""Data substrate: synthetic datasets, partitioning schemes and loaders.

The paper's datasets (CIFAR10/100, ImageNet-1K, WikiText-103) are not
available offline; the generators here produce class-conditional images and
a Markov token corpus with the same *structural* properties — learnable
class structure, configurable label counts for non-IID splits, and a token
stream for BPTT language modelling (see DESIGN.md substitution table).
"""

from repro.data.dataset import ArrayDataset, Dataset, SequenceDataset
from repro.data.synthetic import (
    DATASETS,
    build_dataset,
    cifar10_like,
    cifar100_like,
    imagenet_like,
    make_blobs,
    wikitext_like,
)
from repro.data.partition import (
    Partition,
    default_partition,
    selsync_partition,
    label_skew_partition,
)
from repro.data.loader import BatchLoader
from repro.data.injection import DataInjector, injected_batch_size

__all__ = [
    "Dataset",
    "ArrayDataset",
    "SequenceDataset",
    "DATASETS",
    "build_dataset",
    "make_blobs",
    "cifar10_like",
    "cifar100_like",
    "imagenet_like",
    "wikitext_like",
    "Partition",
    "default_partition",
    "selsync_partition",
    "label_skew_partition",
    "BatchLoader",
    "DataInjector",
    "injected_batch_size",
]
