"""Randomized data-injection for non-IID training (paper §III-E).

Each iteration, a random ``α``-fraction of workers is selected; each selected
worker shares a ``β``-fraction of its local mini-batch with every worker.
Workers therefore train on their ``b'`` local samples plus the injected pool,
and the local batch size is shrunk to ``b' = b / (1 + αβN)`` (Eqn. 3) so the
effective batch stays at the configured ``b`` — avoiding the large-batch
generalization penalty the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_rng


def injected_batch_size(b: int, alpha: float, beta: float, n_workers: int) -> int:
    """Eqn. (3): local batch size ``b'`` such that ``b'(1 + αβN) = b``."""
    if b < 1:
        raise ValueError(f"batch size must be >= 1, got {b}")
    if not 0.0 <= alpha <= 1.0 or not 0.0 <= beta <= 1.0:
        raise ValueError(f"alpha/beta must be in [0, 1], got {alpha}, {beta}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return max(1, int(round(b / (1.0 + alpha * beta * n_workers))))


@dataclass
class InjectionResult:
    """One iteration's injection outcome."""

    batches: List[Tuple[np.ndarray, np.ndarray]]
    donors: np.ndarray
    bytes_transferred: int


class DataInjector:
    """Applies per-iteration randomized data injection across worker batches.

    Parameters
    ----------
    alpha / beta:
        Fraction of workers selected as donors, and fraction of each donor's
        local batch that is shared.
    sample_nbytes:
        Per-sample payload size, used to account the (small) transfer cost
        the paper quantifies (§III-E: ~132 KB/iter at 16 workers on CIFAR).
    """

    def __init__(
        self,
        alpha: float,
        beta: float,
        n_workers: int,
        sample_nbytes: int = 0,
        rng: RngLike = None,
    ):
        if not 0.0 <= alpha <= 1.0 or not 0.0 <= beta <= 1.0:
            raise ValueError(f"alpha/beta must be in [0, 1], got {alpha}, {beta}")
        self.alpha = alpha
        self.beta = beta
        self.n_workers = n_workers
        self.sample_nbytes = sample_nbytes
        self.rng = as_rng(rng)

    def n_donors(self) -> int:
        return int(np.ceil(self.alpha * self.n_workers))

    def inject(
        self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> InjectionResult:
        """Mix donor samples into every worker's batch for this iteration.

        ``batches[n]`` is worker ``n``'s local ``(x, y)`` mini-batch of size
        ``b'``. Donors are drawn uniformly without replacement each call
        (per-iteration anonymity: K-anonymity over the cluster).
        """
        if len(batches) != self.n_workers:
            raise ValueError(
                f"expected {self.n_workers} batches, got {len(batches)}"
            )
        k = self.n_donors()
        if k == 0 or self.beta == 0.0:
            return InjectionResult(list(batches), np.zeros(0, dtype=int), 0)
        donors = np.sort(self.rng.choice(self.n_workers, size=k, replace=False))

        pool_x, pool_y = [], []
        for d in donors:
            x, y = batches[d]
            share = max(1, int(round(self.beta * len(x))))
            sel = self.rng.choice(len(x), size=min(share, len(x)), replace=False)
            pool_x.append(x[sel])
            pool_y.append(y[sel])
        px = np.concatenate(pool_x)
        py = np.concatenate(pool_y)

        out = []
        for n in range(self.n_workers):
            x, y = batches[n]
            out.append((np.concatenate([x, px]), np.concatenate([y, py])))

        # Each receiver pulls the pool once; donors' own copies are local.
        nbytes = int(len(px) * self.sample_nbytes * (self.n_workers - 1))
        return InjectionResult(out, donors, nbytes)
