"""Dataset abstractions."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Dataset:
    """Minimal indexable dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def get_batch(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(inputs, targets)`` for the given sample indices."""
        raise NotImplementedError

    @property
    def sample_nbytes(self) -> int:
        """Size of one input sample in bytes — drives data-injection cost."""
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory supervised dataset over ``(X, y)`` arrays."""

    def __init__(self, x: np.ndarray, y: np.ndarray):
        if len(x) != len(y):
            raise ValueError(f"X has {len(x)} samples but y has {len(y)}")
        self.x = np.asarray(x)
        self.y = np.asarray(y)

    def __len__(self) -> int:
        return len(self.x)

    def get_batch(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.x[indices], self.y[indices]

    @property
    def sample_nbytes(self) -> int:
        return int(self.x[0].nbytes) if len(self.x) else 0

    @property
    def labels(self) -> np.ndarray:
        return self.y


class SequenceDataset(Dataset):
    """Language-modelling dataset over a flat token stream.

    Sample ``i`` is the window ``tokens[i*bptt : (i+1)*bptt]`` with targets
    shifted by one — the standard truncated-BPTT batching the paper uses for
    the Transformer (35 BPTT steps on WikiText-103).
    """

    def __init__(self, tokens: np.ndarray, bptt: int):
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError(f"token stream must be 1-D, got shape {tokens.shape}")
        if bptt < 1:
            raise ValueError(f"bptt must be >= 1, got {bptt}")
        n = (len(tokens) - 1) // bptt
        if n < 1:
            raise ValueError(
                f"stream of {len(tokens)} tokens too short for bptt={bptt}"
            )
        self.bptt = bptt
        self.tokens = tokens
        self._n = n

    def __len__(self) -> int:
        return self._n

    def get_batch(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        indices = np.asarray(indices)
        starts = indices * self.bptt
        offsets = np.arange(self.bptt)
        xs = self.tokens[starts[:, None] + offsets]
        ys = self.tokens[starts[:, None] + offsets + 1]
        return xs, ys

    @property
    def sample_nbytes(self) -> int:
        return int(self.bptt * self.tokens.itemsize)

    @property
    def labels(self) -> np.ndarray:
        """First token of each window — a stand-in 'label' for partitioning."""
        starts = np.arange(self._n) * self.bptt
        return self.tokens[starts]
