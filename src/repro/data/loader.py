"""Mini-batch loader over a worker's partition order."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.partition import Partition
from repro.utils.rng import RngLike, as_rng


class BatchLoader:
    """Sequential mini-batch iterator over one worker's index order.

    Walks the order cyclically; after each full pass (one worker-epoch) the
    order is locally reshuffled *within* its original chunk structure when
    ``reshuffle`` is on — preserving SelDP's chunk rotation while decorrelating
    batches across epochs.
    """

    def __init__(
        self,
        dataset: Dataset,
        order: np.ndarray,
        batch_size: int,
        reshuffle: bool = True,
        rng: RngLike = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if len(order) == 0:
            raise ValueError("empty sample order")
        self.dataset = dataset
        self.order = np.asarray(order).copy()
        self.batch_size = int(batch_size)
        self.reshuffle = reshuffle
        self.rng = as_rng(rng)
        self._cursor = 0
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Completed passes over this worker's order."""
        return self._epoch

    @property
    def steps_per_epoch(self) -> int:
        return max(1, len(self.order) // self.batch_size)

    @property
    def fractional_epoch(self) -> float:
        """Continuous epoch counter (used for FedAvg's E-interval syncing)."""
        return self._epoch + self._cursor / max(1, len(self.order))

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next ``(inputs, targets)`` mini-batch, wrapping epochs."""
        n = len(self.order)
        if self._cursor + self.batch_size > n:
            self._wrap()
        idx = self.order[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.dataset.get_batch(idx)

    def peek_indices(self, k: int) -> np.ndarray:
        """Indices of the next ``k`` samples without consuming them."""
        n = len(self.order)
        if self._cursor + k > n:
            return np.concatenate(
                [self.order[self._cursor :], self.order[: k - (n - self._cursor)]]
            )
        return self.order[self._cursor : self._cursor + k]

    def _wrap(self) -> None:
        self._epoch += 1
        self._cursor = 0
        if self.reshuffle:
            # Shuffle within the whole order. For SelDP this mildly blurs
            # chunk boundaries after the first epoch, which matches the
            # paper's goal (every worker sees all data) while keeping the
            # first-epoch rotation exact.
            self.rng.shuffle(self.order)

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict:
        """Checkpointable snapshot: the (possibly reshuffled) order, the
        cursor/epoch position, and the reshuffle RNG's bit-generator state —
        everything needed to resume the exact batch stream."""
        return {
            "order": self.order.copy(),
            "cursor": self._cursor,
            "epoch": self._epoch,
            "rng": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: Dict) -> None:
        order = np.asarray(state["order"])
        if order.shape != self.order.shape:
            raise ValueError(
                f"loader state mismatch: checkpoint order has "
                f"{order.shape[0]} samples, this loader has {self.order.shape[0]}"
            )
        self.order = order.copy()
        self._cursor = int(state["cursor"])
        self._epoch = int(state["epoch"])
        self.rng.bit_generator.state = state["rng"]

    @classmethod
    def for_workers(
        cls,
        dataset: Dataset,
        partition: Partition,
        batch_size: int,
        reshuffle: bool = True,
        seed: int = 0,
    ):
        """One loader per worker, each with an independent RNG stream."""
        from repro.utils.rng import spawn_rngs

        rngs = spawn_rngs(seed, partition.n_workers)
        return [
            cls(dataset, partition[n], batch_size, reshuffle=reshuffle, rng=rngs[n])
            for n in range(partition.n_workers)
        ]
