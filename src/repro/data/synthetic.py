"""Procedural dataset generators.

Each generator returns ``(train, test)`` :class:`~repro.data.dataset.Dataset`
pairs. Image datasets draw one random template per class and emit noisy,
randomly shifted instances of it, so (a) a CNN can genuinely learn the task,
(b) difficulty scales with the class count and noise level, and (c) label
distributions can be skewed for the non-IID experiments. The token corpus is
a peaky Markov chain, so a causal LM can reduce perplexity well below the
uniform baseline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset, SequenceDataset
from repro.utils.registry import Registry
from repro.utils.rng import RngLike, as_rng

DATASETS: Registry = Registry("dataset")


def build_dataset(name: str, **kwargs):
    """Instantiate a registered dataset pair by name (e.g. ``"cifar10_like"``)."""
    return DATASETS.create(name, **kwargs)


@DATASETS.register("blobs")
def make_blobs(
    n_train: int = 512,
    n_test: int = 128,
    n_features: int = 32,
    n_classes: int = 10,
    noise: float = 1.0,
    rng: RngLike = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Gaussian blobs — the fast vector-classification task used in tests."""
    rng = as_rng(rng)
    centers = rng.normal(0.0, 2.0, size=(n_classes, n_features))

    def sample(n):
        y = rng.integers(0, n_classes, n)
        x = centers[y] + rng.normal(0.0, noise, size=(n, n_features))
        return ArrayDataset(x, y)

    return sample(n_train), sample(n_test)


def _image_dataset(
    n_train: int,
    n_test: int,
    n_classes: int,
    image_size: int,
    channels: int,
    noise: float,
    rng: RngLike,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Shared class-template image generator."""
    rng = as_rng(rng)
    templates = rng.normal(0.0, 1.0, size=(n_classes, channels, image_size, image_size))

    def sample(n):
        y = rng.integers(0, n_classes, n)
        x = templates[y].copy()
        # Random circular shifts give intra-class spatial variability that a
        # conv net absorbs but a linear probe does not.
        shifts = rng.integers(-2, 3, size=(n, 2))
        for i in range(n):
            x[i] = np.roll(x[i], shifts[i], axis=(1, 2))
        x += rng.normal(0.0, noise, size=x.shape)
        return ArrayDataset(x, y)

    return sample(n_train), sample(n_test)


@DATASETS.register("cifar10_like")
def cifar10_like(
    n_train: int = 2000,
    n_test: int = 500,
    image_size: int = 16,
    noise: float = 0.6,
    rng: RngLike = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """10-class image task — the CIFAR10 stand-in (paper: ResNet101)."""
    return _image_dataset(n_train, n_test, 10, image_size, 3, noise, rng)


@DATASETS.register("cifar100_like")
def cifar100_like(
    n_train: int = 3000,
    n_test: int = 600,
    n_classes: int = 100,
    image_size: int = 16,
    noise: float = 0.5,
    rng: RngLike = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Many-label image task — the CIFAR100 stand-in (paper: VGG11)."""
    return _image_dataset(n_train, n_test, n_classes, image_size, 3, noise, rng)


@DATASETS.register("imagenet_like")
def imagenet_like(
    n_train: int = 4000,
    n_test: int = 800,
    n_classes: int = 20,
    image_size: int = 16,
    noise: float = 0.7,
    rng: RngLike = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Larger-volume image task — the ImageNet-1K stand-in (paper: AlexNet).

    Relative to the CIFAR-like sets this has more samples per epoch, which
    is what makes FedAvg's per-epoch sync schedule degenerate in Table I.
    """
    return _image_dataset(n_train, n_test, n_classes, image_size, 3, noise, rng)


@DATASETS.register("wikitext_like")
def wikitext_like(
    n_train_tokens: int = 40_000,
    n_test_tokens: int = 8_000,
    vocab_size: int = 64,
    bptt: int = 16,
    concentration: float = 0.08,
    rng: RngLike = None,
) -> Tuple[SequenceDataset, SequenceDataset]:
    """Markov token corpus — the WikiText-103 stand-in (paper: Transformer).

    Transition rows are Dirichlet draws with small ``concentration``, giving
    a peaky next-token distribution: the corpus entropy sits well below
    ``log(vocab)`` so perplexity has real headroom to fall during training.
    """
    rng = as_rng(rng)
    if vocab_size < 2:
        raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
    trans = rng.dirichlet(np.full(vocab_size, concentration), size=vocab_size)

    def gen(n):
        toks = np.empty(n, dtype=np.int64)
        toks[0] = rng.integers(0, vocab_size)
        # Vectorized ancestral sampling via inverse-CDF lookups per step is
        # still sequential in the chain; keep the loop but precompute CDFs.
        cdf = np.cumsum(trans, axis=1)
        u = rng.random(n)
        for i in range(1, n):
            toks[i] = np.searchsorted(cdf[toks[i - 1]], u[i])
        return SequenceDataset(toks, bptt=bptt)

    return gen(n_train_tokens), gen(n_test_tokens)
