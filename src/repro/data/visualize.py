"""Text rendering of partition layouts (the paper's Fig. 7).

``render_partition`` draws each worker's chunk traversal order, making the
difference between DefDP (one chunk per worker) and SelDP (full rotation)
visible at a glance::

    DefDP                       SelDP
    worker0: DP0                worker0: DP0 -> DP1 -> DP2 -> DP3
    worker1: DP1                worker1: DP1 -> DP2 -> DP3 -> DP0
    ...                         ...
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.partition import Partition


def render_partition(partition: Partition) -> str:
    """Render a partition's chunk layout as text (Fig. 7 style)."""
    lines: List[str] = [f"scheme: {partition.scheme}"]
    if partition.chunk_order is None:
        for n, order in enumerate(partition.orders):
            lines.append(
                f"worker{n}: {len(order)} samples (no chunk structure)"
            )
        return "\n".join(lines)
    for n, chunks in enumerate(partition.chunk_order):
        path = " -> ".join(f"DP{c}" for c in chunks)
        lines.append(f"worker{n}: {path}")
    return "\n".join(lines)


def label_histogram(labels: np.ndarray, partition: Partition) -> str:
    """Per-worker label counts — visualizes non-IID skew.

    One row per worker, one column per label, counts of that worker's
    samples. On an IID partition every row looks alike; on a label-skew
    partition rows are nearly one-hot.
    """
    labels = np.asarray(labels)
    uniq = np.unique(labels)
    header = "worker | " + " ".join(f"L{int(u):<4}" for u in uniq)
    lines = [header, "-" * len(header)]
    for n, order in enumerate(partition.orders):
        counts = [(labels[order] == u).sum() for u in uniq]
        lines.append(f"{n:>6} | " + " ".join(f"{c:<5}" for c in counts))
    return "\n".join(lines)
