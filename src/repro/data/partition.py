"""Data-partitioning schemes (paper §III-D).

*DefDP* splits the training set into N disjoint chunks, one per worker —
the BSP default. *SelDP* gives every worker the full dataset as a circular
queue of the same N chunks, rotated so worker ``n`` starts at chunk ``n``:
workers processing in lock-step always cover N distinct chunks per
synchronized step, yet each worker eventually sees all the data when it
trains locally. The label-skew partitioner produces the paper's non-IID
splits (1 label per worker for CIFAR10, 10 for CIFAR100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import RngLike, as_rng


@dataclass
class Partition:
    """Per-worker sample index orders.

    ``orders[n]`` is the sequence of dataset indices worker ``n`` walks
    (wrapping at the end = one epoch of *that worker's* view).
    ``chunk_order[n]``, when present, lists the chunk ids worker ``n``
    traverses (Fig. 7's DP labels); label-skew partitions have no chunk
    structure and leave it ``None``.
    """

    orders: List[np.ndarray]
    scheme: str
    chunk_order: "List[List[int]] | None" = None

    @property
    def n_workers(self) -> int:
        return len(self.orders)

    def __getitem__(self, worker: int) -> np.ndarray:
        return self.orders[worker]

    def epoch_length(self, worker: int, batch_size: int) -> int:
        """Iterations for worker ``worker`` to make one pass over its order."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return max(1, len(self.orders[worker]) // batch_size)


def _chunks(n_samples: int, n_workers: int, rng) -> List[np.ndarray]:
    """Shuffle sample indices once and split into N near-equal chunks."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_samples < n_workers:
        raise ValueError(
            f"cannot split {n_samples} samples across {n_workers} workers"
        )
    perm = rng.permutation(n_samples)
    return np.array_split(perm, n_workers)


def default_partition(
    n_samples: int, n_workers: int, rng: RngLike = None
) -> Partition:
    """DefDP: worker ``n`` owns only chunk ``n`` (Fig. 7a)."""
    chunks = _chunks(n_samples, n_workers, as_rng(rng))
    return Partition(
        orders=[c.copy() for c in chunks],
        scheme="defdp",
        chunk_order=[[n] for n in range(n_workers)],
    )


def selsync_partition(
    n_samples: int, n_workers: int, rng: RngLike = None
) -> Partition:
    """SelDP: worker ``n`` walks all chunks in rotated order (Fig. 7b).

    Worker 0 sees chunks ``[0, 1, ..., N-1]``, worker 1 sees
    ``[1, 2, ..., 0]``, etc. The rotation is the entire one-time overhead
    the paper measures in Fig. 8b.
    """
    chunks = _chunks(n_samples, n_workers, as_rng(rng))
    orders = [
        np.concatenate(chunks[n:] + chunks[:n]) for n in range(n_workers)
    ]
    chunk_order = [
        [(n + k) % n_workers for k in range(n_workers)]
        for n in range(n_workers)
    ]
    return Partition(orders=orders, scheme="seldp", chunk_order=chunk_order)


def label_skew_partition(
    labels: np.ndarray,
    n_workers: int,
    labels_per_worker: int,
    rng: RngLike = None,
) -> Partition:
    """Non-IID split: each worker receives samples of only ``labels_per_worker``
    labels (paper §IV-A: 1 label/worker for CIFAR10, 10 for CIFAR100).

    Labels are dealt to workers round-robin; when
    ``n_workers * labels_per_worker`` exceeds the label count, label
    assignments repeat and the owning workers split that label's samples.
    """
    rng = as_rng(rng)
    labels = np.asarray(labels)
    uniq = np.unique(labels)
    if labels_per_worker < 1:
        raise ValueError(f"labels_per_worker must be >= 1, got {labels_per_worker}")
    if len(uniq) < 1:
        raise ValueError("dataset has no labels")

    # Deal label ids to workers in a shuffled round-robin.
    label_cycle = np.tile(uniq, int(np.ceil(n_workers * labels_per_worker / len(uniq))))
    label_cycle = label_cycle[: n_workers * labels_per_worker]
    rng.shuffle(label_cycle)
    assignment = label_cycle.reshape(n_workers, labels_per_worker)

    # Workers sharing a label split its samples evenly.
    owners: dict = {}
    for w in range(n_workers):
        for lab in assignment[w]:
            owners.setdefault(int(lab), []).append(w)

    per_worker: List[List[np.ndarray]] = [[] for _ in range(n_workers)]
    for lab, ws in owners.items():
        idx = np.flatnonzero(labels == lab)
        rng.shuffle(idx)
        for part, w in zip(np.array_split(idx, len(ws)), ws):
            per_worker[w].append(part)

    orders = []
    for w in range(n_workers):
        if per_worker[w]:
            order = np.concatenate(per_worker[w])
        else:
            # A worker can end up with an empty shard when samples of its
            # labels were exhausted by co-owners; give it a random sample so
            # training does not divide by zero (mirrors FL clients with
            # tiny local datasets).
            order = rng.integers(0, len(labels), size=max(1, len(labels) // (4 * n_workers)))
        rng.shuffle(order)
        orders.append(order)
    return Partition(orders=orders, scheme="label_skew")
