"""Stateless numerical kernels shared by the layers.

Everything here is fully vectorized numpy (no Python loops over samples),
per the HPC guide: convolutions use im2col/col2im so the inner work is one
big GEMM, and softmax/log-softmax are computed in the numerically stable
shifted form.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


# -- activations -----------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    return grad_out * (x > 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh approximation of GELU (matches the common transformer variant)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def gelu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    c = np.sqrt(2.0 / np.pi)
    u = c * (x + 0.044715 * x**3)
    t = np.tanh(u)
    du = c * (1.0 + 3 * 0.044715 * x**2)
    return grad_out * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * du)


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# -- softmax family ----------------------------------------------------------

def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def softmax_backward(
    probs: np.ndarray, grad_out: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Backward through softmax given its output ``probs``."""
    dot = np.sum(grad_out * probs, axis=axis, keepdims=True)
    return probs * (grad_out - dot)


# -- im2col convolution plumbing ------------------------------------------------

def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed to {out} "
            f"(size={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out: np.ndarray = None,
) -> Tuple[np.ndarray, int, int]:
    """Unfold NCHW input into a (N*OH*OW, C*kh*kw) patch matrix.

    Returns the patch matrix together with the output spatial dims. Built
    with stride tricks so no data is copied until the final materialization.
    ``out`` (optional) receives the patches in place — callers that unfold
    the same shape every step pass a preallocated workspace to keep the
    largest allocation of the step out of the hot loop.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    sn, sc, sh, sw = x.strides
    shape = (n, c, oh, ow, kh, kw)
    strides = (sn, sc, sh * stride, sw * stride, sh, sw)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # (N, OH, OW, C, kh, kw) -> rows are output positions, cols are patch taps
    view = patches.transpose(0, 2, 3, 1, 4, 5)
    if out is not None:
        if out.shape != (n * oh * ow, c * kh * kw):
            raise ValueError(
                f"im2col workspace has shape {out.shape}, "
                f"need {(n * oh * ow, c * kh * kw)}"
            )
        np.copyto(out.reshape(n, oh, ow, c, kh, kw), view)
        return out, oh, ow
    cols = view.reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold a patch-gradient matrix back into an NCHW gradient (adjoint of im2col)."""
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # Accumulate each kernel tap's contribution with one vectorized add.
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if pad > 0:
        return out[:, :, pad:-pad, pad:-pad]
    return out


# -- misc ------------------------------------------------------------------

def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= n_classes:
        raise ValueError(
            f"labels out of range [0, {n_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.size, n_classes), dtype=np.float64)
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out.reshape(*labels.shape, n_classes)
