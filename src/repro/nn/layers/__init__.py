"""Neural-network layers with explicit forward/backward passes."""

from repro.nn.layers.linear import Linear
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.norm import BatchNorm2d, LayerNorm
from repro.nn.layers.activation import ReLU, GELU, Tanh
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.attention import MultiHeadSelfAttention
from repro.nn.layers.container import Sequential, Residual
from repro.nn.layers.reshape import Flatten

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Tanh",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Embedding",
    "MultiHeadSelfAttention",
    "Sequential",
    "Residual",
    "Flatten",
]
