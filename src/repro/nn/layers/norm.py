"""Normalization layers: BatchNorm2d and LayerNorm."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class BatchNorm2d(Module):
    """Batch normalization over NCHW activations.

    Maintains running mean/var for eval mode. The running statistics are
    deliberately *not* Parameters — they carry no gradient and are excluded
    from aggregation, matching how distributed frameworks treat BN buffers.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features), "weight")
        self.bias = Parameter(init.zeros(num_features), "bias")
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean
            self.running_var = (1 - m) * self.running_var + m * var
        else:
            mean, var = self.running_mean, self.running_var
        mean4 = mean[None, :, None, None]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        inv4 = inv_std[None, :, None, None]
        xhat = (x - mean4) * inv4
        if self.training:
            self._cache = (xhat, inv_std, x.shape)
        return self.weight.data[None, :, None, None] * xhat + self.bias.data[
            None, :, None, None
        ]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BatchNorm2d.backward called without a training forward")
        xhat, inv_std, shape = self._cache
        n, _, h, w = shape
        m = n * h * w  # samples per channel
        self.weight.accumulate_grad((grad_out * xhat).sum(axis=(0, 2, 3)))
        self.bias.accumulate_grad(grad_out.sum(axis=(0, 2, 3)))
        g = grad_out * self.weight.data[None, :, None, None]
        # Standard batchnorm backward in normalized coordinates.
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * xhat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (inv_std[None, :, None, None] / m) * (m * g - sum_g - xhat * sum_gx)
        return dx


class LayerNorm(Module):
    """Layer normalization over the trailing feature dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones(dim), "weight")
        self.bias = Parameter(init.zeros(dim), "bias")
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.dim:
            raise ValueError(f"LayerNorm expected last dim {self.dim}, got {x.shape}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv_std
        self._cache = (xhat, inv_std)
        return self.weight.data * xhat + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        xhat, inv_std = self._cache
        d = self.dim
        axes = tuple(range(grad_out.ndim - 1))
        self.weight.accumulate_grad((grad_out * xhat).sum(axis=axes))
        self.bias.accumulate_grad(grad_out.sum(axis=axes))
        g = grad_out * self.weight.data
        sum_g = g.sum(axis=-1, keepdims=True)
        sum_gx = (g * xhat).sum(axis=-1, keepdims=True)
        return (inv_std / d) * (d * g - sum_g - xhat * sum_gx)
