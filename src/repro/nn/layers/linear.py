"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng


class Linear(Module):
    """Affine map ``y = x @ W.T + b``.

    Accepts inputs of shape ``(..., in_features)``; leading dimensions are
    treated as batch dims (the transformer feeds ``(T, B, D)`` activations).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), rng=rng), "weight"
        )
        self.bias = (
            Parameter(init.zeros(out_features), "bias") if bias else None
        )
        self._x: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        self._x = x
        y = x @ self.weight.data.T
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x2 = self._x.reshape(-1, self.in_features)
        g2 = grad_out.reshape(-1, self.out_features)
        self.weight.accumulate_grad(g2.T @ x2)
        if self.bias is not None:
            self.bias.accumulate_grad(g2.sum(axis=0))
        return grad_out @ self.weight.data
