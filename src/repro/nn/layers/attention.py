"""Multi-head self-attention (the Transformer's core block)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.linear import Linear
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over ``(B, T, D)`` inputs.

    Supports an optional causal mask for autoregressive language modelling
    (the paper's Transformer on WikiText-103 is a causal LM). All four
    projections are :class:`Linear` layers so their parameters participate
    in aggregation like any other weight.
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        causal: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.causal = causal
        rq, rk, rv, ro = spawn_rngs(rng, 4)
        self.q_proj = Linear(dim, dim, rng=rq)
        self.k_proj = Linear(dim, dim, rng=rk)
        self.v_proj = Linear(dim, dim, rng=rv)
        self.out_proj = Linear(dim, dim, rng=ro)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, t, dh = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.dim:
            raise ValueError(
                f"attention expected (B, T, {self.dim}), got {x.shape}"
            )
        b, t, _ = x.shape
        q = self._split_heads(self.q_proj.forward(x))
        k = self._split_heads(self.k_proj.forward(x))
        v = self._split_heads(self.v_proj.forward(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, T, T)
        if self.causal:
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            scores = np.where(mask, -1e30, scores)
        probs = F.softmax(scores, axis=-1)
        attn = probs @ v  # (B, H, T, dh)
        out = self.out_proj.forward(self._merge_heads(attn))
        self._cache = (q, k, v, probs, scale)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        q, k, v, probs, scale = self._cache
        d_merged = self.out_proj.backward(grad_out)
        b, t, _ = d_merged.shape
        d_attn = self._split_heads(d_merged)  # (B, H, T, dh)
        d_probs = d_attn @ v.transpose(0, 1, 3, 2)
        d_v = probs.transpose(0, 1, 3, 2) @ d_attn
        d_scores = F.softmax_backward(probs, d_probs, axis=-1)
        # Masked positions have probability exactly 0, so softmax_backward
        # already routes zero gradient through them.
        d_q = (d_scores @ k) * scale
        d_k = (d_scores.transpose(0, 1, 3, 2) @ q) * scale
        dx = self.q_proj.backward(self._merge_heads(d_q))
        dx = dx + self.k_proj.backward(self._merge_heads(d_k))
        dx = dx + self.v_proj.backward(self._merge_heads(d_v))
        return dx
