"""Composite layers: Sequential chains and residual (skip) blocks."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run sub-modules in order; backward replays them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)
        for i, layer in enumerate(self.layers):
            self.register_module(f"layer{i}", layer)

    def append(self, layer: Module) -> "Sequential":
        self.register_module(f"layer{len(self.layers)}", layer)
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out


class Residual(Module):
    """Skip connection ``y = f(x) + proj(x)``.

    ``proj`` defaults to the identity; supply a 1×1 convolution (or any
    module) when the body changes shape. This is the structural ingredient
    that distinguishes the ResNet family from plain conv stacks, which the
    paper leans on to explain ResNet101's robustness vs VGG11 (§IV-C).
    """

    def __init__(self, body: Module, proj: Module = None):
        super().__init__()
        self.body = body
        self.proj = proj
        if proj is not None:
            self.register_module("proj", proj)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body.forward(x)
        skip = x if self.proj is None else self.proj.forward(x)
        if out.shape != skip.shape:
            raise ValueError(
                f"residual branch shapes differ: body {out.shape} vs "
                f"skip {skip.shape}; supply a projection module"
            )
        return out + skip

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        dx_body = self.body.backward(grad_out)
        dx_skip = grad_out if self.proj is None else self.proj.backward(grad_out)
        return dx_body + dx_skip
