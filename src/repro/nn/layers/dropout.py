"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng


class Dropout(Module):
    """Inverted dropout: active only in training mode, identity in eval.

    Scaling by ``1/(1-p)`` at train time keeps activation magnitudes constant
    so evaluation requires no rescaling.
    """

    def __init__(self, p: float = 0.5, rng: RngLike = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = as_rng(rng)
        self._mask: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = np.ones(0)  # sentinel: identity backward
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask.size == 0:
            return grad_out
        return grad_out * self._mask
