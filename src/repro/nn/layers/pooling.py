"""Spatial pooling layers over NCHW activations."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with square kernel; stride defaults to kernel size."""

    def __init__(self, kernel_size: int, stride: int = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        # Pool each channel independently: fold channels into the batch dim
        # so im2col produces per-channel patches.
        cols, oh, ow = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = (argmax, cols.shape, (n, c, h, w), oh, ow)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        argmax, cols_shape, x_shape, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        dcols = np.zeros(cols_shape, dtype=grad_out.dtype)
        dcols[np.arange(cols_shape[0]), argmax] = grad_out.ravel()
        dx = col2im(dcols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with square kernel; stride defaults to kernel size."""

    def __init__(self, kernel_size: int, stride: int = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        cols, oh, ow = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        self._cache = ((n, c, h, w), cols.shape, oh, ow)
        return cols.mean(axis=1).reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_shape, cols_shape, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        dcols = np.repeat(
            grad_out.reshape(-1, 1) / (k * k), cols_shape[1], axis=1
        )
        dx = col2im(dcols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Collapse each channel's spatial map to its mean: (N,C,H,W) -> (N,C)."""

    def __init__(self):
        super().__init__()
        self._hw = (0, 0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._hw = x.shape[2:]
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        h, w = self._hw
        g = grad_out[:, :, None, None] / (h * w)
        return np.broadcast_to(g, (*grad_out.shape, h, w)).copy()
