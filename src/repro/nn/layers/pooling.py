"""Spatial pooling layers over NCHW activations."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.utils import fastpath


class _PoolWorkspace:
    """Reusable buffers for the non-overlapping MaxPool fast path."""

    __slots__ = ("x_shape", "oh", "ow", "windows", "win6", "arg", "out",
                 "base", "wbase", "scratch", "dx", "m01", "m23",
                 "t01", "t23", "sel")

    def __init__(self, x_shape, k):
        n, c, h, w = x_shape
        self.x_shape = x_shape
        self.oh, self.ow = h // k, w // k
        quarter = (n, c, self.oh, self.ow)
        self.out = np.empty(quarter)
        if k == 2:
            # 2x2 windows skip the patch copy and argmax entirely: the max
            # is three elementwise maxima over strided views of the input,
            # and the winner index falls out of three comparisons.
            self.windows = self.win6 = self.arg = self.wbase = None
            self.m01 = np.empty(quarter)
            self.m23 = np.empty(quarter)
            self.t01 = np.empty(quarter, dtype=bool)
            self.t23 = np.empty(quarter, dtype=bool)
            self.sel = np.empty(quarter, dtype=bool)
        else:
            # ``windows`` and ``win6`` share memory: one is the
            # (k*k)-flattened view of the other.
            self.windows = np.empty((*quarter, k * k))
            self.win6 = self.windows.reshape(*quarter, k, k)
            self.arg = np.empty(quarter, dtype=np.intp)
            # Start of each window's row in flat ``windows`` — the forward
            # gather runs on the contiguous windows copy, so the input
            # itself is never flattened (it may be a strided view into a
            # conv workspace).
            self.wbase = np.arange(n * c * self.oh * self.ow, dtype=np.intp)
            self.wbase *= k * k
            self.m01 = self.m23 = self.t01 = self.t23 = self.sel = None
        # Flat index of each window's top-left corner in the input array;
        # backward scatters straight into ``dx`` through these (the window
        # interiors are disjoint, so no index appears twice).
        grid = (
            (np.arange(n)[:, None, None, None] * c
             + np.arange(c)[None, :, None, None]) * h
            + np.arange(self.oh)[None, None, :, None] * k
        ) * w + np.arange(self.ow)[None, None, None, :] * k
        self.base = np.ascontiguousarray(grid, dtype=np.intp)
        self.scratch = np.empty((2, n, c, self.oh, self.ow), dtype=np.intp)
        self.dx = np.empty(x_shape)


class MaxPool2d(Module):
    """Max pooling with square kernel; stride defaults to kernel size."""

    def __init__(self, kernel_size: int, stride: int = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self._cache = None
        self._ws = None

    def _fast_ws(self, x_shape) -> _PoolWorkspace:
        ws = self._ws
        if ws is None or ws.x_shape != x_shape:
            ws = _PoolWorkspace(x_shape, self.kernel_size)
            self._ws = ws
        return ws

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        if s == k and h % k == 0 and w % k == 0 and fastpath.is_enabled():
            # Non-overlapping pooling (the common s == k case): a reshape
            # groups each window's taps on the last axis — no im2col patch
            # matrix, no col2im scatter in backward. Tap order within a
            # window is (i*k + j), identical to the im2col column order, so
            # tie-breaking (first max wins) matches the general path.
            ws = self._fast_ws(x.shape)
            oh, ow = ws.oh, ws.ow
            row, idx = ws.scratch
            v = x.reshape(n, c, oh, k, ow, k)
            if k == 2:
                # Views of the four window taps — no patch copy. The winner
                # index comes from strict comparisons, so tie-breaking
                # (first tap wins) matches argmax on the general path.
                a, b = v[:, :, :, 0, :, 0], v[:, :, :, 0, :, 1]
                cc, d = v[:, :, :, 1, :, 0], v[:, :, :, 1, :, 1]
                np.greater(b, a, out=ws.t01)
                np.greater(d, cc, out=ws.t23)
                np.maximum(a, b, out=ws.m01)
                np.maximum(cc, d, out=ws.m23)
                np.greater(ws.m23, ws.m01, out=ws.sel)
                np.maximum(ws.m01, ws.m23, out=ws.out)
                # arg (window-order 0..3) assembled into ``idx``.
                np.add(ws.t23, 2, out=row, casting="unsafe")
                np.copyto(idx, ws.t01, casting="unsafe")
                np.copyto(idx, row, where=ws.sel)
            else:
                np.copyto(
                    ws.win6,
                    v.transpose(0, 1, 2, 4, 3, 5),
                )
                ws.windows.argmax(axis=-1, out=ws.arg)
                # Gather the maxima from the contiguous windows copy (``x``
                # may be a non-contiguous conv-workspace view).
                rf = row.reshape(-1)
                np.add(ws.arg.reshape(-1), ws.wbase, out=rf)
                ws.out.reshape(-1)[...] = ws.windows.reshape(-1)[rf]
                np.copyto(idx, ws.arg)
            # Decode argmax (i*k + j) into flat *input* indices for the
            # backward scatter.
            np.floor_divide(idx, k, out=row)
            np.remainder(idx, k, out=idx)
            row *= w
            idx += row
            idx += ws.base
            self._cache = ("fast", ws, (n, c, h, w), oh, ow)
            return ws.out
        # General (overlapping / ragged) pooling: fold channels into the
        # batch dim so im2col produces per-channel patches.
        cols, oh, ow = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = ("im2col", argmax, (n, c, h, w), oh, ow, cols.shape)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        kind = self._cache[0]
        k, s = self.kernel_size, self.stride
        if kind == "fast":
            _, ws, x_shape, oh, ow = self._cache
            # Scatter the upstream gradient straight into dx through the flat
            # indices decoded in forward — cheaper than materializing a
            # zeroed (k*k)-wide window tensor and folding it back.
            idx = ws.scratch[1]
            ws.dx.fill(0.0)
            ws.dx.reshape(-1)[idx.reshape(-1)] = np.ascontiguousarray(
                grad_out
            ).reshape(-1)
            return ws.dx
        _, argmax, x_shape, oh, ow, cols_shape = self._cache
        n, c, h, w = x_shape
        dcols = np.zeros(cols_shape, dtype=grad_out.dtype)
        dcols[np.arange(cols_shape[0]), argmax] = grad_out.ravel()
        dx = col2im(dcols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with square kernel; stride defaults to kernel size."""

    def __init__(self, kernel_size: int, stride: int = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        cols, oh, ow = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        self._cache = ((n, c, h, w), cols.shape, oh, ow)
        return cols.mean(axis=1).reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_shape, cols_shape, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        dcols = np.repeat(
            grad_out.reshape(-1, 1) / (k * k), cols_shape[1], axis=1
        )
        dx = col2im(dcols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Collapse each channel's spatial map to its mean: (N,C,H,W) -> (N,C)."""

    def __init__(self):
        super().__init__()
        self._hw = (0, 0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._hw = x.shape[2:]
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        h, w = self._hw
        g = grad_out[:, :, None, None] / (h * w)
        return np.broadcast_to(g, (*grad_out.shape, h, w)).copy()
