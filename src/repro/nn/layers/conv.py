"""2-D convolution: shift-GEMM fast path with an im2col fallback.

Stride-1 convolutions (every conv in SmallVGG and all non-downsampling convs
in SmallResNet) avoid materializing the k²-times-duplicated im2col patch
matrix entirely. The input is written once into a zero-padded plane buffer
and each kernel tap (i, j) becomes one batched GEMM against a *view* of that
plane shifted by ``i*Wp + j`` flat elements::

    out[:, o, y, x] = Σ_{i,j,c} W[o, c, i, j] · xp[:, c, y+i, x+j]
                    = Σ_{i,j}  (W[:, :, i, j] @ xp_flat[:, :, off:off+span])

The accumulator rows have width ``Wp`` (padded plane), so the valid (OH, OW)
output is a strided view into it; the few garbage columns between rows are
computed and discarded. The backward pass runs the same taps in reverse —
the upstream gradient is embedded into a plane whose inter-row garbage stays
zero, so scatter (col2im) disappears as well.

All large intermediates (padded input plane, accumulators, gradient plane)
live in a per-layer workspace that is reused across steps while shapes
repeat, so the steady-state hot loop performs no large allocations. The
workspace is rebuilt when the input shape changes (e.g. train/eval batch
sizes alternating).

Strided convolutions fall back to im2col/col2im, also with a reusable patch
workspace; the patch matrix reference is dropped in ``backward`` so the
largest allocation of the step is not retained between iterations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.nn import init
from repro.nn.functional import col2im, conv_out_size, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils import fastpath
from repro.utils.rng import RngLike, as_rng



class _ShiftWorkspace:
    """Reusable buffers for the shift-GEMM path, tied to one input shape.

    Planes are stored channel-major — ``xf`` is ``(C, N*P)`` with ``P`` the
    padded plane size — so every kernel tap is a *single* ``(O, C) @ (C, L)``
    GEMM spanning the whole batch, instead of N small batched GEMMs. The
    shifted slice for a tap runs off the end of each sample's plane into the
    next sample's zero top-padding; those products land in garbage output
    columns that the strided output view never reads. ``off + span <= P``
    holds exactly (the largest shift ends at the plane boundary), so no tap
    reads past the final sample.
    """

    __slots__ = (
        "x_shape", "stem", "c", "n", "hp", "wp", "oh", "ow",
        "plane", "span", "length",
        "xf", "x_int", "gf", "gv", "acc", "out_view", "tmp_out",
        "w0", "wr", "dwr", "dxf", "dx_view", "tmp_dx", "dw",
    )

    def __init__(self, x_shape, out_channels, kernel_size, pad, stem=False):
        n, c, h, w = x_shape
        k = kernel_size
        self.x_shape = x_shape
        self.stem = stem
        self.c = c
        self.n = n
        self.hp, self.wp = h + 2 * pad, w + 2 * pad
        # conv_out_size validates that the kernel fits (raises otherwise).
        self.oh = conv_out_size(h, k, 1, pad)
        self.ow = conv_out_size(w, k, 1, pad)
        self.plane = self.hp * self.wp
        self.span = (self.oh - 1) * self.wp + self.ow
        # GEMM column count: the last sample's valid span plus all earlier
        # samples' full planes.
        self.length = (n - 1) * self.plane + self.span
        # Plane rows, plus one constant-ones row at the bottom that folds
        # the bias add into the first GEMM (its weight column is the bias).
        # The stem layout additionally unrolls the k column-taps into k
        # pre-shifted row blocks, so one GEMM covers a whole kernel row.
        rows = k * c if stem else c
        self.xf = np.zeros((rows + 1, n * self.plane))
        self.xf[rows] = 1.0
        self.gf = np.zeros((out_channels, self.length))
        self.acc = np.empty((out_channels, self.length))
        self.tmp_out = np.empty((out_channels, self.length))
        self.w0 = np.empty((out_channels, rows + 1))
        # Zero-initialized planes: the padding border of ``xf`` and the
        # garbage columns of the gradient plane are written once above and
        # never again — each step only overwrites the valid interior.
        self.x_int = self.xf[:c].reshape(c, n, self.hp, self.wp)[
            :, :, pad : pad + h, pad : pad + w
        ]
        self.out_view = self.plane_view(self.acc)
        self.gv = self.plane_view(self.gf)
        if stem:
            # Row-grouped weights [i][o, j*c + cc] = W[o, cc, i, j] and the
            # matching (k, O, k*c) weight-gradient accumulator.
            self.wr = np.empty((k, out_channels, k * c))
            self.dwr = np.empty((k, out_channels, k * c))
            self.dxf = self.dx_view = self.tmp_dx = self.dw = None
        else:
            self.wr = self.dwr = None
            self.dxf = np.empty((c, n * self.plane))
            self.tmp_dx = np.empty((c, self.length))
            self.dw = np.empty((out_channels, c, k, k))
            self.dx_view = self.dxf.reshape(c, n, self.hp, self.wp)[
                :, :, pad : pad + h, pad : pad + w
            ].transpose(1, 0, 2, 3)

    def plane_view(self, flat: np.ndarray):
        """(N, C, OH, OW) strided window into a channel-major plane buffer."""
        channels = flat.shape[0]
        sc, se = flat.strides
        return as_strided(
            flat,
            shape=(self.n, channels, self.oh, self.ow),
            strides=(self.plane * se, sc, self.wp * se, se),
        )


class Conv2d(Module):
    """NCHW convolution.

    Parameters follow the usual convention: ``weight`` is
    ``(out_channels, in_channels, kh, kw)``. Stride-1 instances run the
    shift-GEMM kernel described in the module docstring; strided instances
    unfold with :func:`im2col` into a reusable patch workspace and perform a
    single matrix multiply, keeping the hot loop inside BLAS either way.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng=rng
            ),
            "weight",
        )
        self.bias = (
            Parameter(init.zeros(out_channels), "bias") if bias else None
        )
        # Fallback (strided) path state: live patch matrix + its workspace.
        self._cols: Optional[np.ndarray] = None
        self._cols_ws: Optional[np.ndarray] = None
        self._x_shape = (0, 0, 0, 0)
        self._out_hw = (0, 0)
        # Fast (stride-1) path workspace, and which path forward last took
        # (backward must mirror it even if the global flag flips in between).
        self._shift: Optional[_ShiftWorkspace] = None
        self._last_path = "im2col"
        # Models set this on their input layer: the gradient w.r.t. the data
        # is never consumed there, so backward can skip the dx GEMMs.
        self.skip_input_grad = False

    # -- shift-GEMM path (stride == 1) -------------------------------------
    def _shift_ws(self, x_shape, stem: bool) -> _ShiftWorkspace:
        ws = self._shift
        if ws is None or ws.x_shape != x_shape or ws.stem != stem:
            ws = _ShiftWorkspace(
                x_shape, self.out_channels, self.kernel_size, self.padding,
                stem=stem,
            )
            self._shift = ws
        return ws

    def _forward_shift(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        # Input layers with few channels get the row-grouped layout: the k
        # column-taps are pre-shifted into adjacent row blocks so a whole
        # kernel row is one GEMM with a k-times-wider inner dimension — the
        # (O, C) @ (C, L) taps are too skinny for BLAS when C is tiny. Only
        # worthwhile when dx is skipped; the grouped dx scatter costs more
        # than it saves.
        stem = self.skip_input_grad and self.in_channels <= 4
        ws = self._shift_ws(x.shape, stem)
        np.copyto(ws.x_int, x.transpose(1, 0, 2, 3))
        W = self.weight.data
        L = ws.length
        xf = ws.xf
        if stem:
            c = ws.c
            rows = k * c
            cols = xf.shape[1]
            for j in range(1, k):
                xf[j * c : (j + 1) * c, : cols - j] = xf[:c, j:]
            wr4 = ws.wr.reshape(k, self.out_channels, k, c)
            wr4[...] = W.transpose(2, 0, 3, 1)
            if self.bias is not None:
                ws.w0[:, :rows] = ws.wr[0]
                ws.w0[:, rows] = self.bias.data
                np.matmul(ws.w0, xf[:, :L], out=ws.acc)
            else:
                np.matmul(ws.wr[0], xf[:rows, :L], out=ws.acc)
            for i in range(1, k):
                off = i * ws.wp
                np.matmul(ws.wr[i], xf[:rows, off : off + L], out=ws.tmp_out)
                ws.acc += ws.tmp_out
            return ws.out_view
        c = ws.c
        if self.bias is not None:
            # Tap (0, 0) runs over the ones row as an extra input channel
            # whose weight column is the bias — the bias add is free.
            ws.w0[:, :c] = W[:, :, 0, 0]
            ws.w0[:, c] = self.bias.data
            np.matmul(ws.w0, xf[:, :L], out=ws.acc)
        else:
            np.matmul(W[:, :, 0, 0], xf[:c, :L], out=ws.acc)
        for i in range(k):
            for j in range(k):
                if i == 0 and j == 0:
                    continue
                off = i * ws.wp + j
                np.matmul(W[:, :, i, j], xf[:c, off : off + L], out=ws.tmp_out)
                ws.acc += ws.tmp_out
        # Strided window into the accumulator — consumers read it without a
        # packing copy. Valid until this layer's next forward, which is
        # after every consumer of this step has read it.
        return ws.out_view

    def _backward_shift(self, grad_out: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        ws = self._shift
        ws.gv[...] = grad_out
        W = self.weight.data
        L = ws.length
        if ws.stem:
            c = ws.c
            rows = k * c
            # Row 0 runs over the ones row too (reusing ``w0`` as output):
            # its last column is gf's row sums — the bias gradient — so the
            # separate reduction over gf disappears.
            np.matmul(ws.gf, ws.xf[:, :L].T, out=ws.w0)
            ws.dwr[0] = ws.w0[:, :rows]
            for i in range(1, k):
                off = i * ws.wp
                np.matmul(ws.gf, ws.xf[:rows, off : off + L].T, out=ws.dwr[i])
            self.weight.accumulate_grad(
                ws.dwr.reshape(k, self.out_channels, k, c).transpose(1, 3, 0, 2)
            )
            if self.bias is not None:
                self.bias.accumulate_grad(ws.w0[:, rows])
            return None
        need_dx = not self.skip_input_grad
        if need_dx:
            # Only the tail [length, n*plane) needs zeroing: the first tap
            # (off == 0) overwrites [0, length) directly below.
            ws.dxf[:, ws.length :].fill(0.0)
        first = True
        for i in range(k):
            for j in range(k):
                off = i * ws.wp + j
                # One GEMM per tap; the column dimension spans the batch, so
                # dW's sample sum happens inside the product. Tap (0, 0)
                # additionally spans the ones row (output into ``w0``),
                # whose column is gf's row sums — the bias gradient. The
                # garbage columns of gf are zero, so those sums equal
                # grad_out.sum(axis=(0, 2, 3)) exactly.
                if i == 0 and j == 0:
                    np.matmul(ws.gf, ws.xf[:, :L].T, out=ws.w0)
                    ws.dw[:, :, 0, 0] = ws.w0[:, : ws.c]
                else:
                    xv = ws.xf[: ws.c, off : off + L]
                    np.matmul(ws.gf, xv.T, out=ws.dw[:, :, i, j])
                if not need_dx:
                    continue
                np.matmul(W[:, :, i, j].T, ws.gf, out=ws.tmp_dx)
                if first:
                    np.copyto(ws.dxf[:, :L], ws.tmp_dx)
                    first = False
                else:
                    ws.dxf[:, off : off + L] += ws.tmp_dx
        self.weight.accumulate_grad(ws.dw)
        if self.bias is not None:
            self.bias.accumulate_grad(ws.w0[:, ws.c])
        if not need_dx:
            return None
        # View into the workspace: valid until the next backward through this
        # layer, which is always after the caller has consumed it.
        return ws.dx_view

    # -- im2col fallback (stride > 1) --------------------------------------
    def _forward_im2col(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        oh = conv_out_size(x.shape[2], k, self.stride, self.padding)
        ow = conv_out_size(x.shape[3], k, self.stride, self.padding)
        shape = (n * oh * ow, self.in_channels * k * k)
        ws = self._cols_ws
        if ws is None or ws.shape != shape or not fastpath.is_enabled():
            ws = None  # let im2col allocate; we keep it for next time
        cols, oh, ow = im2col(x, k, k, self.stride, self.padding, out=ws)
        self._cols = self._cols_ws = cols
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        w2 = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w2.T  # (N*OH*OW, out_channels)
        if self.bias is not None:
            out = out + self.bias.data
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def _backward_im2col(self, grad_out: np.ndarray) -> np.ndarray:
        n = self._x_shape[0]
        oh, ow = self._out_hw
        k = self.kernel_size
        cols = self._cols
        if cols is None:
            raise RuntimeError("Conv2d.backward called before forward")
        g2 = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        self.weight.accumulate_grad(
            (g2.T @ cols).reshape(self.weight.data.shape)
        )
        if self.bias is not None:
            self.bias.accumulate_grad(g2.sum(axis=0))
        # Release the live reference: the workspace (``_cols_ws``) persists
        # for reuse, but nothing points at the patch matrix as "this step's
        # activation" between iterations anymore.
        self._cols = None
        # Honored only on the fast path so that fastpath(False) stays a
        # faithful baseline-cost emulation.
        if self.skip_input_grad and fastpath.is_enabled():
            return None
        w2 = self.weight.data.reshape(self.out_channels, -1)
        dcols = g2 @ w2
        return col2im(dcols, self._x_shape, k, k, self.stride, self.padding)

    # -- public interface ---------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        if self.stride == 1 and fastpath.is_enabled():
            if self._last_path != "shift":
                self._last_path = "shift"
            return self._forward_shift(x)
        if self._last_path != "im2col":
            self._last_path = "im2col"
        return self._forward_im2col(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._last_path == "shift":
            return self._backward_shift(grad_out)
        return self._backward_im2col(grad_out)
