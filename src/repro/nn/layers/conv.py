"""2-D convolution via im2col (one GEMM per forward/backward)."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng


class Conv2d(Module):
    """NCHW convolution.

    Parameters follow the usual convention: ``weight`` is
    ``(out_channels, in_channels, kh, kw)``. The forward pass unfolds the
    input with :func:`im2col` and performs a single matrix multiply, keeping
    the hot loop inside BLAS.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng=rng
            ),
            "weight",
        )
        self.bias = (
            Parameter(init.zeros(out_channels), "bias") if bias else None
        )
        self._cols: np.ndarray = np.zeros(0)
        self._x_shape = (0, 0, 0, 0)
        self._out_hw = (0, 0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        k = self.kernel_size
        cols, oh, ow = im2col(x, k, k, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        w2 = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w2.T  # (N*OH*OW, out_channels)
        if self.bias is not None:
            out = out + self.bias.data
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n = self._x_shape[0]
        oh, ow = self._out_hw
        k = self.kernel_size
        g2 = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        self.weight.accumulate_grad(
            (g2.T @ self._cols).reshape(self.weight.data.shape)
        )
        if self.bias is not None:
            self.bias.accumulate_grad(g2.sum(axis=0))
        w2 = self.weight.data.reshape(self.out_channels, -1)
        dcols = g2 @ w2
        return col2im(dcols, self._x_shape, k, k, self.stride, self.padding)
