"""Pointwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.utils import fastpath


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray = np.zeros(0)
        # (out, bool mask, dx) buffers reused while the input shape repeats.
        self._ws = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        if not fastpath.is_enabled():
            # Drop the workspace so a later backward can't pair a stale
            # fast-path output with this forward (flag toggles mid-run).
            self._ws = None
            return F.relu(x)
        ws = self._ws
        if ws is None or ws[0].shape != x.shape:
            ws = (
                np.empty(x.shape),
                np.empty(x.shape, dtype=bool),
                np.empty(x.shape),
            )
            self._ws = ws
        np.maximum(x, 0.0, out=ws[0])
        return ws[0]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        ws = self._ws
        if ws is None or ws[0].shape != grad_out.shape:
            return F.relu_grad(self._x, grad_out)
        out, mask, dx = ws
        # out > 0 iff x > 0 (x == 0 clips to 0 either way), and ``out`` is
        # always contiguous while x may be a strided conv-workspace view.
        np.greater(out, 0.0, out=mask)
        np.multiply(grad_out, mask, out=dx)
        return dx


class GELU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.gelu_grad(self._x, grad_out)


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._out: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)
