"""Pointwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.relu_grad(self._x, grad_out)


class GELU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.gelu_grad(self._x, grad_out)


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._out: np.ndarray = np.zeros(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)
