"""Token embedding lookup."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    Input: integer array of any shape; output gains a trailing ``dim`` axis.
    The backward pass scatter-adds into the weight gradient with
    ``np.add.at`` so repeated tokens accumulate correctly.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: RngLike = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init.normal((num_embeddings, dim), std=0.1, rng=as_rng(rng)),
            "weight",
        )
        self._ids: np.ndarray = np.zeros(0, dtype=np.int64)

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"Embedding expects integer ids, got {ids.dtype}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ValueError(
                f"token ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        dw = np.zeros_like(self.weight.data)
        np.add.at(dw, self._ids.ravel(), grad_out.reshape(-1, self.dim))
        self.weight.accumulate_grad(dw)
        # Integer inputs have no gradient; return zeros of the id shape for
        # interface uniformity.
        return np.zeros(self._ids.shape, dtype=np.float64)
