"""Shape adapters."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all but the leading (batch) dimension."""

    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)
