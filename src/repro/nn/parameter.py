"""Trainable parameter container."""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Layers own :class:`Parameter` objects; optimizers read ``grad`` and write
    ``data`` in place. Gradients accumulate across ``backward`` calls until
    :meth:`zero_grad` — the same contract as mainstream frameworks, which the
    trainers rely on when replaying micro-batches.

    ``data`` and ``grad`` start as standalone arrays; once the owning module
    builds its :class:`~repro.nn.arena.ParameterArena`, both are rebound to
    views into the arena's contiguous buffers. All mutation must therefore
    stay in place (``+=``, ``[...] =``) — rebinding ``p.data`` to a new array
    silently detaches the parameter from the arena (the module detects this
    and rebuilds, but it costs a full re-pack).
    """

    __slots__ = ("data", "grad", "name", "requires_grad")

    def __init__(
        self,
        data: np.ndarray,
        name: str = "param",
        requires_grad: bool = True,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = requires_grad

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def accumulate_grad(self, g: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if g.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {g.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        self.grad += g

    def copy_(self, other: "Parameter") -> None:
        """In-place copy of another parameter's data (not its gradient)."""
        if other.data.shape != self.data.shape:
            raise ValueError(
                f"cannot copy {other.data.shape} into {self.data.shape}"
            )
        self.data[...] = other.data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name}, shape={self.data.shape})"
