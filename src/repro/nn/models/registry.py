"""Model registry shared by the experiment harness."""

from __future__ import annotations

from repro.nn.module import Module
from repro.utils.registry import Registry

MODELS: Registry = Registry("model")


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name (e.g. ``"smallresnet"``)."""
    return MODELS.create(name, **kwargs)
