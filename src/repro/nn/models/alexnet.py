"""SmallAlexNet — shallow conv net with dropout head, the AlexNet stand-in."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.models.registry import MODELS
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs


@MODELS.register("smallalexnet")
class SmallAlexNet(Module):
    """Few wide conv layers then a dropout-regularized dense classifier.

    The paper trains AlexNet with Adam and a fixed learning rate on
    ImageNet-1K; the experiments harness mirrors that pairing with the
    imagenet-like synthetic dataset.
    """

    task = "classification"

    def __init__(
        self,
        in_channels: int = 3,
        n_classes: int = 20,
        base: int = 12,
        fc_width: int = 96,
        image_size: int = 16,
        rng: RngLike = None,
    ):
        super().__init__()
        self.n_classes = n_classes
        self.image_size = image_size
        self.in_channels = in_channels
        r = spawn_rngs(rng, 5)
        spatial = image_size // 4
        flat = 2 * base * spatial * spatial
        self.net = Sequential(
            Conv2d(in_channels, base, 5, padding=2, rng=r[0]),
            ReLU(),
            MaxPool2d(2),
            Conv2d(base, 2 * base, 3, padding=1, rng=r[1]),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(flat, fc_width, rng=r[2]),
            ReLU(),
            Dropout(0.5, rng=r[3]),
            Linear(fc_width, n_classes, rng=r[4]),
        )
        s1 = image_size * image_size
        s2 = (image_size // 2) ** 2
        conv_flops = 2 * (
            25 * in_channels * base * s1 + 9 * base * 2 * base * s2
        )
        fc_flops = 2 * (flat * fc_width + fc_width * n_classes)
        self.flops_per_sample = int(conv_flops + fc_flops)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)
