"""TinyTransformer — causal language model, the WikiText Transformer stand-in.

Pre-norm transformer blocks (LayerNorm → attention → residual, then
LayerNorm → MLP → residual) with learned positional embeddings and a linear
vocabulary head. The paper's encoder uses 2 layers / 2 heads / dim 200; this
analog keeps the same block count and head count at a CPU-friendly width.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    Residual,
    Sequential,
)
from repro.nn.models.registry import MODELS
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs


def _block(dim: int, n_heads: int, mlp_ratio: int, dropout: float, rng) -> Sequential:
    r_attn, r_fc1, r_fc2, r_drop = spawn_rngs(rng, 4)
    attn = Residual(
        Sequential(
            LayerNorm(dim),
            MultiHeadSelfAttention(dim, n_heads, causal=True, rng=r_attn),
        )
    )
    mlp = Residual(
        Sequential(
            LayerNorm(dim),
            Linear(dim, mlp_ratio * dim, rng=r_fc1),
            GELU(),
            Linear(mlp_ratio * dim, dim, rng=r_fc2),
            Dropout(dropout, rng=r_drop),
        )
    )
    return Sequential(attn, mlp)


@MODELS.register("tinytransformer")
class TinyTransformer(Module):
    """Decoder-only LM over ``(B, T)`` integer token ids → ``(B, T, V)`` logits."""

    task = "lm"

    def __init__(
        self,
        vocab_size: int = 64,
        dim: int = 32,
        n_heads: int = 2,
        n_layers: int = 2,
        max_len: int = 64,
        mlp_ratio: int = 2,
        dropout: float = 0.1,
        rng: RngLike = None,
    ):
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.max_len = max_len
        rngs = spawn_rngs(rng, n_layers + 3)
        self.tok_emb = Embedding(vocab_size, dim, rng=rngs[0])
        self.pos_emb = Embedding(max_len, dim, rng=rngs[1])
        self.blocks = Sequential(
            *[_block(dim, n_heads, mlp_ratio, dropout, rngs[2 + i]) for i in range(n_layers)]
        )
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, vocab_size, rng=rngs[-1])
        # Attention + MLP + head FLOPs per token, forward (2 FLOPs per MAC).
        per_token = n_layers * (
            2 * 4 * dim * dim            # qkv + out projections
            + 2 * 2 * max_len * dim      # score and value matmuls (avg seq)
            + 2 * 2 * mlp_ratio * dim * dim
        ) + 2 * dim * vocab_size
        self.flops_per_sample = int(per_token * max_len)

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"TinyTransformer expects (B, T) ids, got {ids.shape}")
        b, t = ids.shape
        if t > self.max_len:
            raise ValueError(f"sequence length {t} exceeds max_len {self.max_len}")
        pos = np.broadcast_to(np.arange(t), (b, t))
        x = self.tok_emb.forward(ids) + self.pos_emb.forward(pos)
        x = self.blocks.forward(x)
        x = self.norm.forward(x)
        return self.head.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        dx = self.head.backward(grad_out)
        dx = self.norm.backward(dx)
        dx = self.blocks.backward(dx)
        self.tok_emb.backward(dx)
        self.pos_emb.backward(dx)
        # Token ids carry no gradient.
        return np.zeros(0)
