"""SmallVGG — plain convolution stack, the VGG11 stand-in.

No skip connections and a comparatively heavy dense head: the two properties
the paper uses to explain why VGG11 (a) pays the largest communication bill
(507 MB of mostly-dense weights) and (b) generalizes worse than ResNet under
partitioned semi-synchronous training (§IV-C).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.models.registry import MODELS
from repro.nn.module import Module
from repro.utils import fastpath
from repro.utils.rng import RngLike, spawn_rngs


@MODELS.register("smallvgg")
class SmallVGG(Module):
    """Plain conv-pool stack with a wide fully connected head."""

    task = "classification"

    def __init__(
        self,
        in_channels: int = 3,
        n_classes: int = 100,
        base: int = 8,
        fc_width: int = 64,
        image_size: int = 16,
        rng: RngLike = None,
    ):
        super().__init__()
        self.n_classes = n_classes
        self.image_size = image_size
        self.in_channels = in_channels
        r = spawn_rngs(rng, 6)
        spatial = image_size // 4  # two 2x2 pools
        flat = 2 * base * spatial * spatial

        def pool_relu():
            # maxpool(relu(x)) == relu(maxpool(x)) exactly (clipping at zero
            # commutes with max, and the gradients agree in every case,
            # including ties and all-negative windows). Pooling first runs
            # ReLU on 4x fewer activations, so the fast path uses that
            # order; the baseline keeps the textbook layout.
            if fastpath.is_enabled():
                return [MaxPool2d(2), ReLU()]
            return [ReLU(), MaxPool2d(2)]

        stem = Conv2d(in_channels, base, 3, padding=1, rng=r[0])
        # The gradient w.r.t. the input images is never consumed.
        stem.skip_input_grad = True
        self.net = Sequential(
            stem,
            ReLU(),
            Conv2d(base, base, 3, padding=1, rng=r[1]),
            *pool_relu(),
            Conv2d(base, 2 * base, 3, padding=1, rng=r[2]),
            ReLU(),
            Conv2d(2 * base, 2 * base, 3, padding=1, rng=r[3]),
            *pool_relu(),
            Flatten(),
            Linear(flat, fc_width, rng=r[4]),
            ReLU(),
            Dropout(0.3, rng=r[5]),
            Linear(fc_width, n_classes, rng=r[5]),
        )
        s1 = image_size * image_size
        s2 = (image_size // 2) ** 2
        conv_flops = 2 * 9 * (
            in_channels * base * s1
            + base * base * s1
            + base * 2 * base * s2
            + 2 * base * 2 * base * s2
        )
        fc_flops = 2 * (flat * fc_width + fc_width * n_classes)
        self.flops_per_sample = int(conv_flops + fc_flops)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)
