"""SmallResNet — skip-connection CNN, the ResNet101 stand-in."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.models.registry import MODELS
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs


def _basic_block(channels: int, rng) -> Residual:
    """Two 3x3 convs with batch norm inside an identity skip connection."""
    r1, r2 = spawn_rngs(rng, 2)
    body = Sequential(
        Conv2d(channels, channels, 3, padding=1, bias=False, rng=r1),
        BatchNorm2d(channels),
        ReLU(),
        Conv2d(channels, channels, 3, padding=1, bias=False, rng=r2),
        BatchNorm2d(channels),
    )
    return Residual(body)


def _down_block(in_ch: int, out_ch: int, rng) -> Residual:
    """Stride-2 block; skip path uses a 1x1 stride-2 projection."""
    r1, r2, r3 = spawn_rngs(rng, 3)
    body = Sequential(
        Conv2d(in_ch, out_ch, 3, stride=2, padding=1, bias=False, rng=r1),
        BatchNorm2d(out_ch),
        ReLU(),
        Conv2d(out_ch, out_ch, 3, padding=1, bias=False, rng=r2),
        BatchNorm2d(out_ch),
    )
    proj = Sequential(
        Conv2d(in_ch, out_ch, 1, stride=2, bias=False, rng=r3),
        BatchNorm2d(out_ch),
    )
    return Residual(body, proj)


@MODELS.register("smallresnet")
class SmallResNet(Module):
    """Residual CNN for ``(N, C, H, W)`` images.

    Default geometry: stem to ``base`` channels, ``n_blocks`` identity blocks,
    one stride-2 downsample doubling channels, ``n_blocks`` more identity
    blocks, global average pooling, linear head. Depth scales with
    ``n_blocks`` the way ResNet variants scale with layer count.
    """

    task = "classification"

    def __init__(
        self,
        in_channels: int = 3,
        n_classes: int = 10,
        base: int = 8,
        n_blocks: int = 2,
        image_size: int = 16,
        rng: RngLike = None,
    ):
        super().__init__()
        self.n_classes = n_classes
        self.image_size = image_size
        self.in_channels = in_channels
        rngs = spawn_rngs(rng, 2 * n_blocks + 3)
        layers = [
            Conv2d(in_channels, base, 3, padding=1, bias=False, rng=rngs[0]),
            BatchNorm2d(base),
            ReLU(),
        ]
        for i in range(n_blocks):
            layers += [_basic_block(base, rngs[1 + i]), ReLU()]
        layers += [_down_block(base, 2 * base, rngs[1 + n_blocks]), ReLU()]
        for i in range(n_blocks):
            layers += [_basic_block(2 * base, rngs[2 + n_blocks + i]), ReLU()]
        layers += [GlobalAvgPool2d(), Linear(2 * base, n_classes, rng=rngs[-1])]
        self.net = Sequential(*layers)
        # Conv FLOPs: 2 * Cout*Cin*k^2 * OH*OW per sample; stage 1 at full
        # resolution, stage 2 at half. An estimate is all the compute model
        # needs (relative magnitudes across model families).
        s1 = image_size * image_size
        s2 = (image_size // 2) ** 2
        conv_flops = 2 * 9 * (
            in_channels * base * s1
            + n_blocks * 2 * base * base * s1
            + base * 2 * base * s2
            + (2 * base) * (2 * base) * s2
            + n_blocks * 2 * (2 * base) * (2 * base) * s2
        )
        self.flops_per_sample = int(conv_flops + 2 * 2 * base * n_classes)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)
