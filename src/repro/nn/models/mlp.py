"""Plain multilayer perceptron — the small, fast workhorse for tests."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.models.registry import MODELS
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs


@MODELS.register("mlp")
class MLP(Module):
    """Fully connected classifier over flat feature vectors.

    Parameters
    ----------
    in_features / n_classes:
        Input and output widths.
    hidden:
        Hidden-layer widths, e.g. ``(64, 64)``.
    """

    task = "classification"

    def __init__(
        self,
        in_features: int = 32,
        n_classes: int = 10,
        hidden: Sequence[int] = (64,),
        rng: RngLike = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.n_classes = n_classes
        dims = [in_features, *hidden, n_classes]
        rngs = spawn_rngs(rng, len(dims) - 1)
        layers = []
        for i, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(a, b, rng=rngs[i]))
            if i < len(dims) - 2:
                layers.append(ReLU())
        self.net = Sequential(*layers)
        # 2 FLOPs per MAC, forward only; backward costs ~2x forward.
        self.flops_per_sample = int(
            sum(2 * a * b for a, b in zip(dims[:-1], dims[1:]))
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)
