"""Model zoo: downscaled analogs of the paper's four DNN families.

| Paper model  | Analog here       | Shared property the paper leans on      |
|--------------|-------------------|-----------------------------------------|
| ResNet101    | SmallResNet       | deep, skip connections, batch norm      |
| VGG11        | SmallVGG          | plain conv stack, large dense head      |
| AlexNet      | SmallAlexNet      | shallow conv + dropout + dense head     |
| Transformer  | TinyTransformer   | causal self-attention language model    |

Models register themselves in :data:`MODELS`, keyed by name, so experiment
configs can reference them as strings.
"""

from repro.nn.models.registry import MODELS, build_model
from repro.nn.models.mlp import MLP
from repro.nn.models.resnet import SmallResNet
from repro.nn.models.vgg import SmallVGG
from repro.nn.models.alexnet import SmallAlexNet
from repro.nn.models.transformer import TinyTransformer

__all__ = [
    "MODELS",
    "build_model",
    "MLP",
    "SmallResNet",
    "SmallVGG",
    "SmallAlexNet",
    "TinyTransformer",
]
