"""Loss functions.

Each loss exposes ``forward(logits, targets) -> float`` and
``backward() -> grad_logits`` so trainers drive them exactly like layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Accepts logits of shape ``(N, C)`` or ``(B, T, C)`` (language modelling);
    targets are the matching integer array. The mean reduction over all
    positions matches Eqn. (1)'s per-sample averaging.
    """

    def __init__(self):
        self._probs: np.ndarray = np.zeros(0)
        self._targets: np.ndarray = np.zeros(0, dtype=np.int64)
        self._n: int = 0

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.int64)
        flat_logits = logits.reshape(-1, logits.shape[-1])
        flat_targets = targets.reshape(-1)
        if flat_logits.shape[0] != flat_targets.shape[0]:
            raise ValueError(
                f"logits/targets batch mismatch: {logits.shape} vs {targets.shape}"
            )
        logp = F.log_softmax(flat_logits, axis=-1)
        self._probs = np.exp(logp)
        self._targets = flat_targets
        self._n = flat_targets.shape[0]
        self._shape = logits.shape
        nll = -logp[np.arange(self._n), flat_targets]
        return float(nll.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._n == 0:
            raise RuntimeError("CrossEntropyLoss.backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(self._n), self._targets] -= 1.0
        grad /= self._n
        return grad.reshape(self._shape)


class MSELoss:
    """Mean squared error over real-valued predictions (used in unit tests)."""

    def __init__(self):
        self._diff: np.ndarray = np.zeros(0)

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size


def perplexity(mean_nll: float) -> float:
    """Test perplexity = exp(loss), the paper's Transformer metric."""
    return float(np.exp(mean_nll))
