"""Contiguous parameter/gradient arenas backing a module's flat views.

The trainers live on flat parameter and gradient vectors: every SelSync
iteration reads ``||g||²``, every sync round pushes/pulls the whole model,
and the optimizers walk all parameters. The seed implementation paid an
O(P) concatenate for each of those. An arena allocates **one** contiguous
float64 buffer for all parameter data and one for all gradients, and rebinds
every ``Parameter.data`` / ``.grad`` to a view into its slice:

    param_buf  [ conv1.w | conv1.b | conv2.w | ... ]   <- Parameter.data views
    grad_buf   [ conv1.w | conv1.b | conv2.w | ... ]   <- Parameter.grad views

After that:

* ``Module.get_flat_params()`` / ``get_flat_grads()`` are O(1) — they return
  a cached **read-only** view of the arena (mutating it raises; pass
  ``copy=True`` when you need a vector that survives subsequent updates).
* ``Module.set_flat_params(vec)`` is a single vectorized write into the
  buffer, which every parameter view observes instantly.
* ``Module.zero_grad()`` is one ``fill(0.0)``.

Arenas are built lazily on first flat access and rebuilt automatically when
they no longer cover the module (a parameter was registered afterwards, or
the module was deep-copied, which detaches numpy views). Layers and
optimizers are oblivious: they keep mutating ``p.data`` / ``p.grad`` in
place, which is all they ever did.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.parameter import Parameter


class ParameterArena:
    """One contiguous data + grad buffer for a fixed list of parameters."""

    __slots__ = (
        "params",
        "param_buf",
        "grad_buf",
        "_param_ids",
        "_params_ro",
        "_grads_ro",
    )

    def __init__(self, params: Sequence[Parameter]):
        self.params: List[Parameter] = list(params)
        total = sum(int(p.data.size) for p in self.params)
        self.param_buf = np.empty(total, dtype=np.float64)
        self.grad_buf = np.empty(total, dtype=np.float64)
        offset = 0
        for p in self.params:
            n = int(p.data.size)
            sl = slice(offset, offset + n)
            self.param_buf[sl] = p.data.ravel()
            self.grad_buf[sl] = p.grad.ravel()
            p.data = self.param_buf[sl].reshape(p.data.shape)
            p.grad = self.grad_buf[sl].reshape(p.grad.shape)
            offset += n
        self._param_ids = tuple(id(p) for p in self.params)
        self._params_ro = self.param_buf[:]
        self._params_ro.flags.writeable = False
        self._grads_ro = self.grad_buf[:]
        self._grads_ro.flags.writeable = False

    @property
    def size(self) -> int:
        return int(self.param_buf.size)

    def covers(self, params: Sequence[Parameter]) -> bool:
        """True when this arena still backs exactly ``params``.

        Checks identity of the parameter list *and* that each ``.data`` /
        ``.grad`` still aliases the arena buffers — a deep-copied module has
        the same structure but detached arrays, and must get a fresh arena.
        """
        if tuple(id(p) for p in params) != self._param_ids:
            return False
        for p in self.params:
            if p.data.base is not self.param_buf or p.grad.base is not self.grad_buf:
                return False
        return True

    # -- flat access -------------------------------------------------------
    def flat_params(self, copy: bool = False) -> np.ndarray:
        """The whole parameter vector: read-only view, or a private copy."""
        return self.param_buf.copy() if copy else self._params_ro

    def flat_grads(self, copy: bool = False) -> np.ndarray:
        return self.grad_buf.copy() if copy else self._grads_ro

    def write_params(self, vec: np.ndarray) -> None:
        """One vectorized write; all parameter views see it immediately."""
        vec = np.asarray(vec)
        if vec.size != self.param_buf.size:
            raise ValueError(
                f"flat vector has {vec.size} elements, arena holds "
                f"{self.param_buf.size}"
            )
        # Writing the arena's own (read-only) view back is a legal no-op.
        np.copyto(self.param_buf, vec.ravel())

    def write_grads(self, vec: np.ndarray) -> None:
        vec = np.asarray(vec)
        if vec.size != self.grad_buf.size:
            raise ValueError(
                f"flat vector has {vec.size} elements, arena holds "
                f"{self.grad_buf.size}"
            )
        np.copyto(self.grad_buf, vec.ravel())

    def zero_grad(self) -> None:
        self.grad_buf.fill(0.0)
