"""Contiguous parameter/gradient arenas backing a module's flat views.

The trainers live on flat parameter and gradient vectors: every SelSync
iteration reads ``||g||²``, every sync round pushes/pulls the whole model,
and the optimizers walk all parameters. The seed implementation paid an
O(P) concatenate for each of those. An arena allocates **one** contiguous
float64 buffer for all parameter data and one for all gradients, and rebinds
every ``Parameter.data`` / ``.grad`` to a view into its slice:

    param_buf  [ conv1.w | conv1.b | conv2.w | ... ]   <- Parameter.data views
    grad_buf   [ conv1.w | conv1.b | conv2.w | ... ]   <- Parameter.grad views

After that:

* ``Module.get_flat_params()`` / ``get_flat_grads()`` are O(1) — they return
  a cached **read-only** view of the arena (mutating it raises; pass
  ``copy=True`` when you need a vector that survives subsequent updates).
* ``Module.set_flat_params(vec)`` is a single vectorized write into the
  buffer, which every parameter view observes instantly.
* ``Module.zero_grad()`` is one ``fill(0.0)``.

Arenas are built lazily on first flat access and rebuilt automatically when
they no longer cover the module (a parameter was registered afterwards, or
the module was deep-copied, which detaches numpy views). Layers and
optimizers are oblivious: they keep mutating ``p.data`` / ``p.grad`` in
place, which is all they ever did.

Shared-memory arenas
--------------------
:class:`SharedParameterArena` keeps the exact same layout but places both
buffers in one ``multiprocessing.shared_memory`` segment, so worker
*processes* forked (or attached by name) afterwards observe every parameter
and gradient write with zero copies and zero pickling — the transport the
:class:`~repro.cluster.executor.ProcessExecutor` is built on. Lifecycle:

* :func:`share_arena` promotes a module's arena to shared memory in place
  (idempotent); :func:`unshare_arena` copies the current values back into a
  private arena and releases the segment.
* A child process calls :meth:`SharedParameterArena.attach` with the
  segment name to rebind its (forked or rebuilt) parameter list onto the
  parent's storage — the segment's values win, nothing is copied in.
* A shared arena must never be *silently* replaced while children may be
  attached; ``Module._ensure_arena`` raises instead of rebuilding one.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.parameter import Parameter


class ParameterArena:
    """One contiguous data + grad buffer for a fixed list of parameters."""

    __slots__ = (
        "params",
        "param_buf",
        "grad_buf",
        "_param_ids",
        "_params_ro",
        "_grads_ro",
    )

    #: True for arenas whose storage other processes may be attached to.
    shared = False

    def __init__(self, params: Sequence[Parameter], _take_storage: bool = False):
        self.params: List[Parameter] = list(params)
        total = sum(int(p.data.size) for p in self.params)
        self.param_buf, self.grad_buf = self._allocate(total)
        offset = 0
        for p in self.params:
            n = int(p.data.size)
            sl = slice(offset, offset + n)
            if not _take_storage:
                self.param_buf[sl] = p.data.ravel()
                self.grad_buf[sl] = p.grad.ravel()
            p.data = self.param_buf[sl].reshape(p.data.shape)
            p.grad = self.grad_buf[sl].reshape(p.grad.shape)
            offset += n
        self._param_ids = tuple(id(p) for p in self.params)
        self._params_ro = self.param_buf[:]
        self._params_ro.flags.writeable = False
        self._grads_ro = self.grad_buf[:]
        self._grads_ro.flags.writeable = False

    def _allocate(self, total: int):
        return (
            np.empty(total, dtype=np.float64),
            np.empty(total, dtype=np.float64),
        )

    @property
    def size(self) -> int:
        return int(self.param_buf.size)

    def covers(self, params: Sequence[Parameter]) -> bool:
        """True when this arena still backs exactly ``params``.

        Checks identity of the parameter list *and* that each ``.data`` /
        ``.grad`` still aliases the arena buffers — a deep-copied module has
        the same structure but detached arrays, and must get a fresh arena.
        """
        if tuple(id(p) for p in params) != self._param_ids:
            return False
        for p in self.params:
            if p.data.base is not self.param_buf or p.grad.base is not self.grad_buf:
                return False
        return True

    # -- flat access -------------------------------------------------------
    def flat_params(self, copy: bool = False) -> np.ndarray:
        """The whole parameter vector: read-only view, or a private copy."""
        return self.param_buf.copy() if copy else self._params_ro

    def flat_grads(self, copy: bool = False) -> np.ndarray:
        return self.grad_buf.copy() if copy else self._grads_ro

    def write_params(self, vec: np.ndarray) -> None:
        """One vectorized write; all parameter views see it immediately."""
        vec = np.asarray(vec)
        if vec.size != self.param_buf.size:
            raise ValueError(
                f"flat vector has {vec.size} elements, arena holds "
                f"{self.param_buf.size}"
            )
        # Writing the arena's own (read-only) view back is a legal no-op.
        np.copyto(self.param_buf, vec.ravel())

    def write_grads(self, vec: np.ndarray) -> None:
        vec = np.asarray(vec)
        if vec.size != self.grad_buf.size:
            raise ValueError(
                f"flat vector has {vec.size} elements, arena holds "
                f"{self.grad_buf.size}"
            )
        np.copyto(self.grad_buf, vec.ravel())

    def zero_grad(self) -> None:
        self.grad_buf.fill(0.0)


class SharedParameterArena(ParameterArena):
    """Arena whose buffers live in one shared-memory segment.

    Layout: ``[ param_buf | grad_buf ]``, each ``total * 8`` bytes of
    float64. The creating process owns the segment (``owner=True``) and is
    responsible for :meth:`release`-ing it; attached processes only close
    their mapping. Forked children need neither — they inherit the mapping
    directly and their views stay valid until the process exits.
    """

    __slots__ = ("shm", "owner")

    shared = True

    def __init__(self, params: Sequence[Parameter]):
        self.owner = True
        super().__init__(params)

    @classmethod
    def attach(
        cls, name: str, params: Sequence[Parameter]
    ) -> "SharedParameterArena":
        """Rebind ``params`` onto an existing segment created elsewhere.

        The segment's contents win: the given parameters' current values are
        discarded and every ``.data`` / ``.grad`` becomes a view into the
        shared storage (the child side of the executor protocol).
        """
        self = cls.__new__(cls)
        self.owner = False
        self.shm = shared_memory.SharedMemory(name=name)
        total = sum(int(p.data.size) for p in params)
        if self.shm.size < 16 * total:
            raise ValueError(
                f"shared segment {name!r} holds {self.shm.size} bytes, "
                f"need {16 * total} for {total} parameters"
            )
        ParameterArena.__init__(self, params, _take_storage=True)
        return self

    @property
    def shm_name(self) -> str:
        return self.shm.name

    def _allocate(self, total: int):
        nbytes = 8 * total
        if self.owner:
            self.shm = shared_memory.SharedMemory(
                create=True, size=max(16, 2 * nbytes)
            )
        param_buf = np.ndarray((total,), dtype=np.float64, buffer=self.shm.buf)
        grad_buf = np.ndarray(
            (total,), dtype=np.float64, buffer=self.shm.buf, offset=nbytes
        )
        return param_buf, grad_buf

    def release(self) -> None:
        """Drop this process's mapping (and the segment itself when owner).

        Only legal once no parameter views point into the buffers anymore —
        callers rebind through :func:`unshare_arena` first. Idempotent.
        """
        shm, self.shm = getattr(self, "shm", None), None
        if shm is None:
            return
        # The numpy views keep exported pointers into shm.buf; drop ours
        # before closing so mmap can actually unmap.
        self.param_buf = self.grad_buf = None
        self._params_ro = self._grads_ro = None
        shm.close()
        if self.owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass

    def __deepcopy__(self, memo):
        # A deep-copied module gets detached private parameter arrays; its
        # copied arena slot must not alias (or try to re-own) the shared
        # segment. Returning None makes the copy rebuild a private arena
        # lazily, exactly like the deep-copy path for ordinary arenas.
        return None


def share_arena(module) -> SharedParameterArena:
    """Promote ``module``'s arena to shared memory, in place (idempotent).

    Every ``Parameter.data`` / ``.grad`` is rebound to views of the new
    segment with its current values; existing *copies* of the flat vectors
    are unaffected, while subsequent ``get_flat_*(copy=False)`` views track
    the shared storage.
    """
    from repro.nn.module import Module

    arena = module._ensure_arena()
    if arena is None:
        raise RuntimeError(
            "cannot build a shared-memory arena with the fast path disabled "
            "(repro.utils.fastpath); the process executor requires it"
        )
    if isinstance(arena, SharedParameterArena):
        return arena
    new = SharedParameterArena(module.parameters())
    module._arena = new
    module._arena_ver = Module._registry_version
    return new


def unshare_arena(module) -> None:
    """Rebind ``module`` to a private arena and release the shared segment.

    Copies the segment's current values out first, so the module continues
    exactly where the shared run left off. No-op for unshared modules.
    """
    from repro.nn.module import Module

    arena = getattr(module, "_arena", None)
    if not isinstance(arena, SharedParameterArena):
        return
    module._arena = ParameterArena(module.parameters())
    module._arena_ver = Module._registry_version
    arena.release()
