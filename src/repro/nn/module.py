"""Base class for all network modules.

The library uses explicit layer-wise backpropagation: ``forward`` caches the
activations it needs, ``backward`` consumes the upstream gradient, adds to
each parameter's ``grad`` and returns the gradient w.r.t. its input. This is
simpler and faster in numpy than a full tape-based autograd, and every layer
is verified against finite differences in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils.flatten import flatten_arrays, unflatten_like


class Module:
    """Base module: parameter bookkeeping, train/eval mode, flat views."""

    def __init__(self):
        self._params: Dict[str, Parameter] = {}
        self._children: Dict[str, "Module"] = {}
        self.training: bool = True

    # -- registration ------------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._params[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._children[name] = module
        return module

    def __setattr__(self, name, value):
        # Auto-register parameters and sub-modules assigned as attributes.
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})
            self._params[name] = value
            value.name = name
        elif isinstance(value, Module):
            self.__dict__.setdefault("_children", {})
            self._children[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first, stable order."""
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for cname, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{cname}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._children.values():
            yield from child.modules()

    @property
    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.parameters())

    @property
    def nbytes(self) -> int:
        """Model size in bytes — drives the communication cost model."""
        return sum(p.nbytes for p in self.parameters())

    # -- modes ---------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- gradients -------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- flat parameter / gradient views --------------------------------------
    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameter data into one float64 vector (copy)."""
        return flatten_arrays([p.data for p in self.parameters()])

    def set_flat_params(self, vec: np.ndarray) -> None:
        """Write a flat vector back into the parameters, in place."""
        params = self.parameters()
        chunks = unflatten_like(vec, [p.data for p in params])
        for p, c in zip(params, chunks):
            p.data[...] = c

    def get_flat_grads(self) -> np.ndarray:
        return flatten_arrays([p.grad for p in self.parameters()])

    def set_flat_grads(self, vec: np.ndarray) -> None:
        params = self.parameters()
        chunks = unflatten_like(vec, [p.grad for p in params])
        for p, c in zip(params, chunks):
            p.grad[...] = c

    # -- state dict -------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if state[name].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{state[name].shape} vs {p.data.shape}"
                )
            p.data[...] = state[name]

    # -- interface the subclasses implement --------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
