"""Base class for all network modules.

The library uses explicit layer-wise backpropagation: ``forward`` caches the
activations it needs, ``backward`` consumes the upstream gradient, adds to
each parameter's ``grad`` and returns the gradient w.r.t. its input. This is
simpler and faster in numpy than a full tape-based autograd, and every layer
is verified against finite differences in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils import fastpath
from repro.utils.flatten import flatten_arrays, unflatten_like


class Module:
    """Base module: parameter bookkeeping, train/eval mode, flat views."""

    # Bumped on every parameter/module registration anywhere in the process.
    # ``_ensure_arena`` caches its traversal against this counter, so the
    # steady-state hot loop never re-walks the module tree: registrations
    # only happen at model construction time.
    _registry_version: int = 0

    def __init__(self):
        self._params: Dict[str, Parameter] = {}
        self._children: Dict[str, "Module"] = {}
        self._arena = None  # lazily-built ParameterArena backing the flat views
        self._arena_ver = -1  # _registry_version the arena was validated at
        self.training: bool = True

    # -- registration ------------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._params[name] = param
        Module._registry_version += 1
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._children[name] = module
        Module._registry_version += 1
        return module

    def __setattr__(self, name, value):
        # Auto-register parameters and sub-modules assigned as attributes.
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})
            self._params[name] = value
            value.name = name
            Module._registry_version += 1
        elif isinstance(value, Module):
            self.__dict__.setdefault("_children", {})
            self._children[name] = value
            Module._registry_version += 1
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first, stable order."""
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for cname, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{cname}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._children.values():
            yield from child.modules()

    @property
    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.parameters())

    @property
    def nbytes(self) -> int:
        """Model size in bytes — drives the communication cost model."""
        return sum(p.nbytes for p in self.parameters())

    # -- modes ---------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- gradients -------------------------------------------------------------
    def zero_grad(self) -> None:
        arena = self._ensure_arena()
        if arena is not None:
            arena.zero_grad()
            return
        for p in self.parameters():
            p.zero_grad()

    # -- flat parameter / gradient views --------------------------------------
    def _ensure_arena(self) -> Optional["ParameterArena"]:
        """The arena backing this module's flat views, building it on first
        use and rebuilding when it no longer covers the parameter list
        (late registration, deep copy). Returns ``None`` when the zero-copy
        path is globally disabled (benchmark baseline mode)."""
        if not fastpath.is_enabled():
            return None
        arena = self._arena
        ver = Module._registry_version
        if arena is not None and self._arena_ver == ver:
            # Fast path: no registration happened anywhere since the last
            # check, so the parameter list cannot have changed. A single
            # aliasing probe still guards against deep copies, which detach
            # every view at once without touching the registry.
            if not arena.params or arena.params[0].data.base is arena.param_buf:
                return arena
        params = self.parameters()
        if arena is None or not arena.covers(params):
            if arena is not None and arena.shared:
                # Worker processes may be attached to this arena's segment;
                # silently rebuilding onto private storage would split the
                # replicas. Structure changes under a shared arena are a bug.
                raise RuntimeError(
                    "module structure changed under a shared-memory arena "
                    "(parameter registered or views detached while process "
                    "workers may be attached); detach the process executor "
                    "first (arena.unshare_arena)"
                )
            from repro.nn.arena import ParameterArena

            arena = ParameterArena(params)
            self._arena = arena
        self._arena_ver = ver
        return arena

    def get_flat_params(self, copy: bool = False) -> np.ndarray:
        """All parameter data as one float64 vector.

        Returns an O(1) **read-only view** of the parameter arena by default:
        it reflects every subsequent update in place, and writing to it
        raises. Pass ``copy=True`` for a private snapshot (needed whenever
        the vector must survive later parameter writes, e.g. save/restore).
        """
        arena = self._ensure_arena()
        if arena is None:
            return flatten_arrays([p.data for p in self.parameters()])
        return arena.flat_params(copy=copy)

    def set_flat_params(self, vec: np.ndarray) -> None:
        """Write a flat vector back into the parameters, in place."""
        arena = self._ensure_arena()
        if arena is not None:
            arena.write_params(vec)
            return
        params = self.parameters()
        chunks = unflatten_like(vec, [p.data for p in params])
        for p, c in zip(params, chunks):
            p.data[...] = c

    def get_flat_grads(self, copy: bool = False) -> np.ndarray:
        """All gradients as one vector — read-only arena view unless
        ``copy=True`` (same contract as :meth:`get_flat_params`)."""
        arena = self._ensure_arena()
        if arena is None:
            return flatten_arrays([p.grad for p in self.parameters()])
        return arena.flat_grads(copy=copy)

    def set_flat_grads(self, vec: np.ndarray) -> None:
        arena = self._ensure_arena()
        if arena is not None:
            arena.write_grads(vec)
            return
        params = self.parameters()
        chunks = unflatten_like(vec, [p.grad for p in params])
        for p, c in zip(params, chunks):
            p.grad[...] = c

    # -- state dict -------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if state[name].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{state[name].shape} vs {p.data.shape}"
                )
            p.data[...] = state[name]

    # -- interface the subclasses implement --------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
