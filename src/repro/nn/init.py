"""Weight initializers.

All initializers take an explicit RNG so model construction is deterministic
per worker — in BSP every worker must start from identical parameters (the
paper's GA/PA equivalence argument assumes it), which the cluster enforces by
seeding every replica identically and then broadcasting from the PS.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, as_rng


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def normal(shape, std: float = 0.01, rng: RngLike = None) -> np.ndarray:
    return as_rng(rng).normal(0.0, std, size=shape)


def uniform(shape, bound: float, rng: RngLike = None) -> np.ndarray:
    return as_rng(rng).uniform(-bound, bound, size=shape)


def _fan_in_out(shape) -> tuple:
    """Fan-in/fan-out for dense (out, in) and conv (out, in, kh, kw) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        n = int(np.prod(shape))
        fan_in = fan_out = max(1, n)
    return fan_in, fan_out


def kaiming_normal(shape, rng: RngLike = None) -> np.ndarray:
    """He initialization — the right default before ReLU nonlinearities."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return as_rng(rng).normal(0.0, std, size=shape)


def xavier_uniform(shape, rng: RngLike = None) -> np.ndarray:
    """Glorot initialization — used for attention/embedding projections."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return as_rng(rng).uniform(-bound, bound, size=shape)
