"""Numpy neural-network substrate.

Layer-wise forward/backward modules (gradient-checked against finite
differences in the test suite), losses, initializers and a model zoo of
downscaled analogs of the paper's four DNN families.
"""

from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.nn import functional, init
from repro.nn.losses import CrossEntropyLoss, MSELoss, perplexity
from repro.nn import layers
from repro.nn import models

__all__ = [
    "Module",
    "Parameter",
    "functional",
    "init",
    "layers",
    "models",
    "CrossEntropyLoss",
    "MSELoss",
    "perplexity",
]
