"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "SelSync: accelerating distributed ML training via selective "
        "synchronization (CLUSTER 2023 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
)
