"""Property tests for parameter-server sharding geometry and arithmetic.

The :class:`~repro.comm.sharding.ShardSpec` invariants every consumer
relies on: shards cover ``[0, n)`` disjointly, stay layer-aligned, survive
the ``to_spec``/``parse`` round-trip exactly, split integer payloads
without losing a byte, and — for the plain mean — sharded aggregation is
bitwise equal to the unsharded ``mean_into`` reduction for any shard count
and invariant under permuting the contributor order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.costmodel import ps_sync_time, sharded_ps_sync_time
from repro.comm.network import NetworkModel
from repro.comm.sharding import ShardSpec
from repro.utils.flatten import mean_into

layer_lists = st.lists(st.integers(1, 500), min_size=1, max_size=12)
shard_counts = st.integers(1, 10)


# -- geometry ---------------------------------------------------------------
@given(sizes=layer_lists, n_shards=shard_counts)
@settings(max_examples=120, deadline=None)
def test_shards_cover_disjointly(sizes, n_shards):
    spec = ShardSpec.from_layers(sizes, n_shards)
    total = sum(sizes)
    assert spec.n_params == total
    assert spec.bounds[0] == 0 and spec.bounds[-1] == total
    # Strictly increasing bounds <=> contiguous, disjoint, non-empty shards.
    assert all(hi > lo for lo, hi in zip(spec.bounds, spec.bounds[1:]))
    assert sum(spec.sizes) == total
    # Every flat index belongs to exactly one shard.
    covered = np.zeros(total, dtype=np.int64)
    for sl in spec.slices():
        covered[sl] += 1
    assert (covered == 1).all()


@given(sizes=layer_lists, n_shards=shard_counts)
@settings(max_examples=120, deadline=None)
def test_shards_layer_aligned_and_clamped(sizes, n_shards):
    spec = ShardSpec.from_layers(sizes, n_shards)
    assert spec.aligned_to(sizes)
    # Effective shard count degrades gracefully: never more shards than
    # tensors, never fewer than one.
    assert 1 <= spec.n_shards <= min(n_shards, len(sizes))


@given(sizes=layer_lists, n_shards=shard_counts)
@settings(max_examples=120, deadline=None)
def test_spec_string_round_trip(sizes, n_shards):
    spec = ShardSpec.from_layers(sizes, n_shards)
    assert ShardSpec.parse(spec.to_spec()) == spec


@given(sizes=layer_lists, n_shards=shard_counts, total=st.integers(0, 10**9))
@settings(max_examples=120, deadline=None)
def test_int_payloads_lose_no_byte(sizes, n_shards, total):
    spec = ShardSpec.from_layers(sizes, n_shards)
    parts = spec.int_payloads(total)
    assert len(parts) == spec.n_shards
    assert all(p >= 0 for p in parts)
    assert sum(parts) == total


@given(sizes=layer_lists, n_shards=shard_counts)
@settings(max_examples=80, deadline=None)
def test_shard_of_matches_slices(sizes, n_shards):
    spec = ShardSpec.from_layers(sizes, n_shards)
    for s, sl in enumerate(spec.slices()):
        assert spec.shard_of(sl.start) == s
        assert spec.shard_of(sl.stop - 1) == s


def test_spec_validation_rejects_bad_bounds():
    with pytest.raises(ValueError):
        ShardSpec(n_params=10, bounds=(0, 5, 5, 10))
    with pytest.raises(ValueError):
        ShardSpec(n_params=10, bounds=(1, 10))
    with pytest.raises(ValueError):
        ShardSpec(n_params=10, bounds=(0, 11))
    with pytest.raises(ValueError):
        ShardSpec.parse("0")
    with pytest.raises(ValueError):
        ShardSpec.parse("0,abc,10")


# -- aggregation arithmetic -------------------------------------------------
@given(
    sizes=st.lists(st.integers(1, 64), min_size=1, max_size=6),
    n_shards=st.integers(1, 6),
    k=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_sharded_mean_bitwise_equals_unsharded(sizes, n_shards, k, seed):
    """Slicing the mean reduction per shard changes no bit, for any S."""
    spec = ShardSpec.from_layers(sizes, n_shards)
    rng = np.random.default_rng(seed)
    vectors = [rng.standard_normal(spec.n_params) for _ in range(k)]
    reference = mean_into(vectors, out=np.empty(spec.n_params))
    sharded = np.empty(spec.n_params)
    for sl in spec.slices():
        mean_into([v[sl] for v in vectors], out=sharded[sl])
    assert np.array_equal(reference, sharded)


@given(
    sizes=st.lists(st.integers(1, 64), min_size=1, max_size=6),
    n_shards=st.integers(1, 6),
    k=st.integers(2, 6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_sharded_mean_permutation_invariant(sizes, n_shards, k, seed):
    """Reordering contributors leaves the sharded aggregate unchanged (up
    to float addition reordering — we permute and compare against the same
    permutation applied unsharded, which must stay bitwise equal)."""
    spec = ShardSpec.from_layers(sizes, n_shards)
    rng = np.random.default_rng(seed)
    vectors = [rng.standard_normal(spec.n_params) for _ in range(k)]
    perm = list(rng.permutation(k))
    permuted = [vectors[i] for i in perm]
    ref = mean_into(permuted, out=np.empty(spec.n_params))
    sharded = np.empty(spec.n_params)
    for sl in spec.slices():
        mean_into([v[sl] for v in permuted], out=sharded[sl])
    assert np.array_equal(ref, sharded)
    # And the aggregate itself is permutation-invariant to high precision.
    base = mean_into(vectors, out=np.empty(spec.n_params))
    np.testing.assert_allclose(sharded, base, rtol=1e-12, atol=1e-12)


# -- cost model -------------------------------------------------------------
@given(
    sizes=layer_lists,
    n_shards=shard_counts,
    nbytes=st.integers(10**3, 10**9),
    n=st.integers(2, 32),
)
@settings(max_examples=80, deadline=None)
def test_sharded_round_never_slower_than_unsharded_minus_coordination(
    sizes, n_shards, nbytes, n
):
    """The parallel-max round beats the full-vector round whenever shards
    genuinely split the payload; it can only exceed it by the per-shard
    coordination latency."""
    net = NetworkModel()
    spec = ShardSpec.from_layers(sizes, n_shards)
    payloads = spec.int_payloads(nbytes)
    t_sharded = sharded_ps_sync_time(payloads, [n] * spec.n_shards, net)
    t_full = ps_sync_time(float(nbytes), n, net)
    coordination = (spec.n_shards - 1) * net.latency_s
    assert t_sharded <= t_full + coordination + 1e-12


def test_single_shard_round_reduces_to_ps_sync_time():
    net = NetworkModel()
    for n in (1, 2, 8):
        assert sharded_ps_sync_time([5e6], [n], net) == ps_sync_time(
            5e6, n, net
        )


def test_skipped_and_single_rank_shards():
    net = NetworkModel()
    # All shards skipped -> free round.
    assert sharded_ps_sync_time([1e6, 1e6], [0, 0], net) == 0.0
    # Single-rank shards are free, matching the unsharded convention.
    assert sharded_ps_sync_time([1e6, 1e6], [1, 1], net) == 0.0
    # A skipped shard does not add coordination latency.
    one = sharded_ps_sync_time([1e6, 1e6], [4, 0], net)
    assert one == ps_sync_time(1e6, 4, net)
