"""Tests for the Table I grid runner and text reporting (tiny scale)."""

import pytest

from repro.experiments.reporting import fmt, render_table, render_table1
from repro.experiments.runner import MethodSpec
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def tiny_rows():
    """A 1-workload, 3-method micro-grid: enough to exercise all columns."""
    return run_table1(
        workloads=("resnet_cifar10",),
        methods=(
            MethodSpec("bsp", label="BSP"),
            MethodSpec("selsync", {"delta": 0.3}, label="SelSync d=0.3"),
            MethodSpec("ssp", {"staleness": 5}, label="SSP s=5"),
        ),
        n_workers=2,
        n_steps=40,
        eval_every=20,
        patience=None,
        data_scale=0.1,
    )


class TestTable1Grid:
    def test_row_count(self, tiny_rows):
        assert len(tiny_rows) == 3

    def test_bsp_row_is_reference(self, tiny_rows):
        bsp = next(r for r in tiny_rows if r.method == "BSP")
        assert bsp.lssr == 0.0
        assert bsp.speedup == 1.0
        assert bsp.conv_diff == 0.0

    def test_selsync_row_has_lssr(self, tiny_rows):
        sel = next(r for r in tiny_rows if "SelSync" in r.method)
        assert 0.0 <= sel.lssr <= 1.0
        assert sel.metric is not None

    def test_ssp_row_has_no_lssr(self, tiny_rows):
        """Paper: LSSR does not apply to SSP."""
        ssp = next(r for r in tiny_rows if "SSP" in r.method)
        assert ssp.lssr is None

    def test_all_rows_have_iterations(self, tiny_rows):
        assert all(r.iterations > 0 for r in tiny_rows)


class TestReporting:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(True) == "True"
        assert fmt(0.123456) == "0.123"
        assert fmt(1e7) == "1.00e+07"
        assert fmt(float("nan")) == "-"
        assert fmt("x") == "x"

    def test_render_table_aligns(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_render_table_checks_width(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_table1(self, tiny_rows):
        text = render_table1(tiny_rows)
        assert "BSP" in text and "Speedup" in text
