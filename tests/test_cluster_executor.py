"""Executor backends: serial/threaded equivalence and batch-draw safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.executor import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from repro.core import TrainConfig
from repro.core.bsp import BSPTrainer
from repro.core.selsync import SelSyncTrainer
from tests.conftest import make_mlp_cluster


def _run(trainer_cls, executor, train, cfg, **kwargs):
    workers, cluster = make_mlp_cluster(train)
    cluster.executor = executor
    tr = trainer_cls(workers, cluster, **kwargs)
    res = tr.run(cfg)
    tr.executor.shutdown()
    return res, [w.get_params(copy=True) for w in tr.workers]


@pytest.mark.parametrize(
    "trainer_cls,kwargs",
    [(BSPTrainer, {}), (SelSyncTrainer, {"delta": 0.3})],
)
def test_serial_and_threaded_are_byte_identical(
    trainer_cls, kwargs, blobs_data, quick_cfg
):
    train, _ = blobs_data
    res_s, params_s = _run(trainer_cls, "serial", train, quick_cfg, **kwargs)
    res_t, params_t = _run(trainer_cls, "threaded", train, quick_cfg, **kwargs)
    for ps, pt in zip(params_s, params_t):
        assert np.array_equal(ps, pt)
    assert res_s.final_metric == res_t.final_metric
    assert len(res_s.log.iterations) == len(res_t.log.iterations)
    for a, b in zip(res_s.log.iterations, res_t.log.iterations):
        assert a.loss == b.loss
        assert a.synced == b.synced
        assert a.sim_time == b.sim_time


def test_executor_losses_in_worker_order(blobs_data):
    train, _ = blobs_data
    workers, _ = make_mlp_cluster(train)
    ex = ThreadedExecutor()
    try:
        losses = ex.compute_gradients(workers)
        assert losses == [w.last_loss for w in workers]
    finally:
        ex.shutdown()


def test_draw_batch_twice_raises(blobs_data):
    train, _ = blobs_data
    workers, _ = make_mlp_cluster(train, n_workers=1)
    w = workers[0]
    w.draw_batch()
    with pytest.raises(RuntimeError):
        w.draw_batch()
    # Consuming the prefetched batch clears the guard.
    w.compute_gradient()
    w.draw_batch()
    with pytest.raises(RuntimeError):
        w.compute_gradient(batch=w._prefetched)
    w.compute_gradient()


def test_prefetched_batch_is_the_one_consumed(blobs_data):
    train, _ = blobs_data
    workers, _ = make_mlp_cluster(train, n_workers=2)
    a, b = workers
    xa, ya = a.draw_batch()
    loss_pre = a.compute_gradient()
    # Replaying the identical batch explicitly on the twin replica must give
    # the identical loss (worker b starts from byte-identical parameters).
    loss_explicit = b.compute_gradient((xa, ya))
    assert loss_pre == loss_explicit


def test_explicit_batches_path(blobs_data):
    train, _ = blobs_data
    workers, _ = make_mlp_cluster(train)
    batches = [w.loader.next_batch() for w in workers]
    losses = SerialExecutor().compute_gradients(workers, batches)
    assert len(losses) == len(workers)
    with pytest.raises(ValueError):
        SerialExecutor().compute_gradients(workers, batches[:-1])
    with pytest.raises(ValueError):
        ThreadedExecutor().compute_gradients(workers, batches[:-1])


def test_make_executor():
    assert isinstance(make_executor("serial"), SerialExecutor)
    ex = make_executor("threaded", threads=2)
    assert isinstance(ex, ThreadedExecutor) and ex.threads == 2
    px = make_executor("process", procs=2)
    assert isinstance(px, ProcessExecutor) and px.procs == 2
    with pytest.raises(ValueError):
        make_executor("gpu")
    with pytest.raises(ValueError):
        make_executor("threaded", threads=0)
    with pytest.raises(ValueError):
        make_executor("process", procs=0)


def test_make_executor_error_lists_choices():
    with pytest.raises(ValueError) as ei:
        make_executor("gpu")
    for kind in EXECUTOR_KINDS:
        assert kind in str(ei.value)


def test_shutdown_is_idempotent_and_context_managed(blobs_data):
    train, _ = blobs_data
    workers, _ = make_mlp_cluster(train, n_workers=2)
    for kind in EXECUTOR_KINDS:
        with make_executor(kind) as ex:
            ex.bind(workers)
            losses = ex.compute_gradients(workers)
            assert len(losses) == 2
        ex.shutdown()  # after __exit__: must be a no-op
        ex.shutdown()


def test_cluster_config_validates_executor():
    from repro.core import ClusterConfig

    cfg = ClusterConfig(n_workers=2, executor="threaded", executor_threads=3)
    ex = cfg.make_executor()
    assert isinstance(ex, ThreadedExecutor)
    with pytest.raises(ValueError):
        ClusterConfig(n_workers=2, executor="bogus")
    with pytest.raises(ValueError):
        ClusterConfig(n_workers=2, executor_threads=0)
    with pytest.raises(ValueError):
        ClusterConfig(n_workers=2, executor_procs=0)
    pcfg = ClusterConfig(n_workers=2, executor="process", executor_procs=1)
    assert isinstance(pcfg.make_executor(), ProcessExecutor)


def test_repro_executor_env_sets_default(monkeypatch):
    from repro.core import ClusterConfig

    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    assert ClusterConfig(n_workers=2).executor == "process"
    monkeypatch.delenv("REPRO_EXECUTOR")
    assert ClusterConfig(n_workers=2).executor == "serial"
