"""Kill-and-resume tests: a resumed run must be bitwise identical.

The contract under test: checkpoint at step K, simulate a kill
(``stop_after``), resume from the file with the *same full config* — and the
continuation reproduces the uninterrupted run exactly: parameters, losses,
simulated clock (jitter RNG stream) and fault records all match to the bit.
"""

import numpy as np
import pytest

from repro.core import (
    BSPTrainer,
    ClusterConfig,
    EASGDTrainer,
    FedAvgTrainer,
    LocalSGDTrainer,
    SSPTrainer,
    SelSyncTrainer,
    TrainConfig,
)
from repro.cluster.worker import build_worker_group
from repro.data import ArrayDataset, BatchLoader, selsync_partition
from repro.nn.models import build_model
from repro.optim import SGD

N_WORKERS = 4
N_STEPS = 12
KILL_AT = 6


def _mlp_workers(n=N_WORKERS, lr=0.1, n_samples=64):
    rng = np.random.default_rng(0)
    ds = ArrayDataset(rng.normal(size=(n_samples, 8)), rng.integers(0, 3, n_samples))
    part = selsync_partition(n_samples, n, rng=1)
    loaders = BatchLoader.for_workers(ds, part, batch_size=8, seed=2)
    return build_worker_group(
        n,
        lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
        lambda m: SGD(m, lr=lr, momentum=0.9),
        loaders,
    )


TRAINERS = {
    "bsp": lambda w, c: BSPTrainer(w, c),
    "selsync": lambda w, c: SelSyncTrainer(w, c, delta=0.1),
    "fedavg": lambda w, c: FedAvgTrainer(w, c, c_fraction=0.75),
    "easgd": lambda w, c: EASGDTrainer(w, c, rho=0.1, tau=3),
    "localsgd": lambda w, c: LocalSGDTrainer(w, c),
}


def _build(kind, **cluster_kw):
    workers = _mlp_workers()
    cluster = ClusterConfig(
        n_workers=N_WORKERS, comm_bytes=1e6, flops_per_sample=1e6, **cluster_kw
    )
    return workers, TRAINERS[kind](workers, cluster)


def _fingerprint(workers, res):
    return (
        [w.get_params() for w in workers],
        [r.loss for r in res.log.iterations],
        [r.sim_time for r in res.log.iterations],
        [(f.step, f.worker, f.kind) for f in res.log.faults],
    )


def _assert_same(a, b):
    for pa, pb in zip(a[0], b[0]):
        np.testing.assert_array_equal(pa, pb)
    assert a[1] == b[1]  # losses, bitwise (floats compared exactly)
    assert a[2] == b[2]  # per-step sim times: the jitter RNG stream matches
    assert a[3] == b[3]  # fault records


class TestBitwiseResume:
    @pytest.mark.parametrize("kind", sorted(TRAINERS))
    def test_kill_and_resume_is_bitwise_identical(self, kind, tmp_path):
        ck = str(tmp_path / "ck.npz")
        workers_a, trainer_a = _build(kind)
        res_a = trainer_a.run(TrainConfig(n_steps=N_STEPS, eval_fn=None))

        # Same full config, but checkpoint at KILL_AT and die right after.
        workers_b, trainer_b = _build(kind)
        trainer_b.run(
            TrainConfig(
                n_steps=N_STEPS,
                eval_fn=None,
                checkpoint_every=KILL_AT,
                checkpoint_path=ck,
                stop_after=KILL_AT,
            )
        )

        workers_c, trainer_c = _build(kind)
        res_c = trainer_c.run(
            TrainConfig(n_steps=N_STEPS, eval_fn=None, resume_from=ck)
        )
        assert res_c.steps == N_STEPS
        _assert_same(_fingerprint(workers_a, res_a), _fingerprint(workers_c, res_c))

    def test_faulted_run_resumes_identically(self, tmp_path):
        """Fault draws are keyed on (seed, worker, step), so the injector
        needs no checkpoint state of its own — the resumed half replays the
        exact same crash/straggle/drop sequence.

        Both runs checkpoint identically: a rejoining worker restores from
        the latest checkpoint when one exists, so checkpoint cadence is part
        of the trajectory and must match between the two runs.
        """
        ck_a = str(tmp_path / "a.npz")
        ck = str(tmp_path / "ck.npz")
        spec = dict(fault_spec="crash:w2@3-8,straggle:w0x3@2+,drop:p=0.2",
                    min_quorum=2)
        workers_a, trainer_a = _build("selsync", **spec)
        res_a = trainer_a.run(
            TrainConfig(n_steps=N_STEPS, eval_fn=None,
                        checkpoint_every=KILL_AT, checkpoint_path=ck_a)
        )

        workers_b, trainer_b = _build("selsync", **spec)
        trainer_b.run(
            TrainConfig(
                n_steps=N_STEPS,
                eval_fn=None,
                checkpoint_every=KILL_AT,
                checkpoint_path=ck,
                stop_after=KILL_AT,
            )
        )

        workers_c, trainer_c = _build("selsync", **spec)
        res_c = trainer_c.run(
            TrainConfig(n_steps=N_STEPS, eval_fn=None, resume_from=ck,
                        checkpoint_every=KILL_AT, checkpoint_path=ck)
        )
        _assert_same(_fingerprint(workers_a, res_a), _fingerprint(workers_c, res_c))
        assert res_a.log.n_faults > 0  # the plan actually fired

    def test_resumed_log_contains_pre_kill_records(self, tmp_path):
        ck = str(tmp_path / "ck.npz")
        workers, trainer = _build("bsp")
        trainer.run(
            TrainConfig(
                n_steps=N_STEPS, eval_fn=None,
                checkpoint_every=KILL_AT, checkpoint_path=ck, stop_after=KILL_AT,
            )
        )
        workers2, trainer2 = _build("bsp")
        res = trainer2.run(TrainConfig(n_steps=N_STEPS, eval_fn=None, resume_from=ck))
        # One contiguous history: steps 0..N-1 once each, no gap or overlap.
        assert [r.step for r in res.log.iterations] == list(range(N_STEPS))


class TestRejoinFromCheckpoint:
    def test_rejoining_worker_restores_from_latest_checkpoint(self, tmp_path):
        """With periodic checkpoints, a crashed worker rejoins from the
        latest snapshot (from_checkpoint=1) instead of a peer-mean reseed."""
        ck = str(tmp_path / "ck.npz")
        workers, trainer = _build(
            "selsync", fault_spec="crash:w2@4-8", min_quorum=2
        )
        res = trainer.run(
            TrainConfig(
                n_steps=N_STEPS, eval_fn=None,
                checkpoint_every=2, checkpoint_path=ck,
            )
        )
        rejoins = res.log.faults_of_kind("rejoin")
        assert [(f.step, f.worker) for f in rejoins] == [(8, 2)]
        assert rejoins[0].detail["from_checkpoint"] == 1

    def test_rejoin_without_checkpoint_reseeds_from_peers(self):
        workers, trainer = _build(
            "selsync", fault_spec="crash:w2@4-8", min_quorum=2
        )
        res = trainer.run(TrainConfig(n_steps=N_STEPS, eval_fn=None))
        rejoins = res.log.faults_of_kind("rejoin")
        assert [(f.step, f.worker) for f in rejoins] == [(8, 2)]
        assert rejoins[0].detail["from_checkpoint"] == 0


class TestGuards:
    def test_ssp_rejects_checkpointing(self, tmp_path):
        ck = str(tmp_path / "ck.npz")
        workers = _mlp_workers()
        cluster = ClusterConfig(n_workers=N_WORKERS, comm_bytes=1e6,
                                flops_per_sample=1e6)
        trainer = SSPTrainer(workers, cluster, staleness=10)
        with pytest.raises(NotImplementedError, match="event-driven"):
            trainer.run(
                TrainConfig(n_steps=4, eval_fn=None,
                            checkpoint_every=2, checkpoint_path=ck)
            )
        with pytest.raises(NotImplementedError, match="event-driven"):
            trainer.run(TrainConfig(n_steps=4, eval_fn=None, resume_from=ck))

    def test_wrong_trainer_rejected_on_resume(self, tmp_path):
        ck = str(tmp_path / "ck.npz")
        workers, trainer = _build("bsp")
        trainer.run(
            TrainConfig(n_steps=4, eval_fn=None,
                        checkpoint_every=2, checkpoint_path=ck, stop_after=2)
        )
        workers2, trainer2 = _build("selsync")
        with pytest.raises(ValueError, match="written by trainer"):
            trainer2.run(TrainConfig(n_steps=4, eval_fn=None, resume_from=ck))

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            TrainConfig(n_steps=4, checkpoint_every=2)
