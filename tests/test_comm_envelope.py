"""Property tests for the communication envelope (timeout/retry/backoff).

The envelope's contract has three load-bearing clauses, each pinned with
hypothesis:

1. **Monotone backoff** — the jitter-free backoff cap never shrinks as
   attempts climb, and never exceeds ``cap_s``.
2. **Bounded total wait** — a fully exhausted message's summed backoff is
   bounded by :meth:`RetryPolicy.max_total_wait` for *every* jitter draw,
   and its total retry latency by the closed-form timeout + backoff sum.
3. **Bitwise determinism** — every fault draw is a pure function of
   ``(seed, src, dst, step, attempt)``: rebuilding the model reproduces
   draws exactly, and querying in any order (the executor-independence
   requirement) changes nothing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.envelope import (
    CollectiveTimeoutError,
    CommEnvelope,
    RetryPolicy,
)
from repro.comm.network import make_link_faults

LOSSY = "loss:p=0.4,dup:p=0.1,delay:link(0,3)x5"
N_WORKERS = 8


def _policy(**kw):
    return RetryPolicy(**kw)


# -- 1. monotone backoff caps ------------------------------------------------


@given(
    base=st.floats(1e-4, 1.0),
    mult=st.floats(1.0, 4.0),
    cap_scale=st.floats(1.0, 100.0),
    attempt=st.integers(1, 20),
)
@settings(max_examples=100, deadline=None)
def test_backoff_cap_monotone_and_bounded(base, mult, cap_scale, attempt):
    p = _policy(base_s=base, multiplier=mult, cap_s=base * cap_scale)
    caps = [p.backoff_cap(k) for k in range(1, attempt + 1)]
    assert all(b <= a for b, a in zip(caps, caps[1:] + [p.cap_s]))
    assert all(c <= p.cap_s for c in caps)
    assert caps == sorted(caps)


@given(
    attempt=st.integers(1, 12),
    u=st.floats(0.0, 1.0, exclude_max=True),
    jitter=st.floats(0.0, 0.99),
)
@settings(max_examples=100, deadline=None)
def test_jittered_backoff_within_jitter_band(attempt, u, jitter):
    p = _policy(jitter=jitter)
    cap = p.backoff_cap(attempt)
    b = p.backoff(attempt, u)
    assert cap * (1.0 - jitter) - 1e-15 <= b <= cap * (1.0 + jitter) + 1e-15


# -- 2. bounded total wait ---------------------------------------------------


@given(
    retries=st.integers(0, 8),
    base=st.floats(1e-3, 0.5),
    jitter=st.floats(0.0, 0.9),
    us=st.lists(st.floats(0.0, 1.0, exclude_max=True), min_size=8, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_total_backoff_bounded_by_max_total_wait(retries, base, jitter, us):
    p = _policy(max_retries=retries, base_s=base, cap_s=max(base, 2.0),
                jitter=jitter)
    total = sum(p.backoff(k, us[k - 1]) for k in range(1, retries + 1))
    assert total <= p.max_total_wait() + 1e-12


@given(
    transfer=st.floats(1e-4, 1.0),
    retries=st.integers(0, 6),
)
@settings(max_examples=60, deadline=None)
def test_exhausted_send_wait_bounded_closed_form(transfer, retries):
    # A permanent partition severs (0, 4): every attempt times out.
    lf = make_link_faults(
        "partition:{w0..w3|w4..w7}@0+", N_WORKERS, seed=3
    )
    p = _policy(max_retries=retries)
    env = CommEnvelope(lf, p)
    out = env.send(0, 4, step=10, transfer_s=transfer)
    assert not out.delivered
    assert out.attempts == p.max_attempts
    # With no prior RTT the adaptive timeout is timeout_mult × transfer.
    bound = p.max_attempts * p.timeout_mult * transfer + p.max_total_wait()
    assert out.wait_s <= bound + 1e-12
    assert out.wait_s >= p.max_attempts * transfer  # at least the timeouts
    assert env.n_exhausted == 1


# -- 3. bitwise determinism & order independence -----------------------------


@given(
    src=st.integers(0, N_WORKERS - 1),
    dst=st.integers(0, N_WORKERS),
    step=st.integers(0, 500),
    attempt=st.integers(0, 6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=100, deadline=None)
def test_draws_are_pure_functions_of_key(src, dst, step, attempt, seed):
    if src == dst:
        return
    a = make_link_faults(LOSSY, N_WORKERS, seed=seed)
    b = make_link_faults(LOSSY, N_WORKERS, seed=seed)
    assert a.message_lost(src, dst, step, attempt) == b.message_lost(
        src, dst, step, attempt
    )
    assert a.message_duplicated(src, dst, step, attempt) == b.message_duplicated(
        src, dst, step, attempt
    )
    assert a.jitter_uniform(src, dst, step, attempt) == b.jitter_uniform(
        src, dst, step, attempt
    )
    assert a.delay_factor(src, dst, step) == b.delay_factor(src, dst, step)


@given(order_seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_send_outcomes_independent_of_issue_order(order_seed):
    """Shuffling the order collectives issue sends (what a different
    executor interleaving would amount to) leaves every per-message
    outcome bitwise unchanged."""
    msgs = [(s, d, st_) for st_ in (0, 1, 2) for s in range(4)
            for d in range(4, 8)]
    transfer = 0.01

    def run(order):
        lf = make_link_faults(LOSSY, N_WORKERS, seed=7)
        env = CommEnvelope(lf, _policy(timeout_mult=4.0))
        return {
            m: (o.delivered, o.attempts, o.duplicated)
            for m in order
            for o in [env.send(m[0], m[1], m[2], transfer)]
        }

    shuffled = list(msgs)
    np.random.default_rng(order_seed).shuffle(shuffled)
    assert run(msgs) == run(shuffled)


def test_symmetric_link_key_shares_draws():
    lf = make_link_faults(LOSSY, N_WORKERS, seed=1)
    for step in range(50):
        assert lf.message_lost(2, 6, step, 0) == lf.message_lost(6, 2, step, 0)
        assert lf.delay_factor(0, 3, step) == lf.delay_factor(3, 0, step)


def test_rtt_ewma_adapts_timeout():
    lf = make_link_faults("loss:p=0.0001", N_WORKERS, seed=0)
    env = CommEnvelope(lf, _policy())
    assert env.rtt_ewma is None
    env.send(0, 1, 0, transfer_s=0.05)
    assert env.rtt_ewma == pytest.approx(0.05)
    # A faster observed transfer pulls the estimate (and timeout) down.
    env.send(0, 1, 1, transfer_s=0.01)
    assert env.rtt_ewma < 0.05
    assert env.timeout_s(0.01) == pytest.approx(
        env.policy.timeout_mult * env.rtt_ewma
    )


def test_envelope_state_roundtrip():
    lf = make_link_faults(LOSSY, N_WORKERS, seed=5)
    env = CommEnvelope(lf, _policy())
    for step in range(20):
        env.send(0, 3, step, 0.01)  # delayed ×5 link, lossy
    state = env.state_dict()
    env2 = CommEnvelope(make_link_faults(LOSSY, N_WORKERS, seed=5), _policy())
    env2.load_state_dict(state)
    assert env2.state_dict() == state
    a = env.send(0, 3, 20, 0.01)
    b = env2.send(0, 3, 20, 0.01)
    assert (a.delivered, a.attempts, a.wait_s) == (
        b.delivered, b.attempts, b.wait_s
    )


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        _policy(max_retries=-1)
    with pytest.raises(ValueError):
        _policy(multiplier=0.5)
    with pytest.raises(ValueError):
        _policy(cap_s=0.01, base_s=0.02)
    with pytest.raises(ValueError):
        _policy(jitter=1.0)
    with pytest.raises(ValueError):
        _policy(rtt_alpha=0.0)


def test_collective_timeout_error_carries_context():
    err = CollectiveTimeoutError("allreduce", 2, 5, step=42, attempts=5)
    assert err.op == "allreduce"
    assert (err.src, err.dst, err.step, err.attempts) == (2, 5, 42, 5)
    assert "step 42" in str(err) and "(2,5)" in str(err)
