"""Shared fixtures: tiny clusters that keep every test fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.worker import build_worker_group
from repro.core import ClusterConfig, TrainConfig
from repro.core.evaluation import accuracy_eval
from repro.data import BatchLoader, build_dataset, selsync_partition
from repro.nn.models import build_model
from repro.optim import SGD


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def blobs_data():
    """Small, easily separable classification task."""
    return build_dataset(
        "blobs", n_train=256, n_test=64, n_features=16, n_classes=4, rng=0
    )


def make_mlp_cluster(
    train,
    n_workers: int = 4,
    batch_size: int = 16,
    n_features: int = 16,
    n_classes: int = 4,
    hidden=(16,),
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
    partition_fn=selsync_partition,
):
    """Workers + cluster config over an MLP on the given dataset."""
    part = partition_fn(len(train), n_workers, rng=seed + 1)
    loaders = BatchLoader.for_workers(train, part, batch_size=batch_size, seed=seed + 2)
    workers = build_worker_group(
        n_workers,
        lambda: build_model(
            "mlp", in_features=n_features, n_classes=n_classes, hidden=hidden, rng=7
        ),
        lambda m: SGD(m, lr=lr, momentum=momentum),
        loaders,
    )
    cluster = ClusterConfig(
        n_workers=n_workers, seed=seed, comm_bytes=1e6, flops_per_sample=1e6
    )
    return workers, cluster


@pytest.fixture
def mlp_cluster(blobs_data):
    train, _ = blobs_data
    return make_mlp_cluster(train)


@pytest.fixture
def quick_cfg(blobs_data):
    _, test = blobs_data
    return TrainConfig(
        n_steps=40,
        eval_every=20,
        eval_fn=accuracy_eval(test),
        higher_is_better=True,
    )
