"""Shared fixtures: tiny clusters that keep every test fast.

Also hosts a fallback test-order randomizer: when ``pytest-randomly`` is
installed it owns shuffling (and registers the same ``--randomly-seed``
option, so this stub stays out of the way); when it is not — this offline
image does not ship it — a minimal reimplementation shuffles the collected
items and reseeds the global RNGs per test, so ordering/RNG-leak bugs
surface locally and in CI either way. CI pins the seed for reproducible
legs; an unpinned run draws one and prints it in the pytest header so a
failing order can be replayed with ``--randomly-seed=<N>``.
"""

from __future__ import annotations

import random
import time
import zlib

import numpy as np
import pytest

from repro.cluster.worker import build_worker_group
from repro.core import ClusterConfig, TrainConfig
from repro.core.evaluation import accuracy_eval
from repro.data import BatchLoader, build_dataset, selsync_partition
from repro.nn.models import build_model
from repro.optim import SGD

try:  # the real plugin wins when present
    import pytest_randomly  # noqa: F401

    _HAVE_RANDOMLY = True
except ImportError:
    _HAVE_RANDOMLY = False


if not _HAVE_RANDOMLY:

    def pytest_addoption(parser):
        parser.addoption(
            "--randomly-seed",
            action="store",
            default="default",
            help=(
                "Shuffle seed for test ordering (int, or 'default' to draw "
                "one per run). Mirrors pytest-randomly's option."
            ),
        )
        parser.addoption(
            "--randomly-dont-shuffle",
            action="store_true",
            default=False,
            help="Keep collection order (still reseeds RNGs per test).",
        )

    def _shuffle_seed(config) -> int:
        cached = getattr(config, "_shuffle_seed", None)
        if cached is None:
            raw = config.getoption("--randomly-seed")
            cached = int(time.time()) if raw == "default" else int(raw)
            config._shuffle_seed = cached
        return cached

    def pytest_report_header(config):
        return f"Using --randomly-seed={_shuffle_seed(config)} (fallback shuffler)"

    def pytest_collection_modifyitems(config, items):
        if config.getoption("--randomly-dont-shuffle"):
            return
        random.Random(_shuffle_seed(config)).shuffle(items)

    @pytest.fixture(autouse=True)
    def _reseed_global_rngs(request):
        """Per-test deterministic reseed of the *global* RNG state.

        Any test that leans on ``np.random``/``random`` without seeding
        them gets a seed derived from its own nodeid — so it fails the
        same way regardless of which tests ran before it, instead of
        silently inheriting a neighbour's RNG cursor.
        """
        seed = _shuffle_seed(request.config) ^ zlib.crc32(
            request.node.nodeid.encode()
        )
        random.seed(seed)
        np.random.seed(seed % 2**32)
        yield


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def blobs_data():
    """Small, easily separable classification task."""
    return build_dataset(
        "blobs", n_train=256, n_test=64, n_features=16, n_classes=4, rng=0
    )


def make_mlp_cluster(
    train,
    n_workers: int = 4,
    batch_size: int = 16,
    n_features: int = 16,
    n_classes: int = 4,
    hidden=(16,),
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
    partition_fn=selsync_partition,
):
    """Workers + cluster config over an MLP on the given dataset."""
    part = partition_fn(len(train), n_workers, rng=seed + 1)
    loaders = BatchLoader.for_workers(train, part, batch_size=batch_size, seed=seed + 2)
    workers = build_worker_group(
        n_workers,
        lambda: build_model(
            "mlp", in_features=n_features, n_classes=n_classes, hidden=hidden, rng=7
        ),
        lambda m: SGD(m, lr=lr, momentum=momentum),
        loaders,
    )
    cluster = ClusterConfig(
        n_workers=n_workers, seed=seed, comm_bytes=1e6, flops_per_sample=1e6
    )
    return workers, cluster


@pytest.fixture
def mlp_cluster(blobs_data):
    train, _ = blobs_data
    return make_mlp_cluster(train)


@pytest.fixture
def quick_cfg(blobs_data):
    _, test = blobs_data
    return TrainConfig(
        n_steps=40,
        eval_every=20,
        eval_fn=accuracy_eval(test),
        higher_is_better=True,
    )
