"""Neighbor-set invariants and edge cases for sync topologies.

The :meth:`Topology.neighbors` contract is property-tested across every
registered topology: no self-loops, all peers in range, links symmetric.
Structural facts (ring degree, tree connectivity with n-1 edges, PS
emptiness) are pinned explicitly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.network import NetworkModel
from repro.comm.topology import (
    TOPOLOGIES,
    PSTopology,
    RingTopology,
    TreeTopology,
    build_topology,
)

ALL_NAMES = sorted(TOPOLOGIES.names()) if hasattr(TOPOLOGIES, "names") else [
    "ps", "ring", "tree"
]


@settings(max_examples=200, deadline=None)
@given(
    name=st.sampled_from(ALL_NAMES),
    n_workers=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_neighbor_invariants(name, n_workers, data):
    topo = build_topology(name)
    rank = data.draw(st.integers(min_value=0, max_value=n_workers - 1))
    peers = topo.neighbors(rank, n_workers)
    assert isinstance(peers, frozenset)
    assert rank not in peers  # no self-loops
    assert all(0 <= p < n_workers for p in peers)  # in range
    for p in peers:  # symmetry: every link is seen from both ends
        assert rank in topo.neighbors(p, n_workers)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_neighbors_validates_arguments(name):
    topo = build_topology(name)
    with pytest.raises(ValueError):
        topo.neighbors(0, 0)
    with pytest.raises(ValueError):
        topo.neighbors(-1, 4)
    with pytest.raises(ValueError):
        topo.neighbors(4, 4)


class TestPS:
    @pytest.mark.parametrize("n", [1, 2, 7])
    def test_workers_never_peer_directly(self, n):
        topo = PSTopology()
        for r in range(n):
            assert topo.neighbors(r, n) == frozenset()


class TestRing:
    def test_single_worker_ring_collapses(self):
        assert RingTopology().neighbors(0, 1) == frozenset()

    def test_two_ring_is_one_link(self):
        topo = RingTopology()
        assert topo.neighbors(0, 2) == frozenset({1})
        assert topo.neighbors(1, 2) == frozenset({0})

    def test_ring_of_five(self):
        topo = RingTopology()
        assert topo.neighbors(0, 5) == frozenset({4, 1})
        assert topo.neighbors(2, 5) == frozenset({1, 3})
        assert topo.neighbors(4, 5) == frozenset({3, 0})

    @pytest.mark.parametrize("n", [3, 4, 9])
    def test_every_rank_has_degree_two(self, n):
        topo = RingTopology()
        for r in range(n):
            assert len(topo.neighbors(r, n)) == 2


class TestTree:
    def test_root_children(self):
        topo = TreeTopology()
        assert topo.neighbors(0, 7) == frozenset({1, 2})
        assert topo.neighbors(0, 2) == frozenset({1})
        assert topo.neighbors(0, 1) == frozenset()

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17])
    def test_connected_with_n_minus_one_edges(self, n):
        topo = TreeTopology()
        edges = set()
        for r in range(n):
            for p in topo.neighbors(r, n):
                edges.add(frozenset({r, p}))
        assert len(edges) == n - 1
        # BFS from the root reaches every rank → the edge set is one tree.
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for r in frontier:
                for p in topo.neighbors(r, n):
                    if p not in seen:
                        seen.add(p)
                        nxt.append(p)
            frontier = nxt
        assert seen == set(range(n))


class TestSyncTimeEdges:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_single_worker_sync_is_free(self, name):
        assert build_topology(name).sync_time(1e9, 1, NetworkModel()) == 0.0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_monotone_in_payload(self, name):
        topo = build_topology(name)
        net = NetworkModel()
        times = [topo.sync_time(b, 8, net) for b in (0.0, 1e3, 1e6, 1e9)]
        assert times == sorted(times)
        assert times[-1] > times[0]
