"""Tests for the parameter server."""

import numpy as np
import pytest

from repro.cluster.server import ParameterServer


@pytest.fixture
def ps():
    return ParameterServer(np.zeros(4))


class TestSynchronous:
    def test_pull_returns_copy(self, ps):
        v = ps.pull()
        v[0] = 99.0
        assert ps.pull()[0] == 0.0

    def test_aggregate_params_sets_mean(self, ps):
        out = ps.aggregate_params([np.full(4, 2.0), np.full(4, 4.0)])
        assert np.allclose(out, 3.0)
        assert np.allclose(ps.pull(), 3.0)
        assert ps.version == 1

    def test_aggregate_grads_does_not_move_global(self, ps):
        """GA returns the mean but leaves the global state — the divergence
        mechanism of §III-C."""
        mean = ps.aggregate_grads([np.full(4, 2.0), np.full(4, 4.0)])
        assert np.allclose(mean, 3.0)
        assert np.allclose(ps.pull(), 0.0)

    def test_empty_aggregation_raises(self, ps):
        with pytest.raises(ValueError):
            ps.aggregate_params([])

    def test_shape_check(self, ps):
        with pytest.raises(ValueError):
            ps.aggregate_params([np.zeros(3)])


class TestAsynchronous:
    def test_apply_accumulates(self, ps):
        ps.async_apply(np.full(4, 1.0))
        ps.async_apply(np.full(4, 2.0))
        assert np.allclose(ps.pull(), 3.0)

    def test_version_increments(self, ps):
        v1 = ps.async_apply(np.zeros(4))
        v2 = ps.async_apply(np.zeros(4))
        assert v2 == v1 + 1

    def test_shape_check(self, ps):
        with pytest.raises(ValueError):
            ps.async_apply(np.zeros(5))

    def test_init_copies(self):
        src = np.zeros(3)
        ps = ParameterServer(src)
        src[0] = 7.0
        assert ps.pull()[0] == 0.0
