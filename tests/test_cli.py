"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "resnet_cifar10"
        assert args.method == "selsync"
        assert args.delta == 0.3


class TestListing:
    def test_workloads_listed(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("resnet_cifar10", "vgg_cifar100", "alexnet_imagenet",
                     "transformer_wikitext"):
            assert name in out

    def test_methods_listed(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("bsp", "selsync", "fedavg", "ssp", "localsgd", "easgd"):
            assert name in out


class TestRun:
    ARGS = [
        "--workload", "resnet_cifar10",
        "--n-workers", "2",
        "--steps", "12",
        "--eval-every", "6",
        "--data-scale", "0.1",
        "--batch-size", "8",
    ]

    def test_run_selsync(self, capsys):
        assert main(["run", *self.ARGS, "--method", "selsync", "--delta", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "lssr" in out and "sim_time_s" in out

    def test_run_saves_log(self, tmp_path, capsys):
        log_path = tmp_path / "run.jsonl"
        assert main(
            ["run", *self.ARGS, "--method", "bsp", "--save-log", str(log_path)]
        ) == 0
        from repro.utils.serialization import load_runlog

        back = load_runlog(log_path)
        assert back.n_steps == 12

    def test_compare(self, capsys):
        assert main(
            ["compare", *self.ARGS, "--methods", "bsp,localsgd"]
        ) == 0
        out = capsys.readouterr().out
        assert "bsp" in out and "localsgd" in out

    def test_fig_quick_runner(self, capsys):
        assert main(["fig", "fig1a"]) == 0
        out = capsys.readouterr().out
        assert "resnet101" in out

    def test_fig_unknown_name(self, capsys):
        assert main(["fig", "fig99"]) == 2

    def test_results_collation(self, tmp_path, capsys):
        rdir = tmp_path / "results"
        rdir.mkdir()
        (rdir / "fig1.txt").write_text("table one")
        (rdir / "fig2.txt").write_text("table two")
        out_file = tmp_path / "RESULTS.md"
        assert main(
            ["results", "--results-dir", str(rdir), "--output", str(out_file)]
        ) == 0
        text = out_file.read_text()
        assert "## fig1" in text and "table two" in text

    def test_results_missing_dir(self, tmp_path):
        assert main(
            ["results", "--results-dir", str(tmp_path / "nope"),
             "--output", str(tmp_path / "r.md")]
        ) == 1

    def test_table1_single_workload(self, capsys):
        assert main(
            [
                "table1",
                "--workloads", "resnet_cifar10",
                "--n-workers", "2",
                "--steps", "12",
                "--eval-every", "6",
                "--data-scale", "0.1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "BSP" in out and "SelSync" in out
