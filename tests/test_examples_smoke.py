"""Smoke tests that actually execute every example script (at tiny scale).

Examples are documentation that compiles; these tests import each script,
shrink its module-level knobs, and run ``main()`` so the examples cannot rot
as the library evolves.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


def shrink(mod):
    """Make any example fast: fewer steps/workers if the knobs exist."""
    if hasattr(mod, "N_STEPS"):
        mod.N_STEPS = 16
    if hasattr(mod, "N_WORKERS"):
        mod.N_WORKERS = 2
    return mod


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "federated_noniid",
        "language_model",
        "compression_comparison",
        "adaptive_delta",
    ],
)
def test_example_runs(name, capsys):
    mod = shrink(load_example(name))
    mod.main()
    out = capsys.readouterr().out
    assert len(out) > 0  # every example prints a table


def test_selective_sync_sections(capsys):
    mod = shrink(load_example("selective_sync_cifar"))
    # This example exposes three section functions instead of main().
    mod.sweep_delta()
    mod.pa_vs_ga()
    mod.seldp_vs_defdp()
    out = capsys.readouterr().out
    assert "delta dial" in out
    assert "aggregation" in out
    assert "partitioning" in out
