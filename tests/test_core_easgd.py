"""Tests for the EASGD trainer (paper citation [37])."""

import numpy as np
import pytest

from repro.core import EASGDTrainer, TrainConfig
from tests.conftest import make_mlp_cluster


class TestElasticUpdate:
    def test_center_moves_toward_worker_mean(self, mlp_cluster):
        workers, cluster = mlp_cluster
        trainer = EASGDTrainer(workers, cluster, rho=0.2, tau=1)
        center_before = trainer.center.copy()
        trainer.step(0)
        worker_mean = np.mean([w.get_params() for w in workers], axis=0)
        d_before = np.linalg.norm(center_before - worker_mean)
        d_after = np.linalg.norm(trainer.center - worker_mean)
        assert d_after < d_before + 1e-12

    def test_workers_pulled_toward_center(self, mlp_cluster):
        workers, cluster = mlp_cluster
        trainer = EASGDTrainer(workers, cluster, rho=0.2, tau=1)
        # Displace one worker far away; one elastic round must shrink the gap.
        far = workers[0].get_params() + 10.0
        workers[0].set_params(far)
        gap_before = np.linalg.norm(far - trainer.center)
        trainer.step(0)
        gap_after = np.linalg.norm(workers[0].get_params() - trainer.center)
        assert gap_after < gap_before

    def test_tau_controls_sync_frequency(self, mlp_cluster, quick_cfg):
        workers, cluster = mlp_cluster
        trainer = EASGDTrainer(workers, cluster, rho=0.1, tau=4)
        res = trainer.run(quick_cfg)
        assert res.log.n_synced == quick_cfg.n_steps // 4
        assert res.lssr == pytest.approx(1 - 1 / 4, abs=0.05)

    def test_stability_guard(self, mlp_cluster):
        workers, cluster = mlp_cluster  # 4 workers
        with pytest.raises(ValueError, match="unstable"):
            EASGDTrainer(workers, cluster, rho=0.5)  # N*rho = 2

    def test_validation(self, mlp_cluster):
        workers, cluster = mlp_cluster
        with pytest.raises(ValueError):
            EASGDTrainer(workers, cluster, rho=0.0)
        with pytest.raises(ValueError):
            EASGDTrainer(workers, cluster, rho=0.1, tau=0)


class TestConvergence:
    def test_learns_blobs(self, mlp_cluster, quick_cfg):
        workers, cluster = mlp_cluster
        res = EASGDTrainer(workers, cluster, rho=0.2, tau=2).run(quick_cfg)
        assert res.final_metric > 0.7

    def test_deploy_model_is_center(self, mlp_cluster, quick_cfg):
        workers, cluster = mlp_cluster
        trainer = EASGDTrainer(workers, cluster, rho=0.2, tau=2)
        trainer.run(quick_cfg)
        assert np.array_equal(trainer.mean_params(), trainer.center)

    def test_elastic_bound_tighter_than_localsgd(self, blobs_data, quick_cfg):
        """EASGD's elastic pull keeps replicas closer together than pure
        local SGD over the same steps."""
        from repro.core import LocalSGDTrainer

        train, _ = blobs_data

        def spread(make):
            workers, cluster = make_mlp_cluster(train)
            make(workers, cluster).run(quick_cfg)
            p = np.stack([w.get_params() for w in workers])
            return float(np.linalg.norm(p - p.mean(axis=0), axis=1).mean())

        easgd = spread(lambda w, c: EASGDTrainer(w, c, rho=0.2, tau=2))
        local = spread(lambda w, c: LocalSGDTrainer(w, c))
        assert easgd < local
