"""Tests for the discrete-event queue."""

import pytest

from repro.cluster.simclock import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, worker=0)
        q.push(1.0, worker=1)
        q.push(2.0, worker=2)
        assert [q.pop().worker for _ in range(3)] == [1, 2, 0]

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        q.push(1.0, worker=5)
        q.push(1.0, worker=6)
        assert q.pop().worker == 5
        assert q.pop().worker == 6

    def test_clock_advances(self):
        q = EventQueue()
        q.push(2.5)
        q.pop()
        assert q.now == 2.5

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.push(5.0)
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0)
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0)
        assert q.peek_time() == 4.0
        assert len(q) == 1  # peek does not consume

    def test_payload_carried(self):
        q = EventQueue()
        q.push(1.0, worker=3, payload={"grad": 7})
        ev = q.pop()
        assert ev.payload["grad"] == 7
