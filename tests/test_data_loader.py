"""Tests for the mini-batch loader."""

import numpy as np
import pytest

from repro.data import ArrayDataset, BatchLoader, selsync_partition


@pytest.fixture
def dataset():
    return ArrayDataset(np.arange(40.0).reshape(20, 2), np.arange(20))


class TestBatchLoader:
    def test_sequential_first_epoch(self, dataset):
        order = np.arange(20)
        loader = BatchLoader(dataset, order, batch_size=5, reshuffle=False, rng=0)
        _, y = loader.next_batch()
        assert list(y) == [0, 1, 2, 3, 4]
        _, y = loader.next_batch()
        assert list(y) == [5, 6, 7, 8, 9]

    def test_epoch_wraps(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=8, reshuffle=False, rng=0)
        assert loader.epoch == 0
        loader.next_batch()
        loader.next_batch()
        loader.next_batch()  # 24 > 20 → wrap
        assert loader.epoch == 1

    def test_fractional_epoch_monotone(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=5, rng=0)
        vals = []
        for _ in range(10):
            vals.append(loader.fractional_epoch)
            loader.next_batch()
        assert vals == sorted(vals)

    def test_steps_per_epoch(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=6, rng=0)
        assert loader.steps_per_epoch == 3

    def test_reshuffle_changes_order(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=20, reshuffle=True, rng=0)
        _, y1 = loader.next_batch()
        _, y2 = loader.next_batch()
        assert not np.array_equal(y1, y2)
        assert np.array_equal(np.sort(y2), np.arange(20))  # still a permutation

    def test_no_reshuffle_repeats_order(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=20, reshuffle=False, rng=0)
        _, y1 = loader.next_batch()
        _, y2 = loader.next_batch()
        assert np.array_equal(y1, y2)

    def test_peek_does_not_consume(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=5, reshuffle=False, rng=0)
        peeked = loader.peek_indices(5)
        _, y = loader.next_batch()
        assert np.array_equal(peeked, y)

    def test_peek_wraps(self, dataset):
        loader = BatchLoader(dataset, np.arange(20), batch_size=5, reshuffle=False, rng=0)
        for _ in range(3):
            loader.next_batch()
        assert len(loader.peek_indices(10)) == 10

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            BatchLoader(dataset, np.arange(20), batch_size=0)
        with pytest.raises(ValueError):
            BatchLoader(dataset, np.zeros(0, dtype=int), batch_size=2)

    def test_for_workers_builds_independent_loaders(self, dataset):
        part = selsync_partition(20, 4, rng=0)
        loaders = BatchLoader.for_workers(dataset, part, batch_size=5, seed=0)
        assert len(loaders) == 4
        # Each loader walks its own rotated order.
        ys = [lo.next_batch()[1] for lo in loaders]
        combined = np.concatenate(ys)
        assert len(np.unique(combined)) == 20  # distinct chunks per worker
