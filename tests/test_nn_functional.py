"""Direct tests for the stateless functional kernels."""

import numpy as np
import pytest

from repro.nn import functional as F

RNG = np.random.default_rng(0)


class TestActivations:
    def test_relu_clamps(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.array_equal(F.relu(x), [0.0, 0.0, 3.0])

    def test_relu_grad_mask(self):
        x = np.array([-1.0, 2.0])
        g = F.relu_grad(x, np.ones(2))
        assert np.array_equal(g, [0.0, 1.0])

    def test_gelu_asymptotes(self):
        assert F.gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert F.gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_gelu_grad_matches_finite_difference(self):
        x = RNG.normal(size=16)
        eps = 1e-6
        num = (F.gelu(x + eps) - F.gelu(x - eps)) / (2 * eps)
        ana = F.gelu_grad(x, np.ones_like(x))
        assert np.allclose(num, ana, atol=1e-6)

    def test_sigmoid_range_and_symmetry(self):
        x = RNG.normal(size=32) * 5
        s = F.sigmoid(x)
        assert ((s > 0) & (s < 1)).all()
        assert np.allclose(F.sigmoid(-x), 1 - s)

    def test_sigmoid_stable_at_extremes(self):
        s = F.sigmoid(np.array([-1e4, 1e4]))
        assert np.isfinite(s).all()
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert s[1] == pytest.approx(1.0, abs=1e-12)


class TestSoftmaxBackward:
    def test_matches_jacobian(self):
        """softmax_backward must equal Jᵀ·g with J the softmax Jacobian."""
        x = RNG.normal(size=5)
        p = F.softmax(x)
        g = RNG.normal(size=5)
        jac = np.diag(p) - np.outer(p, p)
        expected = jac @ g
        assert np.allclose(F.softmax_backward(p, g), expected)


class TestConvPlumbing:
    def test_conv_out_size(self):
        assert F.conv_out_size(8, 3, 1, 0) == 6
        assert F.conv_out_size(8, 3, 2, 1) == 4
        with pytest.raises(ValueError):
            F.conv_out_size(2, 5, 1, 0)

    def test_im2col_patch_content(self):
        """The first row of the patch matrix is the top-left receptive field."""
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols, oh, ow = F.im2col(x, 2, 2, 1, 0)
        assert (oh, ow) == (3, 3)
        assert np.array_equal(cols[0], [0, 1, 4, 5])
        assert np.array_equal(cols[-1], [10, 11, 14, 15])

    def test_im2col_channel_layout(self):
        x = RNG.normal(size=(1, 2, 3, 3))
        cols, _, _ = F.im2col(x, 3, 3, 1, 0)
        # Single output position: channels concatenated in order.
        assert np.allclose(cols[0][:9], x[0, 0].ravel())
        assert np.allclose(cols[0][9:], x[0, 1].ravel())

    def test_col2im_counts_overlaps(self):
        """Every input position accumulates once per patch covering it."""
        x_shape = (1, 1, 3, 3)
        cols = np.ones((4, 4))  # 2x2 kernel, stride 1 → 4 patches of 4 taps
        back = F.col2im(cols, x_shape, 2, 2, 1, 0)
        # Center pixel is covered by all 4 patches, corners by exactly 1.
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0
