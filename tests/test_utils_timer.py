"""Tests for the wall timer."""

import time

from repro.utils.timer import WallTimer


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as t:
            time.sleep(0.02)
        assert 0.015 < t.elapsed < 0.5

    def test_ms_conversion(self):
        with WallTimer() as t:
            pass
        assert t.elapsed_ms == t.elapsed * 1e3

    def test_reusable(self):
        t = WallTimer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01
        assert t.elapsed != first or first == 0.0
