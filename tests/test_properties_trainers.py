"""Hypothesis property tests over trainer invariants.

These run tiny real training loops with randomized hyperparameters and check
the structural invariants that must hold for ANY configuration — the
relationships every figure/table in the paper silently assumes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BSPTrainer, SelSyncTrainer, TrainConfig
from repro.core.config import ClusterConfig
from repro.cluster.worker import build_worker_group
from repro.data import ArrayDataset, BatchLoader, selsync_partition
from repro.nn.models import build_model
from repro.optim import SGD

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def tiny_cluster(n_workers, seed, delta_data=1.0):
    rng = np.random.default_rng(0)
    ds = ArrayDataset(
        rng.normal(size=(96, 8)) * delta_data, rng.integers(0, 3, 96)
    )
    part = selsync_partition(len(ds), n_workers, rng=seed)
    loaders = BatchLoader.for_workers(ds, part, batch_size=8, seed=seed + 1)
    workers = build_worker_group(
        n_workers,
        lambda: build_model("mlp", in_features=8, n_classes=3, hidden=(8,), rng=5),
        lambda m: SGD(m, lr=0.05),
        loaders,
    )
    cluster = ClusterConfig(
        n_workers=n_workers, seed=seed, comm_bytes=1e6, flops_per_sample=1e6
    )
    return workers, cluster


@given(
    n_workers=st.integers(2, 5),
    delta=st.floats(0.0, 2.0),
    seed=st.integers(0, 50),
)
@SLOW
def test_selsync_invariants(n_workers, delta, seed):
    workers, cluster = tiny_cluster(n_workers, seed)
    trainer = SelSyncTrainer(workers, cluster, delta=delta)
    cfg = TrainConfig(n_steps=12, eval_every=12, eval_fn=None)
    res = trainer.run(cfg)

    # 1. LSSR always in [0, 1]; first step always syncs.
    assert 0.0 <= res.lssr <= 1.0
    assert res.log.iterations[0].synced

    # 2. Simulated time strictly positive and comm_time <= sim_time.
    for r in res.log.iterations:
        assert r.sim_time > 0.0
        assert 0.0 <= r.comm_time <= r.sim_time

    # 3. Sync count equals the group's accounting.
    assert trainer.group.n_syncs == res.log.n_synced

    # 4. After a PA sync step, replicas are byte-identical.
    if res.log.iterations[-1].synced:
        p0 = workers[0].get_params()
        for w in workers[1:]:
            assert np.array_equal(p0, w.get_params())

    # 5. Finite parameters throughout.
    assert np.isfinite(workers[0].get_params()).all()


@given(n_workers=st.integers(2, 5), seed=st.integers(0, 50))
@SLOW
def test_bsp_lockstep_invariants(n_workers, seed):
    workers, cluster = tiny_cluster(n_workers, seed)
    trainer = BSPTrainer(workers, cluster)
    cfg = TrainConfig(n_steps=8, eval_every=8, eval_fn=None)
    res = trainer.run(cfg)
    assert res.lssr == 0.0
    # Lock-step property holds at every step, not just at the end.
    p0 = workers[0].get_params()
    for w in workers[1:]:
        assert np.allclose(p0, w.get_params())


@given(
    delta_small=st.floats(0.0, 0.1),
    delta_big=st.floats(0.5, 5.0),
    seed=st.integers(0, 20),
)
@SLOW
def test_larger_delta_never_syncs_more(delta_small, delta_big, seed):
    """Monotonicity of the dial on a *fixed* trajectory prefix.

    A strictly larger δ cannot flag more steps on the same gradient-change
    sequence — we verify by replaying the recorded Δ(g) trace of the small-δ
    run against both thresholds.
    """
    workers, cluster = tiny_cluster(3, seed)
    trainer = SelSyncTrainer(workers, cluster, delta=delta_small)
    cfg = TrainConfig(n_steps=10, eval_every=10, eval_fn=None)
    res = trainer.run(cfg)
    trace = res.log.grad_changes()
    syncs_small = int(np.sum(trace >= delta_small))
    syncs_big = int(np.sum(trace >= delta_big))
    assert syncs_big <= syncs_small
