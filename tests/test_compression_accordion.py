"""Tests for the Accordion-style adaptive compressor."""

import numpy as np
import pytest

from repro.core.compression import AccordionCompressor, build_compressor

RNG = np.random.default_rng(0)


class TestRegimeSwitching:
    def test_stable_norms_use_low_ratio(self):
        """With constant gradient norms, Δ≈0 after the first step — the
        compressor must settle to the low (aggressive) ratio."""
        c = AccordionCompressor(
            low_ratio=0.01, high_ratio=0.5, delta=0.1, error_feedback=False,
            ewma_alpha=1.0, ewma_window=1,
        )
        g = RNG.normal(size=1000)
        msgs = [c.compress(g) for _ in range(10)]
        # First message: Δ=inf → critical → high ratio (500 kept).
        assert msgs[0].nbytes == 8 * 500
        # Later messages: stable → low ratio (10 kept).
        assert msgs[-1].nbytes == 8 * 10
        assert 0.0 < c.critical_fraction < 1.0

    def test_norm_spike_triggers_high_ratio(self):
        c = AccordionCompressor(
            low_ratio=0.01, high_ratio=0.5, delta=0.1, error_feedback=False,
            ewma_alpha=1.0, ewma_window=1,
        )
        g = RNG.normal(size=1000)
        for _ in range(5):
            c.compress(g)
        spike = c.compress(10.0 * g)  # 100x squared-norm jump
        assert spike.nbytes == 8 * 500

    def test_roundtrip_support(self):
        c = AccordionCompressor(error_feedback=False)
        g = RNG.normal(size=200)
        out = c.decompress(c.compress(g))
        support = np.flatnonzero(out)
        assert np.allclose(out[support], g[support])

    def test_registered(self):
        assert isinstance(build_compressor("accordion"), AccordionCompressor)

    def test_validation(self):
        with pytest.raises(ValueError):
            AccordionCompressor(low_ratio=0.5, high_ratio=0.1)
        with pytest.raises(ValueError):
            AccordionCompressor(delta=-1.0)

    def test_error_feedback_composes(self):
        """EF from the base class must work with regime switching."""
        c = AccordionCompressor(
            low_ratio=0.05, high_ratio=0.5, delta=0.1, error_feedback=True,
        )
        g = RNG.normal(size=100)
        total = np.zeros_like(g)
        for _ in range(40):
            total += c.decompress(c.compress(g))
        assert np.allclose(total / 40, g, atol=0.35)

    def test_clone_has_independent_tracker(self):
        c = AccordionCompressor()
        g = RNG.normal(size=64)
        c.compress(g)
        clone = c.clone()
        assert clone.n_total == c.n_total  # deep copy carries state...
        c.compress(g)
        assert clone.n_total != c.n_total  # ...but evolves independently


class TestEndToEndTraining:
    def test_bsp_with_accordion_learns(self):
        from repro.core import BSPTrainer, TrainConfig
        from repro.core.evaluation import accuracy_eval
        from repro.data import build_dataset
        from tests.conftest import make_mlp_cluster

        train, test = build_dataset(
            "blobs", n_train=256, n_test=64, n_features=16, n_classes=4, rng=0
        )
        workers, cluster = make_mlp_cluster(train)
        trainer = BSPTrainer(
            workers, cluster,
            compressor=AccordionCompressor(low_ratio=0.05, high_ratio=0.5, delta=0.05),
        )
        cfg = TrainConfig(n_steps=60, eval_every=30, eval_fn=accuracy_eval(test))
        res = trainer.run(cfg)
        assert res.final_metric > 0.7
