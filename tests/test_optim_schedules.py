"""Tests for learning-rate schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import ConstantLR, IntervalDecay, MultiStepDecay


class TestConstantLR:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(1000) == 0.1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1)(-1)


class TestMultiStepDecay:
    def test_paper_resnet_schedule_shape(self):
        """lr decays 10x at each milestone (paper: epochs 110, 150)."""
        s = MultiStepDecay(0.1, milestones=[110, 150], gamma=0.1)
        assert s(0) == 0.1
        assert s(109) == 0.1
        assert s(110) == pytest.approx(0.01)
        assert s(150) == pytest.approx(0.001)

    def test_milestones_must_ascend(self):
        with pytest.raises(ValueError):
            MultiStepDecay(0.1, milestones=[50, 10])

    def test_empty_milestones_is_constant(self):
        s = MultiStepDecay(0.1, milestones=[])
        assert s(99999) == 0.1

    @given(step=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_monotone_nonincreasing(self, step):
        s = MultiStepDecay(1.0, milestones=[10, 100, 1000], gamma=0.5)
        assert s(step + 1) <= s(step)


class TestIntervalDecay:
    def test_paper_transformer_schedule(self):
        """Decay 0.8× every 2000 iterations (paper §IV-A)."""
        s = IntervalDecay(2.0, interval=2000, gamma=0.8)
        assert s(0) == 2.0
        assert s(1999) == 2.0
        assert s(2000) == pytest.approx(1.6)
        assert s(4000) == pytest.approx(2.0 * 0.8**2)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            IntervalDecay(1.0, interval=0)

    @given(step=st.integers(0, 50_000))
    @settings(max_examples=50, deadline=None)
    def test_always_positive(self, step):
        assert IntervalDecay(2.0, interval=100, gamma=0.8)(step) > 0.0
