"""Integration tests for elastic membership through the trainer stack.

The contracts under test, on a tiny seeded SelSync workload:

* a planned mid-run join + drain completes with finite loss, emits the
  typed ``membership``/``repartition``/``scale_decision`` events, and
  every post-event partition union covers the full dataset;
* elastic runs are executor-independent — serial, threaded and process
  backends produce byte-identical traces and parameters;
* ``--elastic off`` is free: the trajectory is bitwise identical to a
  config that never mentions elasticity, no elastic event ever appears,
  and checkpoints carry no ``elastic`` section;
* kill-and-resume across a membership change is bitwise identical to the
  uninterrupted run (the resumed trainer rebuilds the grown worker group
  from a config that still says ``n_workers=3``);
* SSP's event-driven loop refuses elasticity loudly.
"""

import numpy as np
import pytest

from repro.cluster import ElasticContext
from repro.cluster.worker import build_worker_group
from repro.core import ClusterConfig, SSPTrainer, SelSyncTrainer, TrainConfig
from repro.data import ArrayDataset, BatchLoader, selsync_partition
from repro.nn.models import build_model
from repro.obs import Tracer
from repro.obs.sink import event_lines
from repro.optim import SGD

N_WORKERS = 3
N_STEPS = 14
N_SAMPLES = 96
PLAN = "join:+2@4,drain:w1@8"


def _dataset():
    rng = np.random.default_rng(0)
    return ArrayDataset(
        rng.normal(size=(N_SAMPLES, 8)), rng.integers(0, 3, N_SAMPLES)
    )


def _build(elastic_spec=None, executor="serial", **cluster_kw):
    ds = _dataset()
    part = selsync_partition(N_SAMPLES, N_WORKERS, rng=1)
    loaders = BatchLoader.for_workers(ds, part, batch_size=8, seed=2)
    model_factory = lambda: build_model("mlp", in_features=8, n_classes=3, rng=5)
    opt_factory = lambda m: SGD(m, lr=0.1, momentum=0.9)
    workers = build_worker_group(N_WORKERS, model_factory, opt_factory, loaders)
    cluster = ClusterConfig(
        n_workers=N_WORKERS,
        comm_bytes=1e6,
        flops_per_sample=1e6,
        executor=executor,
        elastic_spec=elastic_spec,
        **cluster_kw,
    )
    trainer = SelSyncTrainer(workers, cluster, delta=0.1)
    if trainer.elastic is not None:
        trainer.bind_elastic(
            ElasticContext(
                model_factory=model_factory,
                optimizer_factory=opt_factory,
                dataset=ds,
                batch_size=8,
                partition_fn=selsync_partition,
            )
        )
    return trainer


def _run(elastic_spec=None, executor="serial", trace_path=None, **cfg_kw):
    trainer = _build(elastic_spec=elastic_spec, executor=executor)
    tracer = Tracer(path=trace_path, name="elastic") if trace_path else None
    try:
        res = trainer.run(
            TrainConfig(n_steps=N_STEPS, eval_fn=None, tracer=tracer, **cfg_kw)
        )
    finally:
        trainer.executor.shutdown()
        if tracer is not None:
            tracer.close()
    return trainer, res


def _of_type(tracer_or_events, etype):
    events = getattr(tracer_or_events, "events", tracer_or_events)
    return [e for e in events if e.etype == etype]


class TestJoinDrainMechanics:
    @pytest.fixture(scope="class")
    def traced_run(self):
        trainer = _build(elastic_spec=PLAN)
        tracer = Tracer(name="elastic")
        res = trainer.run(
            TrainConfig(n_steps=N_STEPS, eval_fn=None, tracer=tracer)
        )
        return trainer, tracer, res

    def test_run_completes_with_finite_loss(self, traced_run):
        trainer, _, res = traced_run
        assert len(trainer.workers) == N_WORKERS + 2 - 1
        assert all(np.isfinite(r.loss) for r in res.log.iterations)

    def test_membership_events_are_typed(self, traced_run):
        _, tracer, _ = traced_run
        events = _of_type(tracer, "membership")
        joins = [e for e in events if e.data["action"] == "join"]
        drains = [e for e in events if e.data["action"] == "drain"]
        assert [e.step for e in joins] == [4, 4]
        assert sorted(e.data["uid"] for e in joins) == [3, 4]
        assert all(e.data["bootstrap"] == "donor_consensus" for e in joins)
        assert [e.step for e in drains] == [8]
        assert drains[0].data["uid"] == 1
        assert (drains[0].data["size_before"], drains[0].data["size_after"]) == (5, 4)

    def test_repartition_covers_full_dataset(self, traced_run):
        """Every membership change re-rotates SelDP over the new world
        size; the union of the new partition must cover every sample."""
        _, tracer, _ = traced_run
        reparts = _of_type(tracer, "repartition")
        assert [e.step for e in reparts] == [4, 8]
        for e in reparts:
            assert e.data["scheme"] == "seldp"
            assert e.data["coverage"] == 1.0
            assert e.data["n_samples"] == N_SAMPLES

    def test_final_partition_union_covers_dataset(self, traced_run):
        trainer, _, _ = traced_run
        seen = np.concatenate(
            [np.unique(w.loader.order) for w in trainer.workers]
        )
        assert np.array_equal(np.unique(seen), np.arange(N_SAMPLES))

    def test_world_size_gauge_tracks_membership(self, traced_run):
        _, tracer, _ = traced_run
        assert tracer.metrics.get("cluster.world_size") == 4.0
        assert tracer.metrics.get("elastic.joins") == 2.0
        assert tracer.metrics.get("elastic.drains") == 1.0

    def test_provisioning_charged_in_sim_seconds(self, traced_run):
        """The join step carries the boot + transfer charge on the clock."""
        _, _, res = traced_run
        recs = res.log.iterations
        assert recs[4].extra.get("provision_s", 0.0) > 0.0
        assert recs[4].sim_time > recs[3].sim_time


class TestExecutorIndependence:
    def test_traces_and_params_byte_identical(self, tmp_path):
        params, traces = {}, {}
        for ex in ("serial", "threaded", "process"):
            path = tmp_path / f"{ex}.jsonl"
            trainer, _ = _run(elastic_spec=PLAN, executor=ex, trace_path=path)
            params[ex] = [w.get_params() for w in trainer.workers]
            traces[ex] = path.read_bytes()
        assert traces["serial"] == traces["threaded"] == traces["process"]
        for ex in ("threaded", "process"):
            for a, b in zip(params["serial"], params[ex]):
                np.testing.assert_array_equal(a, b)


class TestElasticOffIsFree:
    def test_off_matches_never_configured(self, tmp_path):
        t_base, r_base = _run(elastic_spec=None)
        t_off, r_off = _run(
            elastic_spec="off", trace_path=tmp_path / "off.jsonl"
        )
        for a, b in zip(t_base.workers, t_off.workers):
            np.testing.assert_array_equal(a.get_params(), b.get_params())
        assert [r.loss for r in r_base.log.iterations] == [
            r.loss for r in r_off.log.iterations
        ]
        assert [r.sim_time for r in r_base.log.iterations] == [
            r.sim_time for r in r_off.log.iterations
        ]
        for line in event_lines(tmp_path / "off.jsonl"):
            assert '"membership"' not in line
            assert '"scale_decision"' not in line
            assert '"repartition"' not in line

    def test_off_checkpoint_has_no_elastic_section(self):
        trainer = _build(elastic_spec="off")
        assert trainer.elastic is None
        assert "elastic" not in trainer.state_dict()

    def test_on_checkpoint_has_elastic_section(self):
        trainer = _build(elastic_spec=PLAN)
        state = trainer.state_dict()
        assert state["elastic"]["world_size"] == N_WORKERS
        assert state["elastic"]["controller"]["uids"] == [0, 1, 2]


class TestKillAndResume:
    @pytest.mark.parametrize("kill_at", [6, 3], ids=["after-change", "before-change"])
    def test_bitwise_identical_across_membership_change(self, tmp_path, kill_at):
        """Checkpoint after the join (resume must rebuild a 5-worker group
        from a 3-worker config) or before any change (plain path) — either
        way the continuation is bitwise identical to the full run."""
        ck_full = str(tmp_path / "full.npz")
        ck = str(tmp_path / "kill.npz")
        t_full, r_full = _run(
            elastic_spec=PLAN, checkpoint_every=kill_at, checkpoint_path=ck_full
        )
        _run(
            elastic_spec=PLAN,
            checkpoint_every=kill_at,
            checkpoint_path=ck,
            stop_after=kill_at,
        )
        t_res, r_res = _run(
            elastic_spec=PLAN,
            checkpoint_every=kill_at,
            checkpoint_path=ck,
            resume_from=ck,
        )
        assert len(t_res.workers) == len(t_full.workers)
        for a, b in zip(t_full.workers, t_res.workers):
            np.testing.assert_array_equal(a.get_params(), b.get_params())
        full = {r.step: r for r in r_full.log.iterations}
        for r in r_res.log.iterations:
            assert r.loss == full[r.step].loss
            assert r.sim_time == full[r.step].sim_time


class TestSSPGate:
    def test_ssp_refuses_elasticity(self):
        ds = _dataset()
        part = selsync_partition(N_SAMPLES, N_WORKERS, rng=1)
        loaders = BatchLoader.for_workers(ds, part, batch_size=8, seed=2)
        workers = build_worker_group(
            N_WORKERS,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=0.1),
            loaders,
        )
        cluster = ClusterConfig(
            n_workers=N_WORKERS,
            comm_bytes=1e6,
            flops_per_sample=1e6,
            elastic_spec="join:+1@5",
        )
        with pytest.raises(NotImplementedError, match="elastic scaling"):
            SSPTrainer(workers, cluster)
