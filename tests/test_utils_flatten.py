"""Tests for flatten/unflatten helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.flatten import flatten_arrays, unflatten_like, tree_map


class TestFlatten:
    def test_concatenates_in_order(self):
        a = np.array([1.0, 2.0])
        b = np.array([[3.0], [4.0]])
        assert np.array_equal(flatten_arrays([a, b]), [1, 2, 3, 4])

    def test_empty_list(self):
        assert flatten_arrays([]).size == 0

    def test_promotes_to_float64(self):
        out = flatten_arrays([np.array([1, 2], dtype=np.float32)])
        assert out.dtype == np.float64


class TestUnflatten:
    def test_roundtrip(self):
        arrays = [np.arange(6.0).reshape(2, 3), np.arange(4.0)]
        flat = flatten_arrays(arrays)
        back = unflatten_like(flat, arrays)
        for orig, rec in zip(arrays, back):
            assert np.array_equal(orig, rec)
            assert orig.shape == rec.shape

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError, match="5 elements"):
            unflatten_like(np.zeros(5), [np.zeros((2, 3))])

    def test_preserves_dtype(self):
        t = [np.zeros(3, dtype=np.float32)]
        out = unflatten_like(np.ones(3), t)
        assert out[0].dtype == np.float32


class TestTreeMap:
    def test_applies_function(self):
        out = tree_map(lambda a: a * 2, [np.ones(2), np.ones(3)])
        assert np.array_equal(out[0], [2, 2])
        assert np.array_equal(out[1], [2, 2, 2])


@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
    )
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(shapes):
    rng = np.random.default_rng(0)
    arrays = [rng.normal(size=s) for s in shapes]
    flat = flatten_arrays(arrays)
    assert flat.size == sum(a.size for a in arrays)
    back = unflatten_like(flat, arrays)
    for orig, rec in zip(arrays, back):
        assert np.allclose(orig, rec)
