"""Tests for randomized data injection (paper §III-E, Eqn. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.injection import DataInjector, injected_batch_size


class TestBatchSizeFormula:
    def test_eqn3_exactly(self):
        """Eqn. (3): b' = b / (1 + αβN). At (0.5, 0.5), N=10, b=32 this is
        32/3.5 ≈ 9. (The paper's §IV-E quotes b'=11, which does not satisfy
        its own Eqn. 3 — we implement the equation; see EXPERIMENTS.md.)"""
        assert injected_batch_size(32, 0.5, 0.5, 10) == 9

    def test_eqn3_heavy_config(self):
        """(0.75, 0.75) at N=10, b=32: 32/6.625 ≈ 5 (paper quotes 6)."""
        assert injected_batch_size(32, 0.75, 0.75, 10) == 5

    def test_no_injection_keeps_b(self):
        assert injected_batch_size(32, 0.0, 0.5, 10) == 32
        assert injected_batch_size(32, 0.5, 0.0, 10) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            injected_batch_size(0, 0.5, 0.5, 4)
        with pytest.raises(ValueError):
            injected_batch_size(32, 1.5, 0.5, 4)
        with pytest.raises(ValueError):
            injected_batch_size(32, 0.5, 0.5, 0)

    @given(
        b=st.integers(1, 512),
        alpha=st.floats(0.0, 1.0),
        beta=st.floats(0.0, 1.0),
        n=st.integers(1, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_cumulative_batch_near_b(self, b, alpha, beta, n):
        """b'(1 + αβN) ≈ b within rounding (plus the b' ≥ 1 floor)."""
        bp = injected_batch_size(b, alpha, beta, n)
        assert 1 <= bp <= b
        factor = 1 + alpha * beta * n
        cumulative = bp * factor
        # Rounding moves b' by ≤ 0.5; the floor can only push cumulative up
        # to `factor` when b is tiny.
        upper = max(b + 0.5 * factor, factor)
        lower = b - 0.5 * factor
        assert lower <= cumulative <= upper


def make_batches(n_workers, b, n_features=4, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.normal(size=(b, n_features)), np.full(b, w))
        for w in range(n_workers)
    ]


class TestDataInjector:
    def test_all_workers_receive_same_pool(self):
        inj = DataInjector(0.5, 0.5, 4, sample_nbytes=32, rng=0)
        batches = make_batches(4, 8)
        res = inj.inject(batches)
        # Injected suffix identical across workers.
        suffix0 = res.batches[0][0][8:]
        for n in range(1, 4):
            assert np.array_equal(res.batches[n][0][8:], suffix0)

    def test_batch_grows_by_pool_size(self):
        inj = DataInjector(0.5, 0.5, 4, rng=0)
        res = inj.inject(make_batches(4, 8))
        pool = 2 * 4  # 2 donors × β·8 samples
        for x, y in res.batches:
            assert len(x) == 8 + pool

    def test_donor_labels_present_in_receivers(self):
        """Receivers see labels they do not own — the non-IID fix."""
        inj = DataInjector(0.5, 1.0, 4, rng=0)
        res = inj.inject(make_batches(4, 6))
        donors = set(res.donors.tolist())
        for n in range(4):
            labels = set(res.batches[n][1].tolist())
            assert donors <= labels

    def test_zero_alpha_is_noop(self):
        inj = DataInjector(0.0, 0.5, 4, rng=0)
        batches = make_batches(4, 8)
        res = inj.inject(batches)
        assert res.bytes_transferred == 0
        for (x, _), (x0, _) in zip(res.batches, batches):
            assert np.array_equal(x, x0)

    def test_bytes_accounting(self):
        inj = DataInjector(0.5, 0.5, 4, sample_nbytes=100, rng=0)
        res = inj.inject(make_batches(4, 8))
        pool = 2 * 4
        assert res.bytes_transferred == pool * 100 * 3  # N-1 receivers

    def test_donor_count(self):
        assert DataInjector(0.5, 0.5, 4).n_donors() == 2
        assert DataInjector(0.6, 0.5, 4).n_donors() == 3  # ceil

    def test_wrong_batch_count_raises(self):
        inj = DataInjector(0.5, 0.5, 4, rng=0)
        with pytest.raises(ValueError):
            inj.inject(make_batches(3, 8))

    def test_donors_vary_across_iterations(self):
        """Per-iteration random donor choice is the privacy mechanism."""
        inj = DataInjector(0.5, 0.5, 8, rng=0)
        donor_sets = set()
        for _ in range(20):
            res = inj.inject(make_batches(8, 4))
            donor_sets.add(tuple(res.donors.tolist()))
        assert len(donor_sets) > 1

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            DataInjector(1.5, 0.5, 4)
