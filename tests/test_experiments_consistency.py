"""Cross-registry consistency checks for the experiments layer.

These catch drift between the figure generators, the workload registry and
the paper-profile constants — the kind of mismatch that silently produces a
bench exercising the wrong configuration.
"""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.figures import (
    BENCH_DATASET_OVERRIDES,
    PAPER_PROFILES,
    WORKERS_PER_NODE,
)
from repro.experiments.runner import MethodSpec, _TRAINERS
from repro.experiments.table1 import DEFAULT_METHODS, DEFAULT_WORKLOADS
from repro.experiments.workloads import WORKLOADS, get_workload


class TestPaperProfiles:
    def test_four_model_families(self):
        assert set(PAPER_PROFILES) == {
            "resnet101", "vgg11", "alexnet", "transformer",
        }

    def test_profiles_positive(self):
        for nbytes, flops, batch in PAPER_PROFILES.values():
            assert nbytes > 0 and flops > 0 and batch > 0

    def test_vgg_is_biggest_model(self):
        """The 507 MB claim that drives Fig. 1a's worst curve."""
        assert PAPER_PROFILES["vgg11"][0] == max(
            p[0] for p in PAPER_PROFILES.values()
        )

    def test_paper_cluster_shapes(self):
        """§IV-A: 8- and 16-worker clusters pack 2 and 4 GPUs per node."""
        assert WORKERS_PER_NODE[8] == 2
        assert WORKERS_PER_NODE[16] == 4


class TestRegistryCoherence:
    def test_table1_workloads_exist(self):
        for name in DEFAULT_WORKLOADS:
            assert name in WORKLOADS

    def test_table1_methods_buildable(self):
        for spec in DEFAULT_METHODS:
            assert spec.kind in _TRAINERS

    def test_table1_covers_paper_grid(self):
        kinds = [m.kind for m in DEFAULT_METHODS]
        assert kinds.count("bsp") == 1
        assert kinds.count("fedavg") == 4
        assert kinds.count("ssp") == 2
        assert kinds.count("selsync") == 2

    def test_bench_overrides_reference_real_workloads(self):
        for name in BENCH_DATASET_OVERRIDES:
            assert name in WORKLOADS

    def test_workload_paper_constants_match_profiles(self):
        """Workload specs and figure profiles must agree on testbed bytes."""
        pairs = {
            "resnet_cifar10": "resnet101",
            "vgg_cifar100": "vgg11",
            "alexnet_imagenet": "alexnet",
            "transformer_wikitext": "transformer",
        }
        for wname, pname in pairs.items():
            w = get_workload(wname)
            assert w.paper_comm_bytes == PAPER_PROFILES[pname][0]
            assert w.paper_flops_per_sample == PAPER_PROFILES[pname][1]


class TestFigureDefaults:
    def test_fig1a_covers_paper_cluster_sizes(self):
        out = figures.fig1a_relative_throughput()
        assert all(len(v) == 5 for v in out.values())

    def test_fig12_default_configs_are_paper_alpha_beta(self):
        import inspect

        sig = inspect.signature(figures.fig12_noniid_injection)
        configs = sig.parameters["configs"].default
        assert [(a, b) for a, b, _ in configs] == [
            (0.5, 0.5), (0.5, 0.5), (0.75, 0.75),
        ]
