"""Layer semantics beyond gradients: shapes, modes, validation."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadSelfAttention,
    Residual,
    Sequential,
)

RNG = np.random.default_rng(0)


class TestShapes:
    def test_linear_output_shape(self):
        assert Linear(5, 7, rng=0).forward(RNG.normal(size=(3, 5))).shape == (3, 7)

    def test_conv_output_shape(self):
        out = Conv2d(3, 8, 3, stride=2, padding=1, rng=0).forward(
            RNG.normal(size=(2, 3, 16, 16))
        )
        assert out.shape == (2, 8, 8, 8)

    def test_maxpool_shape(self):
        out = MaxPool2d(2).forward(RNG.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 3, 4, 4)

    def test_avgpool_matches_mean(self):
        x = RNG.normal(size=(1, 1, 4, 4))
        out = AvgPool2d(2).forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())

    def test_flatten_roundtrip(self):
        f = Flatten()
        x = RNG.normal(size=(2, 3, 4))
        out = f.forward(x)
        assert out.shape == (2, 12)
        assert f.backward(out).shape == x.shape

    def test_attention_preserves_shape(self):
        out = MultiHeadSelfAttention(8, 2, rng=0).forward(RNG.normal(size=(2, 5, 8)))
        assert out.shape == (2, 5, 8)


class TestValidation:
    def test_linear_wrong_features(self):
        with pytest.raises(ValueError, match="last dim"):
            Linear(5, 3, rng=0).forward(RNG.normal(size=(2, 4)))

    def test_conv_wrong_channels(self):
        with pytest.raises(ValueError, match="Conv2d expected"):
            Conv2d(3, 4, 3, rng=0).forward(RNG.normal(size=(2, 2, 8, 8)))

    def test_conv_kernel_too_large(self):
        with pytest.raises(ValueError, match="collapsed"):
            Conv2d(1, 1, 9, rng=0).forward(RNG.normal(size=(1, 1, 4, 4)))

    def test_attention_head_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadSelfAttention(7, 2, rng=0)

    def test_dropout_probability_range(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_embedding_rejects_floats(self):
        with pytest.raises(TypeError):
            Embedding(10, 4, rng=0).forward(np.zeros((2, 3)))

    def test_embedding_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Embedding(10, 4, rng=0).forward(np.array([[11]]))

    def test_residual_shape_mismatch(self):
        body = Conv2d(2, 4, 3, stride=2, padding=1, rng=0)
        with pytest.raises(ValueError, match="projection"):
            Residual(body).forward(RNG.normal(size=(1, 2, 4, 4)))


class TestBatchNorm:
    def test_normalizes_in_train_mode(self):
        bn = BatchNorm2d(3)
        x = RNG.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-8
        assert out.std() == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_converge(self):
        bn = BatchNorm2d(1, momentum=0.5)
        x = RNG.normal(loc=3.0, size=(64, 1, 2, 2))
        for _ in range(20):
            bn.forward(x)
        assert bn.running_mean[0] == pytest.approx(x.mean(), abs=0.1)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1)
        x = RNG.normal(size=(16, 1, 2, 2))
        bn.forward(x)
        bn.eval()
        y1 = bn.forward(x[:4])
        y2 = bn.forward(x[:4])
        assert np.array_equal(y1, y2)  # deterministic in eval

    def test_running_buffers_not_parameters(self):
        bn = BatchNorm2d(2)
        names = [n for n, _ in bn.named_parameters()]
        assert set(names) == {"weight", "bias"}


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(8)
        x = RNG.normal(loc=4.0, size=(3, 8))
        out = ln.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)

    def test_wrong_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(8).forward(RNG.normal(size=(3, 7)))


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.9, rng=0)
        d.eval()
        x = RNG.normal(size=(4, 5))
        assert np.array_equal(d.forward(x), x)

    def test_train_scales_kept_units(self):
        d = Dropout(0.5, rng=0)
        x = np.ones((2000,))
        out = d.forward(x)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # 1 / (1 - 0.5)
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_zero_probability_identity(self):
        d = Dropout(0.0)
        x = RNG.normal(size=(3, 3))
        assert np.array_equal(d.forward(x), x)


class TestEmbedding:
    def test_lookup(self):
        e = Embedding(10, 4, rng=0)
        ids = np.array([[1, 2], [2, 1]])
        out = e.forward(ids)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[0, 1], out[1, 0])  # same token, same vector

    def test_repeated_tokens_accumulate_gradient(self):
        e = Embedding(5, 2, rng=0)
        ids = np.array([1, 1, 1])
        e.forward(ids)
        e.backward(np.ones((3, 2)))
        assert np.allclose(e.weight.grad[1], [3.0, 3.0])
        assert not np.any(e.weight.grad[0])


class TestAttentionCausality:
    def test_causal_mask_blocks_future(self):
        """Changing a future token must not affect earlier outputs."""
        attn = MultiHeadSelfAttention(8, 2, causal=True, rng=0)
        x = RNG.normal(size=(1, 5, 8))
        out1 = attn.forward(x)
        x2 = x.copy()
        x2[0, 4] += 10.0  # perturb the last position only
        out2 = attn.forward(x2)
        assert np.allclose(out1[0, :4], out2[0, :4])
        assert not np.allclose(out1[0, 4], out2[0, 4])

    def test_noncausal_sees_everything(self):
        attn = MultiHeadSelfAttention(8, 2, causal=False, rng=0)
        x = RNG.normal(size=(1, 5, 8))
        out1 = attn.forward(x)
        x2 = x.copy()
        x2[0, 4] += 10.0
        out2 = attn.forward(x2)
        assert not np.allclose(out1[0, 0], out2[0, 0])


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        p = F.softmax(RNG.normal(size=(4, 7)))
        assert np.allclose(p.sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        p = F.softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(p).all()

    def test_log_softmax_matches_log_of_softmax(self):
        x = RNG.normal(size=(3, 5))
        assert np.allclose(F.log_softmax(x), np.log(F.softmax(x)))

    def test_one_hot(self):
        oh = F.one_hot(np.array([0, 2]), 3)
        assert np.array_equal(oh, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_im2col_col2im_adjoint(self):
        """col2im must be the exact adjoint of im2col: <Ax, y> == <x, A'y>."""
        x = RNG.normal(size=(2, 3, 6, 6))
        cols, oh, ow = F.im2col(x, 3, 3, 2, 1)
        y = RNG.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, 3, 3, 2, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)
