"""Failure-injection tests: the library must fail loudly and precisely.

A distributed-training library that silently mangles shapes or swallows
NaNs produces wrong papers; these tests pin the error behaviour.
"""

import numpy as np
import pytest

from repro.core import ClusterConfig, SelSyncTrainer, TrainConfig
from repro.core.grad_tracker import RelativeGradChange
from repro.cluster.server import ParameterServer
from repro.cluster.worker import build_worker_group
from repro.data import ArrayDataset, BatchLoader, selsync_partition
from repro.nn.models import build_model
from repro.optim import SGD
from repro.utils.ewma import Ewma


class TestNanPropagation:
    def test_ewma_rejects_nan_grad_norm(self):
        """A NaN gradient norm (diverged model) must raise, not smooth."""
        tracker = RelativeGradChange()
        with pytest.raises(ValueError, match="non-finite"):
            tracker._ewma.update(float("nan"))

    def test_exploding_lr_produces_detectable_divergence(self):
        """With an absurd LR the loss blows up; the library must keep
        reporting rather than crash mid-run, and the numbers must reveal
        the explosion (no silent clipping)."""
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(size=(64, 8)), rng.integers(0, 3, 64))
        part = selsync_partition(64, 2, rng=1)
        loaders = BatchLoader.for_workers(ds, part, batch_size=8, seed=2)
        workers = build_worker_group(
            2,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=50.0),
            loaders,
        )
        cluster = ClusterConfig(n_workers=2, comm_bytes=1e6, flops_per_sample=1e6)
        trainer = SelSyncTrainer(workers, cluster, delta=0.3)
        res = trainer.run(TrainConfig(n_steps=15, eval_every=15, eval_fn=None))
        losses = res.log.losses()
        assert losses[-1] > losses[0] or not np.isfinite(losses[-1])


class TestShapeMismatches:
    def test_ps_rejects_foreign_model(self):
        ps = ParameterServer(np.zeros(10))
        with pytest.raises(ValueError):
            ps.aggregate_params([np.zeros(11)])

    def test_worker_rejects_foreign_gradient(self):
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(size=(32, 8)), rng.integers(0, 3, 32))
        loaders = [BatchLoader(ds, np.arange(32), batch_size=8, rng=0)]
        workers = build_worker_group(
            1,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=0.1),
            loaders,
        )
        with pytest.raises(ValueError):
            workers[0].apply_gradient(np.zeros(3), lr=0.1)


class TestEmptyAndDegenerate:
    def test_single_worker_cluster_works(self):
        """N=1 degenerates gracefully: no communication cost anywhere."""
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(size=(32, 8)), rng.integers(0, 3, 32))
        loaders = [BatchLoader(ds, np.arange(32), batch_size=8, rng=0)]
        workers = build_worker_group(
            1,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=0.1),
            loaders,
        )
        cluster = ClusterConfig(n_workers=1, comm_bytes=1e9, flops_per_sample=1e6)
        trainer = SelSyncTrainer(workers, cluster, delta=0.0)
        res = trainer.run(TrainConfig(n_steps=5, eval_every=5, eval_fn=None))
        assert res.log.total_comm_time == 0.0

    def test_ewma_window_one_degenerates_to_identity(self):
        e = Ewma(alpha=0.5, window=1)
        assert e.update(3.0) == 3.0
        assert e.update(9.0) == 9.0

    def test_train_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(n_steps=0)
        with pytest.raises(ValueError):
            TrainConfig(eval_every=0)
        with pytest.raises(ValueError):
            TrainConfig(patience=0)

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=0)
