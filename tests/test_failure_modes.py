"""Failure-injection tests: the library must fail loudly and precisely.

A distributed-training library that silently mangles shapes or swallows
NaNs produces wrong papers; these tests pin the error behaviour.
"""

import numpy as np
import pytest

from repro.cluster.faults import QuorumLostError
from repro.core import (
    BSPTrainer,
    ClusterConfig,
    SSPTrainer,
    SelSyncTrainer,
    TrainConfig,
)
from repro.core.grad_tracker import RelativeGradChange
from repro.cluster.server import ParameterServer
from repro.cluster.worker import build_worker_group
from repro.data import ArrayDataset, BatchLoader, selsync_partition
from repro.nn.models import build_model
from repro.optim import SGD
from repro.utils.ewma import Ewma


def _mlp_workers(n, lr=0.1, n_samples=64, batch_size=8):
    rng = np.random.default_rng(0)
    ds = ArrayDataset(rng.normal(size=(n_samples, 8)), rng.integers(0, 3, n_samples))
    part = selsync_partition(n_samples, n, rng=1)
    loaders = BatchLoader.for_workers(ds, part, batch_size=batch_size, seed=2)
    return build_worker_group(
        n,
        lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
        lambda m: SGD(m, lr=lr),
        loaders,
    )


def _cluster(n=4, **kw):
    return ClusterConfig(n_workers=n, comm_bytes=1e6, flops_per_sample=1e6, **kw)


def _cfg(steps=10):
    return TrainConfig(n_steps=steps, eval_every=steps, eval_fn=None)


class TestNanPropagation:
    def test_ewma_rejects_nan_grad_norm(self):
        """A NaN gradient norm (diverged model) must raise, not smooth."""
        tracker = RelativeGradChange()
        with pytest.raises(ValueError, match="non-finite"):
            tracker.update(float("nan"))

    def test_exploding_lr_produces_detectable_divergence(self):
        """With an absurd LR the loss blows up; the library must keep
        reporting rather than crash mid-run, and the numbers must reveal
        the explosion (no silent clipping)."""
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(size=(64, 8)), rng.integers(0, 3, 64))
        part = selsync_partition(64, 2, rng=1)
        loaders = BatchLoader.for_workers(ds, part, batch_size=8, seed=2)
        workers = build_worker_group(
            2,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=50.0),
            loaders,
        )
        cluster = ClusterConfig(n_workers=2, comm_bytes=1e6, flops_per_sample=1e6)
        trainer = SelSyncTrainer(workers, cluster, delta=0.3)
        res = trainer.run(TrainConfig(n_steps=15, eval_every=15, eval_fn=None))
        losses = res.log.losses()
        assert losses[-1] > losses[0] or not np.isfinite(losses[-1])


class TestShapeMismatches:
    def test_ps_rejects_foreign_model(self):
        ps = ParameterServer(np.zeros(10))
        with pytest.raises(ValueError):
            ps.aggregate_params([np.zeros(11)])

    def test_worker_rejects_foreign_gradient(self):
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(size=(32, 8)), rng.integers(0, 3, 32))
        loaders = [BatchLoader(ds, np.arange(32), batch_size=8, rng=0)]
        workers = build_worker_group(
            1,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=0.1),
            loaders,
        )
        with pytest.raises(ValueError):
            workers[0].apply_gradient(np.zeros(3), lr=0.1)


class TestEmptyAndDegenerate:
    def test_single_worker_cluster_works(self):
        """N=1 degenerates gracefully: no communication cost anywhere."""
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(size=(32, 8)), rng.integers(0, 3, 32))
        loaders = [BatchLoader(ds, np.arange(32), batch_size=8, rng=0)]
        workers = build_worker_group(
            1,
            lambda: build_model("mlp", in_features=8, n_classes=3, rng=5),
            lambda m: SGD(m, lr=0.1),
            loaders,
        )
        cluster = ClusterConfig(n_workers=1, comm_bytes=1e9, flops_per_sample=1e6)
        trainer = SelSyncTrainer(workers, cluster, delta=0.0)
        res = trainer.run(TrainConfig(n_steps=5, eval_every=5, eval_fn=None))
        assert res.log.total_comm_time == 0.0

    def test_ewma_window_one_degenerates_to_identity(self):
        e = Ewma(alpha=0.5, window=1)
        assert e.update(3.0) == 3.0
        assert e.update(9.0) == 9.0

    def test_train_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(n_steps=0)
        with pytest.raises(ValueError):
            TrainConfig(eval_every=0)
        with pytest.raises(ValueError):
            TrainConfig(patience=0)

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=0)


class TestFaultScenariosSelSync:
    def test_crash_and_rejoin_completes_with_records(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w2@3-7", min_quorum=2)
        trainer = SelSyncTrainer(workers, cluster, delta=0.1)
        res = trainer.run(_cfg(12))
        assert res.steps == 12
        crashes = res.log.faults_of_kind("crash")
        rejoins = res.log.faults_of_kind("rejoin")
        assert [(f.step, f.worker) for f in crashes] == [(3, 2)]
        assert [(f.step, f.worker) for f in rejoins] == [(7, 2)]
        assert res.log.fault_windows() == [{"worker": 2, "start": 3, "end": 7}]

    def test_delta_tracker_covers_live_workers_only(self):
        """A crashed worker computes no gradient, so its Δ(g) tracker must
        not advance while it is down."""
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w2@3-7", min_quorum=2)
        trainer = SelSyncTrainer(workers, cluster, delta=0.1)
        trainer.run(_cfg(12))
        assert trainer.trackers[2].n_updates < trainer.trackers[0].n_updates

    def test_quorum_lost_raises_loudly(self):
        workers = _mlp_workers(4)
        cluster = _cluster(
            fault_spec="crash:w1@4+,crash:w2@4+,crash:w3@4+", min_quorum=2
        )
        trainer = SelSyncTrainer(workers, cluster, delta=0.1)
        with pytest.raises(QuorumLostError, match="min_quorum=2"):
            trainer.run(_cfg(10))

    def test_default_quorum_is_all_workers(self):
        """Without min_quorum, losing any worker is fatal — partial means
        never happen silently."""
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w3@5+")
        trainer = SelSyncTrainer(workers, cluster, delta=0.1)
        with pytest.raises(QuorumLostError, match="step 5"):
            trainer.run(_cfg(10))

    def test_corruption_excluded_from_vote_and_mean(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="corrupt:w1@2-4", min_quorum=3)
        trainer = SelSyncTrainer(workers, cluster, delta=0.0)  # sync always
        res = trainer.run(_cfg(8))
        assert [(f.step, f.worker) for f in res.log.faults_of_kind("corrupt")] == [
            (2, 1), (3, 1),
        ]
        # PA sync every step: the corrupted pushes were excluded, so no NaN
        # ever reached the global model.
        for w in workers:
            assert np.isfinite(w.get_params()).all()

    def test_inert_spec_is_bitwise_transparent(self):
        """A plan whose window never fires must leave the run bitwise
        identical to a no-fault run — the hooks themselves are free."""
        params = []
        for spec in (None, "drop:p=0.5@1000+"):
            workers = _mlp_workers(4)
            trainer = SelSyncTrainer(workers, _cluster(fault_spec=spec), delta=0.1)
            trainer.run(_cfg(10))
            params.append([w.get_params() for w in workers])
        for a, b in zip(*params):
            np.testing.assert_array_equal(a, b)


class TestFaultScenariosBSP:
    def test_straggler_slows_the_whole_round(self):
        times = {}
        for spec in (None, "straggle:w0x5@0+"):
            workers = _mlp_workers(4)
            # Compute-dominated cluster: the 5x straggler should stretch
            # every lock-step round by nearly 5x.
            cluster = ClusterConfig(
                n_workers=4, comm_bytes=1e3, flops_per_sample=1e9,
                fault_spec=spec,
            )
            trainer = BSPTrainer(workers, cluster)
            res = trainer.run(_cfg(8))
            times[spec] = res.sim_time
        assert times["straggle:w0x5@0+"] > 3.0 * times[None]

    def test_certain_drop_excludes_worker_but_run_survives(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="drop:w1:p=1.0", min_quorum=3)
        trainer = BSPTrainer(workers, cluster)
        res = trainer.run(_cfg(6))
        drops = res.log.faults_of_kind("drop")
        assert len(drops) == 6 and all(f.worker == 1 for f in drops)
        assert all(f.detail["lost"] == 1 for f in drops)
        # The excluded worker is healed by the pull: replicas stay equal.
        np.testing.assert_array_equal(
            workers[0].get_params(), workers[1].get_params()
        )

    def test_crash_mid_run_with_quorum(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w3@2-5", min_quorum=2)
        trainer = BSPTrainer(workers, cluster)
        res = trainer.run(_cfg(8))
        assert res.steps == 8
        assert res.log.n_faults == 2  # crash + rejoin


class TestFaultScenariosSSP:
    def test_transient_crash_recovers(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w1@2-4", min_quorum=2)
        trainer = SSPTrainer(workers, cluster, staleness=50)
        res = trainer.run(_cfg(8))
        kinds = [f.kind for f in res.log.faults]
        assert "crash" in kinds and "rejoin" in kinds
        assert res.steps == 8

    def test_permanent_crash_below_quorum_raises(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w1@2+", min_quorum=4)
        trainer = SSPTrainer(workers, cluster, staleness=50)
        with pytest.raises(QuorumLostError):
            trainer.run(_cfg(8))

    def test_permanent_crash_above_quorum_survivors_finish(self):
        workers = _mlp_workers(4)
        cluster = _cluster(fault_spec="crash:w1@2+", min_quorum=2)
        trainer = SSPTrainer(workers, cluster, staleness=50)
        res = trainer.run(_cfg(8))
        assert res.steps == 8  # survivors reach the iteration cap
