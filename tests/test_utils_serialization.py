"""Tests for run-log, checkpoint and model serialization."""

import json

import numpy as np
import pytest

from repro.core.grad_tracker import RelativeGradChange
from repro.nn.models import build_model
from repro.utils.ewma import Ewma
from repro.utils.runlog import EvalRecord, FaultRecord, IterationRecord, RunLog
from repro.utils.serialization import (
    decode_jsonable,
    encode_jsonable,
    load_checkpoint,
    load_model,
    load_runlog,
    save_checkpoint,
    save_model,
    save_runlog,
)


@pytest.fixture
def sample_log():
    log = RunLog("demo")
    log.record_iteration(
        IterationRecord(step=0, synced=True, sim_time=1.5, comm_time=0.5,
                        loss=2.0, grad_change=float("inf"), extra={"n_flags": 3.0})
    )
    log.record_iteration(
        IterationRecord(step=1, synced=False, sim_time=1.0, comm_time=0.0,
                        loss=1.5, grad_change=0.25)
    )
    log.record_eval(EvalRecord(step=1, epoch=0.5, sim_time=2.5, metric=0.8))
    return log


class TestRunlogRoundtrip:
    def test_roundtrip_preserves_everything(self, sample_log, tmp_path):
        p = tmp_path / "run.jsonl"
        save_runlog(sample_log, p)
        back = load_runlog(p)
        assert back.name == "demo"
        assert back.n_steps == 2
        assert back.lssr() == 0.5
        assert back.iterations[0].grad_change == float("inf")
        assert back.iterations[1].grad_change == 0.25
        assert back.iterations[0].extra == {"n_flags": 3.0}
        assert back.evals[0].metric == 0.8
        assert back.total_sim_time == sample_log.total_sim_time

    def test_nan_loss_roundtrip(self, tmp_path):
        log = RunLog()
        log.record_iteration(
            IterationRecord(step=0, synced=True, sim_time=1.0)
        )
        p = tmp_path / "r.jsonl"
        save_runlog(log, p)
        back = load_runlog(p)
        assert np.isnan(back.iterations[0].loss)

    def test_unknown_kind_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            load_runlog(p)

    def test_real_training_log_roundtrips(self, tmp_path, mlp_cluster, quick_cfg):
        from repro.core import SelSyncTrainer

        workers, cluster = mlp_cluster
        res = SelSyncTrainer(workers, cluster, delta=0.3).run(quick_cfg)
        p = tmp_path / "real.jsonl"
        save_runlog(res.log, p)
        back = load_runlog(p)
        assert back.lssr() == res.log.lssr()
        assert np.allclose(back.grad_changes(), res.log.grad_changes())


class TestNestedNonFinite:
    """Regression: the old encoder only handled top-level floats, silently
    writing invalid strict JSON for nan/inf nested inside dicts or lists."""

    def test_nested_nan_and_inf_round_trip(self):
        tree = {
            "metrics": {"loss": float("nan"), "scale": [1.0, float("inf")]},
            "trace": [{"d": float("-inf")}, {"d": 0.5}],
            "n": 3,
        }
        back = decode_jsonable(json.loads(
            json.dumps(encode_jsonable(tree), allow_nan=False)
        ))
        assert np.isnan(back["metrics"]["loss"])
        assert back["metrics"]["scale"] == [1.0, float("inf")]
        assert back["trace"][0]["d"] == float("-inf")
        assert back["trace"][1]["d"] == 0.5
        assert back["n"] == 3

    def test_numpy_scalars_become_plain_json(self):
        enc = encode_jsonable(
            {"i": np.int64(7), "f": np.float32(0.5), "b": np.bool_(True)}
        )
        assert enc == {"i": 7, "f": 0.5, "b": True}
        assert type(enc["i"]) is int and type(enc["f"]) is float

    def test_unencodable_type_raises(self):
        with pytest.raises(TypeError, match="cannot JSON-encode"):
            encode_jsonable({"x": object()})

    def test_diverged_eval_record_survives_jsonl(self, tmp_path):
        """An eval metric of nan — a diverged run — must round-trip through
        the strict-JSON run-log file, not crash the writer."""
        log = RunLog("diverged")
        log.record_eval(
            EvalRecord(step=0, epoch=0.1, sim_time=1.0, metric=float("nan"))
        )
        log.record_fault(
            FaultRecord(step=0, worker=1, kind="corrupt",
                        detail={"norm": float("inf")})
        )
        p = tmp_path / "d.jsonl"
        save_runlog(log, p)
        back = load_runlog(p)
        assert np.isnan(back.evals[0].metric)
        assert back.faults[0].detail["norm"] == float("inf")


class TestCheckpointRoundtrip:
    def test_mixed_tree_round_trips(self, tmp_path):
        state = {
            "version": 1,
            "params": np.arange(6, dtype=np.float64).reshape(2, 3),
            "nested": {"vel": np.ones(4, dtype=np.float32), "lr": 0.1},
            "stack": [np.zeros(2), {"k": float("nan")}],
            "name": "bsp",
            "best": None,
        }
        p = tmp_path / "ck.npz"
        save_checkpoint(state, p)
        back = load_checkpoint(p)
        np.testing.assert_array_equal(back["params"], state["params"])
        assert back["params"].dtype == np.float64
        np.testing.assert_array_equal(back["nested"]["vel"], state["nested"]["vel"])
        assert back["nested"]["vel"].dtype == np.float32
        assert back["nested"]["lr"] == 0.1
        np.testing.assert_array_equal(back["stack"][0], np.zeros(2))
        assert np.isnan(back["stack"][1]["k"])
        assert back["name"] == "bsp" and back["best"] is None

    def test_write_is_atomic(self, tmp_path):
        """The temp file never lingers and the target is complete."""
        p = tmp_path / "ck.npz"
        save_checkpoint({"a": np.ones(3)}, p)
        save_checkpoint({"a": np.zeros(3)}, p)  # overwrite in place
        assert not (tmp_path / "ck.npz.tmp").exists()
        np.testing.assert_array_equal(load_checkpoint(p)["a"], np.zeros(3))


class TestTrackerStateDicts:
    def test_ewma_state_round_trips(self):
        e = Ewma(alpha=0.3, window=5)
        for x in (1.0, 4.0, 2.5):
            e.update(x)
        e2 = Ewma(alpha=0.3, window=5)
        e2.load_state_dict(e.state_dict())
        assert e2.value == e.value and e2.n_samples == e.n_samples
        assert e2.update(7.0) == e.update(7.0)

    def test_grad_tracker_state_round_trips(self):
        t = RelativeGradChange(alpha=0.2, window=4)
        for g in (1.0, 2.0, 1.5, 3.0):
            t.update(g)
        t2 = RelativeGradChange(alpha=0.2, window=4)
        t2.load_state_dict(t.state_dict())
        assert t2.last_delta == t.last_delta
        assert t2.n_updates == t.n_updates
        assert t2.update(2.5) == t.update(2.5)
        assert t2.max_delta == t.max_delta


class TestModelRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        m1 = build_model("smallresnet", rng=0)
        p = tmp_path / "model.npz"
        save_model(m1, p)
        m2 = build_model("smallresnet", rng=99)  # different init
        load_model(m2, p)
        assert np.array_equal(m1.get_flat_params(), m2.get_flat_params())

    def test_architecture_mismatch_rejected(self, tmp_path):
        m1 = build_model("mlp", in_features=8, n_classes=3, rng=0)
        p = tmp_path / "model.npz"
        save_model(m1, p)
        m2 = build_model("mlp", in_features=9, n_classes=3, rng=0)
        with pytest.raises((KeyError, ValueError)):
            load_model(m2, p)

    def test_transformer_roundtrip(self, tmp_path):
        m1 = build_model("tinytransformer", rng=1)
        p = tmp_path / "t.npz"
        save_model(m1, p)
        m2 = build_model("tinytransformer", rng=2)
        load_model(m2, p)
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))
        m1.eval(), m2.eval()
        assert np.allclose(m1.forward(ids), m2.forward(ids))
