"""Tests for run-log and model serialization."""

import numpy as np
import pytest

from repro.nn.models import build_model
from repro.utils.runlog import EvalRecord, IterationRecord, RunLog
from repro.utils.serialization import (
    load_model,
    load_runlog,
    save_model,
    save_runlog,
)


@pytest.fixture
def sample_log():
    log = RunLog("demo")
    log.record_iteration(
        IterationRecord(step=0, synced=True, sim_time=1.5, comm_time=0.5,
                        loss=2.0, grad_change=float("inf"), extra={"n_flags": 3.0})
    )
    log.record_iteration(
        IterationRecord(step=1, synced=False, sim_time=1.0, comm_time=0.0,
                        loss=1.5, grad_change=0.25)
    )
    log.record_eval(EvalRecord(step=1, epoch=0.5, sim_time=2.5, metric=0.8))
    return log


class TestRunlogRoundtrip:
    def test_roundtrip_preserves_everything(self, sample_log, tmp_path):
        p = tmp_path / "run.jsonl"
        save_runlog(sample_log, p)
        back = load_runlog(p)
        assert back.name == "demo"
        assert back.n_steps == 2
        assert back.lssr() == 0.5
        assert back.iterations[0].grad_change == float("inf")
        assert back.iterations[1].grad_change == 0.25
        assert back.iterations[0].extra == {"n_flags": 3.0}
        assert back.evals[0].metric == 0.8
        assert back.total_sim_time == sample_log.total_sim_time

    def test_nan_loss_roundtrip(self, tmp_path):
        log = RunLog()
        log.record_iteration(
            IterationRecord(step=0, synced=True, sim_time=1.0)
        )
        p = tmp_path / "r.jsonl"
        save_runlog(log, p)
        back = load_runlog(p)
        assert np.isnan(back.iterations[0].loss)

    def test_unknown_kind_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            load_runlog(p)

    def test_real_training_log_roundtrips(self, tmp_path, mlp_cluster, quick_cfg):
        from repro.core import SelSyncTrainer

        workers, cluster = mlp_cluster
        res = SelSyncTrainer(workers, cluster, delta=0.3).run(quick_cfg)
        p = tmp_path / "real.jsonl"
        save_runlog(res.log, p)
        back = load_runlog(p)
        assert back.lssr() == res.log.lssr()
        assert np.allclose(back.grad_changes(), res.log.grad_changes())


class TestModelRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        m1 = build_model("smallresnet", rng=0)
        p = tmp_path / "model.npz"
        save_model(m1, p)
        m2 = build_model("smallresnet", rng=99)  # different init
        load_model(m2, p)
        assert np.array_equal(m1.get_flat_params(), m2.get_flat_params())

    def test_architecture_mismatch_rejected(self, tmp_path):
        m1 = build_model("mlp", in_features=8, n_classes=3, rng=0)
        p = tmp_path / "model.npz"
        save_model(m1, p)
        m2 = build_model("mlp", in_features=9, n_classes=3, rng=0)
        with pytest.raises((KeyError, ValueError)):
            load_model(m2, p)

    def test_transformer_roundtrip(self, tmp_path):
        m1 = build_model("tinytransformer", rng=1)
        p = tmp_path / "t.npz"
        save_model(m1, p)
        m2 = build_model("tinytransformer", rng=2)
        load_model(m2, p)
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))
        m1.eval(), m2.eval()
        assert np.allclose(m1.forward(ids), m2.forward(ids))
