"""Tests for partition visualization (Fig. 7 rendering)."""

import numpy as np

from repro.data.partition import (
    default_partition,
    label_skew_partition,
    selsync_partition,
)
from repro.data.visualize import label_histogram, render_partition


class TestRenderPartition:
    def test_defdp_one_chunk_per_worker(self):
        out = render_partition(default_partition(40, 4, rng=0))
        assert "worker0: DP0" in out
        assert "worker3: DP3" in out
        assert "->" not in out

    def test_seldp_rotation(self):
        out = render_partition(selsync_partition(40, 4, rng=0))
        assert "worker0: DP0 -> DP1 -> DP2 -> DP3" in out
        assert "worker2: DP2 -> DP3 -> DP0 -> DP1" in out

    def test_label_skew_has_no_chunks(self):
        labels = np.repeat(np.arange(4), 10)
        part = label_skew_partition(labels, 4, labels_per_worker=1, rng=0)
        out = render_partition(part)
        assert "no chunk structure" in out


class TestLabelHistogram:
    def test_skewed_rows_are_concentrated(self):
        labels = np.repeat(np.arange(4), 25)
        part = label_skew_partition(labels, 4, labels_per_worker=1, rng=0)
        out = label_histogram(labels, part)
        lines = [l for l in out.splitlines()[2:]]
        assert len(lines) == 4
        for line in lines:
            counts = [int(c) for c in line.split("|")[1].split()]
            assert sum(1 for c in counts if c > 0) == 1  # one label per worker

    def test_iid_rows_are_spread(self):
        labels = np.repeat(np.arange(4), 25)
        part = selsync_partition(100, 4, rng=0)
        out = label_histogram(labels, part)
        lines = out.splitlines()[2:]
        for line in lines:
            counts = [int(c) for c in line.split("|")[1].split()]
            assert all(c > 0 for c in counts)  # every worker sees every label
