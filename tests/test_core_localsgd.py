"""Tests for pure local-SGD."""

import numpy as np

from repro.core import LocalSGDTrainer


class TestLocalSGD:
    def test_lssr_is_one(self, mlp_cluster, quick_cfg):
        workers, cluster = mlp_cluster
        res = LocalSGDTrainer(workers, cluster).run(quick_cfg)
        assert res.lssr == 1.0

    def test_no_communication_charged(self, mlp_cluster, quick_cfg):
        workers, cluster = mlp_cluster
        res = LocalSGDTrainer(workers, cluster).run(quick_cfg)
        assert res.log.total_comm_time == 0.0

    def test_replicas_diverge(self, mlp_cluster, quick_cfg):
        workers, cluster = mlp_cluster
        LocalSGDTrainer(workers, cluster).run(quick_cfg)
        assert not np.allclose(workers[0].get_params(), workers[1].get_params())

    def test_fastest_wall_clock(self, mlp_cluster, quick_cfg):
        """No sync cost ⇒ local SGD is the simulated-time floor."""
        from repro.core import BSPTrainer
        from tests.conftest import make_mlp_cluster

        workers, cluster = mlp_cluster
        local = LocalSGDTrainer(workers, cluster).run(quick_cfg)
        assert local.sim_time < quick_cfg.n_steps * 1.0  # sanity
        assert local.log.total_comm_time == 0.0
