"""Tests for dataset abstractions and synthetic generators."""

import numpy as np
import pytest

from repro.data import ArrayDataset, SequenceDataset, build_dataset
from repro.data.synthetic import DATASETS


class TestArrayDataset:
    def test_length_and_batch(self):
        ds = ArrayDataset(np.arange(10.0).reshape(5, 2), np.arange(5))
        x, y = ds.get_batch(np.array([0, 3]))
        assert x.shape == (2, 2)
        assert list(y) == [0, 3]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_sample_nbytes(self):
        ds = ArrayDataset(np.zeros((4, 3), dtype=np.float64), np.zeros(4))
        assert ds.sample_nbytes == 24


class TestSequenceDataset:
    def test_windows_and_shift(self):
        toks = np.arange(11)
        ds = SequenceDataset(toks, bptt=3)
        assert len(ds) == 3  # (11-1)//3
        x, y = ds.get_batch(np.array([0, 1]))
        assert np.array_equal(x[0], [0, 1, 2])
        assert np.array_equal(y[0], [1, 2, 3])  # next-token targets
        assert np.array_equal(x[1], [3, 4, 5])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            SequenceDataset(np.arange(3), bptt=5)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            SequenceDataset(np.zeros((2, 3), dtype=int), bptt=2)

    def test_labels_are_window_starts(self):
        ds = SequenceDataset(np.arange(10), bptt=3)
        assert np.array_equal(ds.labels, [0, 3, 6])


class TestGenerators:
    def test_all_registered(self):
        for name in [
            "blobs", "cifar10_like", "cifar100_like", "imagenet_like", "wikitext_like",
        ]:
            assert name in DATASETS

    def test_blobs_reproducible(self):
        a, _ = build_dataset("blobs", n_train=64, n_test=16, rng=5)
        b, _ = build_dataset("blobs", n_train=64, n_test=16, rng=5)
        assert np.array_equal(a.x, b.x)

    @pytest.mark.parametrize("name,n_labels", [
        ("cifar10_like", 10),
        ("imagenet_like", 20),
    ])
    def test_image_generators(self, name, n_labels):
        train, test = build_dataset(name, n_train=200, n_test=50, rng=0)
        assert len(train) == 200 and len(test) == 50
        x, y = train.get_batch(np.arange(10))
        assert x.shape == (10, 3, 16, 16)
        assert y.min() >= 0 and y.max() < n_labels

    def test_cifar100_label_count_configurable(self):
        train, _ = build_dataset("cifar100_like", n_train=400, n_test=50, n_classes=25, rng=0)
        assert np.unique(train.labels).size <= 25
        assert train.labels.max() < 25

    def test_image_classes_are_separable(self):
        """A nearest-template classifier must beat chance by a wide margin —
        otherwise no model could learn and every accuracy claim is vacuous."""
        train, test = build_dataset("cifar10_like", n_train=400, n_test=100, noise=0.5, rng=0)
        # Per-class mean of train as template, classify test by correlation.
        templates = np.stack([
            train.x[train.y == c].mean(axis=0) for c in range(10)
        ]).reshape(10, -1)
        xt = test.x.reshape(len(test), -1)
        pred = (xt @ templates.T).argmax(axis=1)
        acc = (pred == test.y).mean()
        assert acc > 0.5  # chance is 0.1

    def test_wikitext_like_structure(self):
        train, test = build_dataset(
            "wikitext_like", n_train_tokens=3000, n_test_tokens=600,
            vocab_size=32, bptt=8, rng=0,
        )
        x, y = train.get_batch(np.arange(4))
        assert x.shape == (4, 8)
        assert x.max() < 32

    def test_wikitext_is_learnable_markov_chain(self):
        """Bigram statistics must carry real information: the empirical
        conditional entropy is well below log(vocab)."""
        train, _ = build_dataset(
            "wikitext_like", n_train_tokens=20_000, n_test_tokens=600,
            vocab_size=16, bptt=8, concentration=0.08, rng=0,
        )
        toks = train.tokens
        counts = np.zeros((16, 16))
        np.add.at(counts, (toks[:-1], toks[1:]), 1.0)
        probs = counts / np.maximum(counts.sum(axis=1, keepdims=True), 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            plogp = np.where(probs > 0, probs * np.log(probs), 0.0)
        row_entropy = -plogp.sum(axis=1)
        marginal = counts.sum(axis=1) / counts.sum()
        cond_entropy = float(marginal @ row_entropy)
        assert cond_entropy < 0.7 * np.log(16)

    def test_vocab_too_small_raises(self):
        with pytest.raises(ValueError):
            build_dataset("wikitext_like", vocab_size=1, rng=0)
