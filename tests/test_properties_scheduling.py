"""Hypothesis property tests for the communication schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.network import NetworkModel
from repro.comm.scheduling import (
    bucketed_schedule,
    fused_schedule,
    per_layer_schedule,
)

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=10_000_000), min_size=1, max_size=40
)


@given(
    sizes=sizes_strategy,
    backward_time=st.floats(1e-4, 1.0),
    latency=st.floats(0.0, 1e-2),
)
@settings(max_examples=80, deadline=None)
def test_schedule_invariants(sizes, backward_time, latency):
    net = NetworkModel(latency_s=latency)
    fused = fused_schedule(sizes, backward_time, net)
    layered = per_layer_schedule(sizes, backward_time, net)
    bucketed = bucketed_schedule(sizes, backward_time, net, bucket_bytes=1e6)

    for r in (fused, layered, bucketed):
        # Nothing finishes before the backward pass or instantly.
        assert r.total_time >= backward_time
        assert r.comm_tail >= 0.0
        # tail never exceeds total
        assert r.comm_tail <= r.total_time + 1e-12

    # Overlap helps on payload, but each extra message pays one more
    # latency — the exact trade ByteScheduler's bucketing exists to fix.
    assert layered.total_time <= fused.total_time + (
        layered.n_messages - 1
    ) * latency + 1e-9
    assert bucketed.total_time <= fused.total_time + (
        bucketed.n_messages - 1
    ) * latency + 1e-9
    # Bucketing sends at most as many messages as per-layer.
    assert bucketed.n_messages <= layered.n_messages
    assert bucketed.n_messages >= 1


@given(sizes=sizes_strategy, bucket=st.floats(1.0, 1e8))
@settings(max_examples=60, deadline=None)
def test_bucketing_conserves_bytes(sizes, bucket):
    """Buckets re-partition the byte stream; nothing is lost or duplicated.

    Verified indirectly: with zero latency and zero backward time, total
    transfer time equals bytes/bandwidth regardless of bucketing.
    """
    net = NetworkModel(latency_s=0.0)
    r = bucketed_schedule(sizes, 0.0, net, bucket_bytes=bucket)
    expected = 8.0 * sum(sizes) / net.effective_worker_bandwidth()
    assert r.total_time == pytest.approx(expected, rel=1e-9)
