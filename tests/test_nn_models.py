"""Model zoo tests: construction, shapes, determinism and learnability."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MODELS, build_model
from repro.optim import SGD

RNG = np.random.default_rng(0)

IMAGE_MODELS = ["smallresnet", "smallvgg", "smallalexnet"]


class TestRegistry:
    def test_all_families_registered(self):
        for name in ["mlp", *IMAGE_MODELS, "tinytransformer"]:
            assert name in MODELS

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet9000")


@pytest.mark.parametrize("name", IMAGE_MODELS)
class TestImageModels:
    def test_output_shape(self, name):
        m = build_model(name, n_classes=7, rng=0)
        out = m.forward(RNG.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 7)

    def test_deterministic_init(self, name):
        a = build_model(name, rng=3).get_flat_params()
        b = build_model(name, rng=3).get_flat_params()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, name):
        a = build_model(name, rng=3).get_flat_params()
        b = build_model(name, rng=4).get_flat_params()
        assert not np.array_equal(a, b)

    def test_flops_positive(self, name):
        assert build_model(name, rng=0).flops_per_sample > 0

    def test_backward_produces_grads(self, name):
        m = build_model(name, rng=0)
        loss = CrossEntropyLoss()
        out = m.forward(RNG.normal(size=(2, 3, 16, 16)))
        loss.forward(out, np.zeros(2, dtype=int))
        m.backward(loss.backward())
        assert np.linalg.norm(m.get_flat_grads()) > 0


class TestTransformer:
    def test_output_shape(self):
        m = build_model("tinytransformer", vocab_size=32, max_len=8, rng=0)
        out = m.forward(RNG.integers(0, 32, (2, 8)))
        assert out.shape == (2, 8, 32)

    def test_rejects_long_sequence(self):
        m = build_model("tinytransformer", vocab_size=32, max_len=4, rng=0)
        with pytest.raises(ValueError, match="max_len"):
            m.forward(RNG.integers(0, 32, (1, 5)))

    def test_rejects_non_2d(self):
        m = build_model("tinytransformer", rng=0)
        with pytest.raises(ValueError):
            m.forward(np.zeros(4, dtype=int))

    def test_causality_end_to_end(self):
        m = build_model("tinytransformer", vocab_size=16, max_len=8, rng=0, dropout=0.0)
        m.eval()
        ids = RNG.integers(0, 16, (1, 6))
        out1 = m.forward(ids)
        ids2 = ids.copy()
        ids2[0, 5] = (ids2[0, 5] + 1) % 16
        out2 = m.forward(ids2)
        assert np.allclose(out1[0, :5], out2[0, :5])


class TestMLPLearnability:
    def test_learns_separable_blobs(self):
        """A few hundred SGD steps must essentially solve linearly separable
        blobs — this is the substrate's end-to-end sanity check."""
        from repro.data import build_dataset

        train, test = build_dataset(
            "blobs", n_train=256, n_test=64, n_features=8, n_classes=3, rng=0
        )
        m = build_model("mlp", in_features=8, n_classes=3, hidden=(16,), rng=0)
        opt = SGD(m, lr=0.1, momentum=0.9)
        rng = np.random.default_rng(1)
        for _ in range(150):
            idx = rng.integers(0, len(train), 32)
            x, y = train.get_batch(idx)
            m.zero_grad()
            loss = CrossEntropyLoss()
            loss.forward(m.forward(x), y)
            m.backward(loss.backward())
            opt.step()
        x, y = test.get_batch(np.arange(len(test)))
        acc = (m.forward(x).argmax(axis=-1) == y).mean()
        assert acc > 0.9

    def test_flattens_image_input(self):
        m = build_model("mlp", in_features=12, n_classes=2, rng=0)
        out = m.forward(RNG.normal(size=(2, 3, 2, 2)))
        assert out.shape == (2, 2)
