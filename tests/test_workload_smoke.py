"""End-to-end smoke of all four paper workloads at tiny scale.

Each workload must train (metric moves in the right direction from its
untrained baseline) under both BSP and SelSync. Catches wiring regressions
between the experiments layer and any substrate.
"""

import pytest

from repro.experiments.runner import MethodSpec, run_method
from repro.experiments.workloads import build_workload, get_workload

SCALES = {
    "resnet_cifar10": dict(chance=0.1),
    "vgg_cifar100": dict(chance=1 / 30, overrides={"n_classes": 30}),
    "alexnet_imagenet": dict(chance=5 / 20),  # top-5 of 20 classes
    "transformer_wikitext": dict(chance=64.0),  # uniform perplexity = |V|
}


def run(wname, spec, n_steps=60):
    meta = SCALES[wname]
    built = build_workload(
        wname,
        n_workers=2,
        n_steps=n_steps,
        data_scale=0.15,
        seed=0,
        dataset_overrides=meta.get("overrides"),
    )
    return run_method(spec, built, n_steps=n_steps, eval_every=n_steps)


@pytest.mark.parametrize("wname", sorted(SCALES))
def test_bsp_beats_chance(wname):
    res = run(wname, MethodSpec("bsp"))
    w = get_workload(wname)
    chance = SCALES[wname]["chance"]
    if w.higher_is_better:
        assert res.best_metric > chance * 1.5
    else:
        assert res.best_metric < chance * 0.9


@pytest.mark.parametrize("wname", sorted(SCALES))
def test_selsync_beats_chance(wname):
    res = run(wname, MethodSpec("selsync", {"delta": 0.05}))
    w = get_workload(wname)
    chance = SCALES[wname]["chance"]
    if w.higher_is_better:
        assert res.best_metric > chance * 1.5
    else:
        assert res.best_metric < chance * 0.9
    assert res.lssr < 1.0  # at least the forced first sync happened


def test_transformer_selsync_lssr_below_image_models():
    """Paper Table I: the Transformer's LSSR (0.73) sits below the image
    models' (0.83+) — its gradients keep changing longer. Directionally
    check at tiny scale with a shared δ."""
    ppl = run("transformer_wikitext", MethodSpec("selsync", {"delta": 0.05}), 80)
    img = run("resnet_cifar10", MethodSpec("selsync", {"delta": 0.05}), 80)
    assert ppl.lssr <= img.lssr + 0.35  # loose: directional, not exact
